#!/usr/bin/env python3
"""The paper's Fig. 4 walk-through: template-matching watermarks.

Enforces signature-specific node-to-module matchings on the IIR filter
by promoting the surrounding variables to pseudo-primary outputs, covers
the design with and without the watermark, and reports the module-count
cost and the coincidence probability.

Run: ``python examples/template_matching_demo.py``
"""

from repro import AuthorSignature
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams
from repro.templates.covering import cover_and_allocate
from repro.templates.library import default_library
from repro.timing.windows import critical_path_length


def main() -> None:
    design = fourth_order_parallel_iir()
    library = default_library()
    c = critical_path_length(design)
    steps = 2 * c  # relaxed budget, as in Table II's second rows
    print(f"critical path {c}, available control steps {steps}")
    print("template library:", ", ".join(t.name for t in library))

    signature = AuthorSignature("alice-designs-inc")
    marker = MatchingWatermarker(
        signature, library=library, params=MatchingWMParams(z=3, horizon=steps)
    )
    marked, watermark = marker.embed(design)

    print(f"\nenforced matchings (Z = {watermark.z}):")
    for matching in watermark.enforced:
        ops = ", ".join(matching.assignment)
        solutions = marker.solutions_count(design, matching)
        print(
            f"  {matching.template.name}: ({ops}) — "
            f"{solutions} alternative coverings of these nodes"
        )
    print(f"PPO promotions: {watermark.ppo_nodes}")

    base_cov, base_alloc = cover_and_allocate(design, library, steps=steps)
    wm_cov, wm_alloc = cover_and_allocate(
        marked, library, steps=steps, forced=watermark.enforced
    )
    print(f"\nbaseline covering:    {base_alloc.module_count} module instances "
          f"{base_alloc.instances}")
    print(f"watermarked covering: {wm_alloc.module_count} module instances "
          f"{wm_alloc.instances}")
    overhead = (
        100.0
        * (wm_alloc.module_count - base_alloc.module_count)
        / base_alloc.module_count
    )
    print(f"module-count overhead: {overhead:+.1f}%")

    verification = marker.verify(wm_cov, watermark)
    print(
        f"\ndetection on the watermarked covering: "
        f"{verification.matchings_present}/{verification.matchings_total} "
        f"matchings present, {verification.ppos_visible}/"
        f"{verification.ppos_total} PPOs visible -> "
        f"detected={verification.detected}"
    )
    print(f"approx log10 P_c = {marker.approx_log10_pc(design, watermark):.2f}")

    baseline_check = marker.verify(base_cov, watermark)
    print(
        f"baseline covering satisfies only "
        f"{baseline_check.matchings_present}/"
        f"{baseline_check.matchings_total} matchings by coincidence"
    )


if __name__ == "__main__":
    main()
