#!/usr/bin/env python3
"""§II end to end: detect a watermark from a reverse-engineered IC.

The paper's detection story assumes the suspect *implementation* can be
reverse engineered: "one can easily recover its FSM and, thus, the
schedule and assignments used in the IC".  This demo walks the whole
loop:

1. embed a watermark and synthesize: schedule → register/unit binding →
   FSM controller (the "IC");
2. reverse engineer: recover the schedule from the controller's control
   words alone;
3. detect the watermark on the recovered schedule.

Run: ``python examples/ic_reverse_engineering.py``
"""

from repro import AuthorSignature
from repro.cdfg.generators import random_layered_cdfg
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.rtl import (
    bind,
    datapath_summary,
    recover_schedule,
    recovered_schedule_for,
    synthesize_controller,
)
from repro.scheduling.list_scheduler import list_schedule


def main() -> None:
    design = random_layered_cdfg(90, seed=42, name="dsp-kernel")
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(
        signature,
        SchedulingWMParams(domain=DomainParams(tau=5, min_domain_size=8), k=6),
    )
    marked, watermark = marker.embed(design)
    print(f"watermarked design: {watermark.k} hidden temporal edges")

    # --- synthesis: what the design house ships -----------------------
    schedule = list_schedule(marked)
    binding = bind(marked, schedule)
    controller = synthesize_controller(marked, schedule, binding)
    print(
        f"synthesized IC: {controller.num_steps} control steps, "
        f"{controller.num_microops} micro-ops, datapath "
        f"{datapath_summary(binding)}"
    )
    sample = controller.control_word(0)[:2]
    for micro in sample:
        print(
            f"  step 0 issues {micro.opcode} on {micro.unit[0]}"
            f"[{micro.unit[1]}] from r{list(micro.source_registers)} "
            f"-> r{micro.destination_register}"
        )

    # --- reverse engineering: what the detector reconstructs -----------
    recovered = recovered_schedule_for(design, recover_schedule(controller))
    print("\nschedule recovered from the controller's control words")

    result = marker.verify(design, recovered, watermark)
    print(
        f"detection on the recovered schedule: {result.satisfied}/"
        f"{result.total} constraints hold, confidence "
        f"{result.confidence:.4f} -> detected={result.detected}"
    )


if __name__ == "__main__":
    main()
