#!/usr/bin/env python3
"""The generic local-watermark recipe on graph coloring (§III).

Before specializing to behavioral synthesis, the paper introduces local
watermarks on combinatorial optimization at large, naming graph coloring
("a local watermark is embedded in a random subgraph").  This demo
embeds one: the signature picks a locality ball, forces K non-adjacent
vertex pairs to receive distinct colors via hidden extra edges, and the
shipped coloring betrays its author.

Run: ``python examples/graph_coloring_watermark.py``
"""

import networkx as nx

from repro import AuthorSignature
from repro.coloring import (
    ColoringWatermarker,
    ColoringWMParams,
    dsatur_coloring,
    num_colors,
    verify_coloring,
)


def main() -> None:
    graph = nx.gnp_random_graph(60, 0.12, seed=4)
    print(
        f"graph: {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges"
    )

    signature = AuthorSignature("alice-designs-inc")
    marker = ColoringWatermarker(
        signature, ColoringWMParams(radius=2, k=6, min_locality=8)
    )
    augmented, watermark = marker.embed(graph)
    print(
        f"locality: ball of {len(watermark.locality)} vertices around "
        f"{watermark.center!r}"
    )
    print(f"forced-distinct pairs: {watermark.pairs}")

    # The author colors the augmented graph with any off-the-shelf tool.
    colors = dsatur_coloring(augmented)
    verify_coloring(augmented, colors)
    print(f"coloring uses {num_colors(colors)} colors")

    # The shipped solution is the coloring of the ORIGINAL graph.
    stripped = ColoringWatermarker.strip(augmented)
    verify_coloring(stripped, colors)

    result = marker.verify(colors, watermark)
    print(
        f"detection: {result.satisfied}/{result.total} pairs distinct, "
        f"log10 P_c = {result.log10_pc:.2f} -> detected={result.detected}"
    )

    # An independent coloring of the clean graph satisfies the pairs
    # only by chance.
    clean_colors = dsatur_coloring(graph)
    clean_result = marker.verify(clean_colors, watermark)
    print(
        f"independent coloring: {clean_result.satisfied}/"
        f"{clean_result.total} pairs distinct by coincidence"
    )


if __name__ == "__main__":
    main()
