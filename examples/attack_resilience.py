#!/usr/bin/env python3
"""Attack resilience: how much tampering erases a local watermark?

Reproduces the §IV-A *Discussion* experimentally and analytically:

* random pair-reorder attacks of growing intensity vs surviving
  watermark evidence;
* the analytic tamper model (the paper's 100 000-op / 100-edge example:
  destroying authorship requires altering the majority of the solution);
* ghost-signature search: can an adversary find a signature that
  coincidentally "detects" on the stolen design?

Run: ``python examples/attack_resilience.py``
"""

from repro import AuthorSignature
from repro.analysis.report import render_table
from repro.analysis.tamper import paper_example
from repro.cdfg.generators import random_layered_cdfg
from repro.core.attacks import ghost_signature_search, reorder_attack
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.scheduling.list_scheduler import list_schedule


def main() -> None:
    params = SchedulingWMParams(
        domain=DomainParams(tau=5, min_domain_size=10), k=8
    )
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, params)
    design = random_layered_cdfg(150, seed=202)
    marked, watermark = marker.embed(design)
    schedule = list_schedule(marked)
    print(
        f"design: {len(design.schedulable_operations)} ops, "
        f"watermark: {watermark.k} temporal edges\n"
    )

    # --- reorder attacks of growing intensity -------------------------
    rows = []
    for attempts in (0, 50, 200, 1000, 5000):
        outcome = reorder_attack(
            design, schedule, watermark, signature, attempts, seed=9
        )
        rows.append(
            [
                attempts,
                outcome.alterations,
                f"{outcome.surviving_fraction:.2f}",
                f"{outcome.verification.confidence:.4f}",
            ]
        )
    print(
        render_table(
            ["swap attempts", "legal swaps", "evidence left", "confidence"],
            rows,
            title="random reorder attack",
        )
    )

    # --- analytic tamper model (paper's worked example) ----------------
    model = paper_example()
    pairs = model.pairs_to_alter(1e-6)
    print(
        f"\nanalytic model (100k ops, 100 edges, r=1/2): driving "
        f"authorship to 1e-6 needs {pairs} pair alterations "
        f"({100 * model.fraction_to_alter(1e-6):.0f}% of the solution; "
        "paper's estimate: 31,729 = 63%)"
    )

    # --- ghost-signature search ----------------------------------------
    ghost = ghost_signature_search(
        design, schedule, n_candidates=10, seed=3, params=params
    )
    print(
        f"\nghost-signature search over {ghost.tried} foreign signatures: "
        f"{ghost.detections} full coincidental detections, best partial "
        f"match {ghost.best_fraction:.2f}"
    )


if __name__ == "__main__":
    main()
