#!/usr/bin/env python3
"""Quickstart: watermark a design's schedule and detect the mark.

Walks the full Fig.-1 flow on a small DSP design:

1. build a CDFG,
2. embed an author-specific local watermark (temporal edges),
3. run an off-the-shelf scheduler,
4. strip the constraints (what ships),
5. detect the watermark from the shipped schedule alone.

Run: ``python examples/quickstart.py``
"""

from repro import AuthorSignature, SchedulingWatermarker, list_schedule
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.core.coincidence import format_pc_power
from repro.core.scheduling_wm import SchedulingWMParams


def main() -> None:
    # 1. The design: the paper's fourth-order parallel IIR filter.
    design = fourth_order_parallel_iir()
    print(f"design: {design.name}, {len(design.schedulable_operations)} ops")

    # 2. Embed a watermark keyed to the author's signature.
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, SchedulingWMParams(k=3))
    marked, watermark = marker.embed(design)
    print(f"locality root: {watermark.root}")
    print(f"domain T ({watermark.k} temporal edges): {watermark.domain_nodes}")
    for src, dst in watermark.temporal_edges:
        print(f"  temporal edge: {src} must run before {dst}")

    # 3. Synthesize with any constraint-respecting scheduler.
    schedule = list_schedule(marked)
    print(f"schedule makespan: {schedule.makespan(marked)} control steps")

    # 4. The shipped design carries no constraint annotations.
    shipped = marked.without_temporal_edges()
    assert shipped.temporal_edges == []

    # 5. Detection: check the signature's constraints on the schedule.
    result = marker.verify(shipped, schedule, watermark)
    print(
        f"detection: {result.satisfied}/{result.total} constraints hold, "
        f"P_c ~ {format_pc_power(result.log10_pc)}, "
        f"confidence {result.confidence:.3f}"
    )
    assert result.detected

    # A schedule produced WITHOUT the watermark fails detection.
    clean = list_schedule(design)
    clean_result = marker.verify(design, clean, watermark)
    print(
        f"unwatermarked schedule: {clean_result.satisfied}/"
        f"{clean_result.total} constraints hold by coincidence"
    )


if __name__ == "__main__":
    main()
