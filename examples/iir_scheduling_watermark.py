#!/usr/bin/env python3
"""The paper's Fig. 3 walk-through: exact coincidence on the IIR filter.

Reproduces the motivational example of §IV-A on the fourth-order
parallel IIR filter: enumerate every feasible schedule of the watermark
locality with and without the signature's temporal edges and report the
exact coincidence probability (the paper's reconstruction counts 166
schedules unconstrained vs 15 constrained, ``P_c = 15/166``), plus the
per-edge ``ψ_W/ψ_N`` ratios (the paper's 10/77 example).

Run: ``python examples/iir_scheduling_watermark.py``
"""

from repro import AuthorSignature, SchedulingWatermarker
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWMParams
from repro.scheduling.enumeration import pairwise_psi
from repro.timing.windows import critical_path_length


def main() -> None:
    design = fourth_order_parallel_iir()
    c = critical_path_length(design)
    print(f"critical path C = {c} control steps")

    signature = AuthorSignature("alice-designs-inc")
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=5),
        k=3,
        epsilon=0.15,
    )
    marker = SchedulingWatermarker(signature, params)
    marked, watermark = marker.embed(design)

    print(f"locality root n_o = {watermark.root}")
    print(f"cone T_o = {watermark.cone}")
    print(f"carved subtree T = {watermark.domain_nodes}")
    print(f"eligible T' = {watermark.eligible_nodes}")
    print(f"temporal edges: {watermark.temporal_edges}")

    # Exact enumeration over the locality, as in Fig. 3.
    exact = marker.exact_coincidence(design, watermark)
    print(
        f"\nschedules of the locality without constraints: "
        f"{exact.without_constraints}"
    )
    print(
        f"schedules satisfying the watermark constraints: "
        f"{exact.with_constraints}"
    )
    print(
        f"exact P_c = {exact.with_constraints}/{exact.without_constraints}"
        f" = {exact.pc:.4f}   (authorship proof {exact.authorship_proof:.4f})"
    )

    # Per-edge psi ratios (the paper's psi_W(e) = 10 / psi_N(e) = 77).
    print("\nper-edge coincidence ratios:")
    for src, dst in watermark.temporal_edges:
        psi_w, psi_n = pairwise_psi(
            design, watermark.horizon, src, dst, nodes=list(watermark.cone)
        )
        print(f"  e({src} -> {dst}): psi_W = {psi_w}, psi_N = {psi_n}")


if __name__ == "__main__":
    main()
