#!/usr/bin/env python3
"""Embedded-IP detection: find a watermark inside a foreign system.

This is the scenario that motivates *local* watermarks (§I): a
misappropriated core is renamed and dropped into a design three times
its size, the whole system is rescheduled, and the author must still
prove the core is theirs.  The detector scans every candidate root,
re-derives the locality's canonical node identification, and checks the
recorded identifier-coded temporal constraints.

Run: ``python examples/embedded_ip_detection.py``
"""

from repro import AuthorSignature
from repro.cdfg.generators import embed_in_host, random_layered_cdfg
from repro.core.attacks import rename_attack
from repro.core.detector import scan_for_watermark
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.scheduling.list_scheduler import list_schedule


def main() -> None:
    params = SchedulingWMParams(
        domain=DomainParams(tau=5, min_domain_size=8), k=6
    )
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, params)

    # Alice designs and watermarks a core.
    core = random_layered_cdfg(80, seed=101, name="alice-core")
    marked_core, watermark = marker.embed(core)
    print(
        f"core: {len(core.schedulable_operations)} ops, watermark of "
        f"{watermark.k} temporal edges rooted at {watermark.root!r}"
    )

    # The thief renames every node and embeds the core in a larger
    # system, then schedules the whole thing.
    renamed, mapping = rename_attack(marked_core, seed=7)
    system = embed_in_host(renamed, host_ops=240, seed=55, prefix="")
    print(
        f"suspect system: {len(system.schedulable_operations)} ops "
        f"(core is {100 * 80 // len(system.schedulable_operations)}% of it), "
        "all names destroyed"
    )
    system_schedule = list_schedule(system)

    # Alice scans the suspect system for her locality.
    hits = scan_for_watermark(
        system, system_schedule, watermark, signature, params.domain
    )
    if not hits:
        print("no watermark found")
        return
    best = hits[0]
    true_root = mapping[watermark.root]
    print(
        f"\nbest hit at root {best.root!r}: "
        f"{best.result.satisfied}/{best.result.total} constraints hold, "
        f"confidence {best.confidence:.4f}"
    )
    print(f"true (renamed) root was {true_root!r}")
    found_roots = [h.root for h in hits]
    print(
        "true root among full-satisfaction hits: "
        f"{true_root in found_roots}"
    )


if __name__ == "__main__":
    main()
