#!/usr/bin/env python3
"""Fingerprinting: trace which customer's copy of a core leaked.

A vendor issues the same master design to several customers, each copy
carrying a customer-specific local watermark.  When a copy surfaces on
the gray market, the vendor checks every customer's archived fingerprint
against the leaked schedule — the leaker's mark verifies fully, the
others only by coincidence.

Run: ``python examples/fingerprinting_demo.py``
"""

from repro import AuthorSignature
from repro.cdfg.generators import random_layered_cdfg
from repro.core.domain import DomainParams
from repro.core.fingerprinting import Fingerprinter
from repro.core.scheduling_wm import SchedulingWMParams
from repro.scheduling.list_scheduler import list_schedule


def main() -> None:
    master = random_layered_cdfg(150, seed=31, num_layers=25, name="dsp-core")
    vendor = AuthorSignature("vendor-corp")
    fingerprinter = Fingerprinter(
        vendor,
        SchedulingWMParams(domain=DomainParams(tau=5, min_domain_size=8), k=6),
    )

    customers = ["acme", "globex", "initech"]
    copies = fingerprinter.issue_copies(master, customers)
    print(f"master design: {len(master.schedulable_operations)} ops")
    for customer, (marked, record) in copies.items():
        print(
            f"  issued to {customer:8s}: {record.watermark.k} temporal "
            f"edges at root {record.watermark.root!r}"
        )

    # globex's copy leaks.
    leaked_design, _ = copies["globex"]
    leaked_schedule = list_schedule(leaked_design)
    print("\na copy leaks; tracing it against all customer fingerprints:")

    records = [copies[c][1] for c in customers]
    matches = fingerprinter.identify(master, leaked_schedule, records)
    for match in matches:
        print(
            f"  {match.customer:8s}: {match.result.satisfied}/"
            f"{match.result.total} constraints hold "
            f"(confidence {match.confidence:.4f})"
        )
    print(f"\nverdict: the leak traces to {matches[0].customer!r}")


if __name__ == "__main__":
    main()
