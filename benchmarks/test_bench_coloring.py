"""Supplementary — §III's generic recipe on graph coloring.

Not a paper table (the paper only sketches the coloring example), but
the generic-methodology claim deserves measurement: evidence strength
vs the number of forced-distinct pairs, and the false-positive behaviour
of independent colorings.
"""

from __future__ import annotations

import networkx as nx

from _bench_util import get_collector, run_once
from repro.coloring import (
    ColoringWatermarker,
    ColoringWMParams,
    dsatur_coloring,
    num_colors,
    verify_coloring,
)
from repro.crypto.signature import AuthorSignature

HEADERS = ["pairs K", "colors", "log10 Pc", "detected", "clean coloring matches"]


def sweep_pairs():
    graph = nx.gnp_random_graph(80, 0.10, seed=11)
    signature = AuthorSignature("alice-designs-inc")
    rows = []
    for k in (2, 4, 8, 12):
        marker = ColoringWatermarker(
            signature, ColoringWMParams(radius=3, k=k, min_locality=10)
        )
        augmented, watermark = marker.embed(graph)
        colors = dsatur_coloring(augmented)
        verify_coloring(augmented, colors)
        result = marker.verify(colors, watermark)
        clean = marker.verify(dsatur_coloring(graph), watermark)
        rows.append(
            (
                k,
                num_colors(colors),
                result.log10_pc,
                result.detected,
                f"{clean.satisfied}/{clean.total}",
            )
        )
    return rows


def test_coloring_watermark(benchmark):
    rows = run_once(benchmark, sweep_pairs)
    table = get_collector("coloring", HEADERS)
    for k, colors, log10_pc, detected, clean in rows:
        table.add(k, colors, f"{log10_pc:.2f}", detected, clean)
    table.emit("Supplementary: local watermarks on graph coloring (§III)")

    # Every embedding is detected in its own solution.
    assert all(r[3] for r in rows)
    # Evidence strengthens with K.
    evidences = [r[2] for r in rows]
    assert all(a > b for a, b in zip(evidences, evidences[1:]))
