"""A1 — Ablation: number of temporal edges ``K`` vs evidence and cost.

DESIGN.md calls out the paper's central tradeoff knob: "the more
constraints, the stronger the proof of authorship, but the higher the
overhead on the solution quality."  This ablation sweeps the target
edge count on one synthetic application and reports both sides.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.core.coincidence import approx_log10_pc
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.vliw.apps import app_by_name
from repro.vliw.compiler import (
    compile_block,
    overhead_percent,
    realize_watermark_as_code,
)
from repro.vliw.machine import paper_machine

HEADERS = ["target K", "edges", "log10 Pc", "cycle overhead"]

PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=8, min_domain_size=6, include_probability=0.8),
    k=8,
    eligibility="mobility",
    min_mobility=3,
    realization_slack=1,
)


def sweep_k():
    app = app_by_name("GSM")  # 802 ops
    machine = paper_machine()
    base = compile_block(app, machine)
    signature = AuthorSignature("alice-designs-inc")
    rows = []
    for target in (4, 8, 16, 32, 64):
        marker = SchedulingWatermarker(signature, PARAMS)
        _, marks = marker.embed_until(app, target, max_marks=96)
        edges = [e for m in marks for e in m.temporal_edges]
        log10_pc = approx_log10_pc(app, edges, model="poisson")
        realized = realize_watermark_as_code(app, edges)
        overhead = overhead_percent(
            base.cycles, compile_block(realized, machine).cycles
        )
        rows.append((target, len(edges), log10_pc, overhead))
    return rows


def test_ablation_k(benchmark):
    rows = run_once(benchmark, sweep_k)
    table = get_collector("ablation_k", HEADERS)
    for target, edges, log10_pc, overhead in rows:
        table.add(target, edges, f"{log10_pc:.1f}", f"{overhead:.2f}%")
    table.emit("A1: K sweep — evidence strengthens, overhead stays small")

    # Evidence (|log10 Pc|) strictly grows with K.
    evidences = [r[2] for r in rows]
    assert all(a > b for a, b in zip(evidences, evidences[1:]))
    # Overhead remains small even at the largest K.
    assert rows[-1][3] < 10.0
    # Edge counts track the requested targets.
    for target, edges, _, _ in rows:
        assert edges >= min(target, 4)
