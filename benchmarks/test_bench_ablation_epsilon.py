"""A2 — Ablation: laxity slack ``ε`` vs eligibility and timing safety.

The eligibility rule admits only nodes with ``laxity ≤ C·(1−ε)``: a
larger ε shrinks the eligible set but guards the critical path harder.
The bench sweeps ε on a HYPER design and checks the invariant the rule
exists for — the marked critical path never stretches — along with the
eligible-set shrinkage.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.cdfg.designs import hyper_design
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.timing.paths import laxity
from repro.crypto.signature import AuthorSignature
from repro.errors import DomainSelectionError
from repro.timing.windows import critical_path_length

HEADERS = [
    "epsilon",
    "design-wide eligible",
    "locality eligible",
    "edges",
    "marked CP",
    "CP stretch",
]


def sweep_epsilon():
    design = hyper_design("Linear GE Cntrlr")
    c = critical_path_length(design)
    lax = laxity(design)
    signature = AuthorSignature("alice-designs-inc")
    rows = []
    for epsilon in (0.05, 0.15, 0.30, 0.50, 0.70):
        global_eligible = sum(
            1
            for n in design.schedulable_operations
            if lax[n] <= c * (1 - epsilon)
        )
        params = SchedulingWMParams(
            domain=DomainParams(tau=6, min_domain_size=4),
            k=4,
            epsilon=epsilon,
        )
        marker = SchedulingWatermarker(signature, params)
        try:
            marked, wm = marker.embed(design)
        except DomainSelectionError:
            rows.append((epsilon, global_eligible, 0, 0, c, 0))
            continue
        rows.append(
            (
                epsilon,
                global_eligible,
                len(wm.eligible_nodes),
                wm.k,
                critical_path_length(marked),
                critical_path_length(marked) - c,
            )
        )
    return c, rows


def test_ablation_epsilon(benchmark):
    c, rows = run_once(benchmark, sweep_epsilon)
    table = get_collector("ablation_epsilon", HEADERS)
    for row in rows:
        table.add(*row)
    table.emit(f"A2: epsilon sweep on Linear GE Cntrlr (C = {c})")

    # The invariant the rule buys: zero critical-path stretch, always.
    for row in rows:
        assert row[5] == 0
    # Design-wide eligibility shrinks (weakly) as epsilon grows; the
    # per-locality count varies with the carve and is informational.
    global_counts = [row[1] for row in rows]
    assert all(a >= b for a, b in zip(global_counts, global_counts[1:]))
    # Small epsilon leaves room to embed.
    assert rows[0][3] >= 1
