"""E5 — §III protocol / Fig. 1: detection across adversarial scenarios.

Measures the detection behaviour local watermarks were invented for:

* the shipped (stripped) design — record replay;
* the design renamed by the adversary — structural root scan;
* the core embedded into a 3–4× larger host and rescheduled — root scan;
* a cut partition containing only the locality;
* false positives: scans of an unrelated design, and ghost-signature
  search on the marked design.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.cdfg.generators import embed_in_host, random_layered_cdfg
from repro.core.attacks import (
    apply_renaming,
    ghost_signature_search,
    rename_attack,
)
from repro.core.detector import scan_for_watermark, verify_by_record
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.schedule import Schedule

HEADERS = ["scenario", "outcome", "evidence", "confidence"]

PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=5, min_domain_size=8), k=6
)


def detection_pipeline():
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, PARAMS)
    core = random_layered_cdfg(100, seed=4242, name="core")
    marked, watermark = marker.embed(core)
    schedule = list_schedule(marked)
    rows = []

    # 1. shipped design, record replay.
    shipped = marked.without_temporal_edges()
    result = verify_by_record(shipped, schedule, watermark, signature)
    rows.append(
        (
            "shipped design (record replay)",
            result.detected,
            f"{result.satisfied}/{result.total}",
            result.confidence,
        )
    )

    # 2. renamed design, root scan.
    renamed, mapping = rename_attack(marked, seed=77)
    hits = scan_for_watermark(
        renamed.without_temporal_edges(),
        apply_renaming(schedule, mapping),
        watermark,
        signature,
        PARAMS.domain,
    )
    found = bool(hits) and mapping[watermark.root] in [h.root for h in hits]
    best = hits[0].result if hits else None
    rows.append(
        (
            "renamed design (root scan)",
            found,
            f"{best.satisfied}/{best.total}" if best else "0/0",
            best.confidence if best else 0.0,
        )
    )

    # 3. embedded in a larger host and rescheduled as a whole.
    host = embed_in_host(marked, host_ops=300, seed=11, prefix="ip/")
    host_schedule = list_schedule(host)
    hits = scan_for_watermark(
        host, host_schedule, watermark, signature, PARAMS.domain
    )
    found = bool(hits) and f"ip/{watermark.root}" in [h.root for h in hits]
    best = hits[0].result if hits else None
    rows.append(
        (
            "embedded in 4x host (root scan)",
            found,
            f"{best.satisfied}/{best.total}" if best else "0/0",
            best.confidence if best else 0.0,
        )
    )

    # 4. cut partition: only the locality's fanin survives.
    keep = set(watermark.cone)
    for node in list(keep):
        keep |= core.fanin_tree(node, 99)
    cut = marked.subgraph(keep)
    cut_schedule = Schedule(
        {n: t for n, t in schedule.start_times.items() if n in keep}
    )
    result = verify_by_record(
        cut.without_temporal_edges(), cut_schedule, watermark, signature
    )
    rows.append(
        (
            f"cut partition ({len(keep)} of 100 ops)",
            result.detected,
            f"{result.satisfied}/{result.total}",
            result.confidence,
        )
    )

    # 5a. false positive: scan an unrelated design.
    unrelated = random_layered_cdfg(100, seed=999, name="unrelated")
    hits = scan_for_watermark(
        unrelated,
        list_schedule(unrelated),
        watermark,
        signature,
        PARAMS.domain,
    )
    rows.append(
        (
            "unrelated design (false-positive scan)",
            len(hits) == 0,
            f"{len(hits)} full hits",
            max((h.confidence for h in hits), default=0.0),
        )
    )

    # 5b. false authorship: ghost signatures on the marked design.
    ghost = ghost_signature_search(
        shipped, schedule, n_candidates=6, seed=5, params=PARAMS
    )
    rows.append(
        (
            "ghost signatures (6 candidates)",
            ghost.detections == 0,
            f"best partial {ghost.best_fraction:.2f}",
            0.0,
        )
    )
    return rows


def test_detection_scenarios(benchmark):
    rows = run_once(benchmark, detection_pipeline)
    table = get_collector("detection", HEADERS)
    for scenario, ok, evidence, confidence in rows:
        table.add(scenario, "PASS" if ok else "fail", evidence, f"{confidence:.4f}")
    table.emit("E5: detection across adversarial scenarios (Fig. 1 / §III)")

    # The four positive scenarios must all detect.
    for scenario, ok, _, _ in rows[:4]:
        assert ok, scenario
    # Ghost search must find no full match.
    assert rows[5][1], "ghost signature produced a full coincidental match"
