"""Benchmark harness configuration.

Each bench module reproduces one table or figure of the paper; rows are
accumulated in `_bench_util` collectors and rendered (and written to
``benchmarks/out/``) by each module's final report step, so
``pytest benchmarks/ --benchmark-only`` both times the pipelines and
emits the reproduced tables for EXPERIMENTS.md.
"""
