"""E11 — sharded fleet soak: chaos survival + scaling gate.

Drives a duplicate-heavy embed/schedule batch through a 3-shard TCP
fleet while the bench SIGKILLs one shard and gracefully drains another
mid-run.  Every job must come back 200 with results bit-identical to
the single-engine ``execute_job`` path — reroutes, hedges, and the
shard respawn are invisible to callers because the shared disk cache's
cross-process single-flight makes re-execution side-effect-safe.

The gate compares aggregate fleet throughput against a single-shard
run of the same composition: with N shards the fleet must clear
**N/2 x** the single-shard jobs/s even though a third of its capacity
is killed or drained mid-batch.

Unique jobs carry a calibrated worker-side latency (the engine's
non-identity ``_hook: {"sleep_s": ...}`` — excluded from the cache
key, applied only when a worker actually computes) on top of their
real compute.  CI containers may expose a single core, where three
CPU-bound shard processes can never beat one; pinning per-job service
time makes the gate measure what the fleet actually adds — keeping N
shards' workers concurrently busy through routing, hedging, and chaos
— rather than the host's core count.

Writes ``BENCH_fleet.json``.  ``BENCH_FLEET_SMOKE=1`` shrinks the soak
to a ~240-job batch with one SIGKILL (CI's smoke lane) and skips the
throughput gate; the gate applies to the full run only.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time

from _bench_util import OUT_DIR, get_collector
from repro.cdfg.designs.hyper_suite import HYPER_SUITE
from repro.cdfg.io import to_dict
from repro.service import (
    Fleet,
    FleetConfig,
    ServiceConfig,
    canonical_json,
    execute_job,
    job_key,
)
from repro.util.atomicio import atomic_write_json
from repro.util.perf import PerfRegistry

SMOKE = os.environ.get("BENCH_FLEET_SMOKE") == "1"
SHARDS = 3
WORKERS = 1
UNIQUE = 120 if SMOKE else 5000
COPIES = 2  # fixed duplicate ratio: 1 - 1/COPIES
#: Worker-side service time per unique job (see module docstring).
SLEEP_S = 0.03
#: Single-shard reference batch — same composition, smaller so the
#: reference run stays cheap (jobs/s is composition-sensitive, not
#: batch-size-sensitive once the pool is warm).
REF_UNIQUE = 40 if SMOKE else 500
TARGET_RATIO = SHARDS / 2  # aggregate >= N/2 x single-shard jobs/s
MAX_PENDING = 64
KILL_AT = 0.25  # SIGKILL shard-1 after this fraction of jobs finished
DRAIN_AT = 0.55  # gracefully drain shard-2 after this fraction (full)

HEADERS = ["run", "shards", "jobs", "unique", "seconds", "jobs/s",
           "reroutes", "hedges"]

_SPEC = sorted(HYPER_SUITE, key=lambda spec: spec.variables)[0]

#: Both variants ignore ``tag`` when computing but include it in the
#: cache key, so every unique job is a real worker-pool computation
#: with a known-good outcome.  ``svc-author-0`` embeds on this design
#: at tau=4 (pinned by the E10 smoke lane).
def _variants(design):
    return [
        ("embed", {"design": design, "author": "svc-author-0",
                   "k": 4, "tau": 4}),
        ("schedule", {"design": design, "scheduler": "force-directed"}),
    ]


def _workload(unique_count):
    """``unique_count`` tag-varied jobs, each repeated COPIES times."""
    design = to_dict(_SPEC.factory())
    variants = _variants(design)
    unique = []
    for i in range(unique_count):
        op, params = variants[i % len(variants)]
        unique.append((op, dict(params, tag=f"u{i:05d}",
                                _hook={"sleep_s": SLEEP_S})))
    jobs = []
    for copy in range(COPIES):
        # Interleave copies so duplicates spread across the batch like
        # a real queue, not COPIES identical back-to-back bursts.
        offset = (copy * 17) % unique_count
        jobs.extend(unique[offset:] + unique[:offset])
    return unique, jobs, variants


def _warm_jobs(fleet, design):
    """One warmup job per shard, routed to it, to spawn its pool."""
    jobs, i = {}, 0
    while len(jobs) < len(fleet.shards):
        params = {"design": design, "tag": f"warm-{i}"}
        primary = fleet._ring.walk(job_key("schedule", params))[0]
        jobs.setdefault(primary, params)
        i += 1
    return jobs.values()


async def _soak(config, jobs, chaos=False):
    """Run ``jobs`` through a fleet; optionally kill/drain mid-batch.

    Returns (outcomes-in-order, elapsed seconds, registry, events).
    """
    registry = PerfRegistry()
    design = to_dict(_SPEC.factory())
    done = 0
    events = []

    async with Fleet(config, registry=registry) as fleet:
        # Spawn every shard's worker pool before the clock starts: the
        # measurement is job throughput, not process startup.
        for params in _warm_jobs(fleet, design):
            warm = await fleet.submit("schedule", params)
            assert warm.ok

        limiter = asyncio.Semaphore(MAX_PENDING)

        async def one(op, params):
            nonlocal done
            async with limiter:
                outcome = await fleet.submit(op, params)
            done += 1
            return outcome

        async def wreak_havoc():
            while done < KILL_AT * len(jobs):
                await asyncio.sleep(0.01)
            fleet.shards["shard-1"].kill()
            events.append({"event": "sigkill", "shard": "shard-1",
                           "after_jobs": done})
            if SMOKE:
                return
            while done < DRAIN_AT * len(jobs):
                await asyncio.sleep(0.01)
            await fleet.drain_shard("shard-2")
            events.append({"event": "drain", "shard": "shard-2",
                           "after_jobs": done})

        started = time.perf_counter()
        tasks = [asyncio.ensure_future(one(op, params))
                 for op, params in jobs]
        chaos_task = (asyncio.ensure_future(wreak_havoc())
                      if chaos else None)
        outcomes = await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - started
        if chaos_task is not None:
            await chaos_task
    return outcomes, elapsed, registry, events


def _assert_bit_identical(jobs, outcomes, variants):
    """Every outcome matches the in-process single-engine result."""
    reference = {
        op: canonical_json(execute_job(op, params))
        for op, params in variants
    }
    for (op, params), outcome in zip(jobs, outcomes):
        assert outcome.ok and outcome.code == 200, (
            f"lost job {op} tag={params.get('tag')}: "
            f"{outcome.code} {outcome.error}")
        assert canonical_json(outcome.result) == reference[op], (
            f"fleet result diverged from execute_job for {op} "
            f"tag={params.get('tag')}")


def test_fleet_soak_survives_chaos_and_scales():
    unique, jobs, variants = _workload(UNIQUE)
    assert len(jobs) == UNIQUE * COPIES
    assert len(jobs) >= (200 if SMOKE else 10_000)

    # Fresh cache roots per run: a shared (or stale) disk tier would
    # let one run pre-warm the other's keys and void the comparison.
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        single_cfg = FleetConfig(
            shards=1, shard_kind="tcp",
            service=ServiceConfig(workers=WORKERS,
                                  queue_limit=len(jobs),
                                  cache_dir=os.path.join(tmp, "single")))
        fleet_cfg = FleetConfig(
            shards=SHARDS, shard_kind="tcp",
            service=ServiceConfig(workers=WORKERS,
                                  queue_limit=len(jobs),
                                  cache_dir=os.path.join(tmp, "fleet")))

        _, ref_jobs, _ = _workload(REF_UNIQUE)
        ref_out, ref_s, _, _ = asyncio.run(_soak(single_cfg, ref_jobs))
        assert all(o.ok for o in ref_out)

        outcomes, fleet_s, registry, events = asyncio.run(
            _soak(fleet_cfg, jobs, chaos=True))

    # Zero lost jobs, bit-identical to the single-engine path — even
    # though one shard was SIGKILLed and another drained mid-batch.
    assert len(outcomes) == len(jobs)
    _assert_bit_identical(jobs, outcomes, variants)
    assert registry.get("fleet.shard_deaths") >= 1
    assert any(e["event"] == "sigkill" for e in events)
    if not SMOKE:
        assert any(e["event"] == "drain" for e in events)
        assert registry.get("fleet.drains") >= 1
    rerouted = sum(1 for o in outcomes if o.reroutes)
    assert rerouted >= 1  # the chaos was actually in the hot path

    fleet_jps = len(jobs) / fleet_s
    ref_jps = len(ref_jobs) / ref_s
    ratio = fleet_jps / ref_jps

    table = get_collector("BENCH_fleet", HEADERS)
    table.add("single", 1, len(ref_jobs), REF_UNIQUE, f"{ref_s:.2f}",
              f"{ref_jps:.0f}", 0, 0)
    table.add("fleet+chaos", SHARDS, len(jobs), UNIQUE,
              f"{fleet_s:.2f}", f"{fleet_jps:.0f}",
              registry.get("fleet.reroutes"),
              registry.get("fleet.hedges"))
    table.emit("E11: fleet soak (SIGKILL + drain mid-batch)")

    gate = None
    if not SMOKE:
        gate = {
            "target_ratio": TARGET_RATIO,
            "measured_ratio": round(ratio, 2),
            "passed": ratio >= TARGET_RATIO,
        }

    OUT_DIR.mkdir(exist_ok=True)
    atomic_write_json(OUT_DIR / "BENCH_fleet.json", {
        "smoke": SMOKE,
        "design": _SPEC.name,
        "topology": {"shards": SHARDS, "shard_kind": "tcp",
                     "workers_per_shard": WORKERS},
        "workload": {"jobs": len(jobs), "unique": UNIQUE,
                     "copies": COPIES,
                     "duplicate_ratio": round(1 - UNIQUE / len(jobs), 3),
                     "service_time_s_per_unique": SLEEP_S},
        "chaos": events,
        "fleet": {
            "seconds": round(fleet_s, 3),
            "jobs_per_s": round(fleet_jps, 1),
            "rerouted_jobs": rerouted,
            "reroutes": registry.get("fleet.reroutes"),
            "hedges": registry.get("fleet.hedges"),
            "hedge_wins": registry.get("fleet.hedge_wins"),
            "shard_deaths": registry.get("fleet.shard_deaths"),
            "recoveries": registry.get("fleet.recoveries"),
            "drains": registry.get("fleet.drains"),
        },
        "single_shard": {"jobs": len(ref_jobs),
                         "seconds": round(ref_s, 3),
                         "jobs_per_s": round(ref_jps, 1)},
        "gate": gate,
    })

    if not SMOKE:
        assert gate["passed"], (
            f"fleet aggregate {fleet_jps:.0f} jobs/s is below "
            f"{TARGET_RATIO}x the single-shard {ref_jps:.0f} jobs/s")
