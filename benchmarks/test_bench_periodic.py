"""E15 — periodic workload: modulo kernel speedup and watermark II gate.

Two gates over the cyclic (streaming) suite:

* **Kernel vs unrolled reference** — the modulo kernel computes
  steady-state ASAP/ALAP windows by a handful of fixpoint sweeps; the
  unrolled reference materializes one graph copy per unit of total
  back-edge distance.  Both are bit-identical on every design (that's
  the ``periodic_windows`` differential oracle), and the kernel must be
  **>= 5x** faster on the cyclic echo-canceler tier, where hundreds of
  loop-carried weight edges make unrolling expensive.
* **Watermark II overhead** — embedding the cross-iteration watermark
  must not raise the achievable initiation interval by more than **+1**
  over the unmarked design, on every cyclic suite member.

``BENCH_PERIODIC_SMOKE=1`` (CI's periodic-smoke job) restricts the
sweep to the small echo tier, keeps the equality lane, and skips the
speedup gate; the oracle lane always runs 50 trials.

Results go to ``BENCH_periodic.json`` / ``BENCH_periodic.txt``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Tuple

from _bench_util import OUT_DIR, get_collector
from repro.cdfg.designs import PERIODIC_SUITE
from repro.cdfg.graph import CDFG
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.resilience.pipeline import robust_schedule
from repro.timing.unrolled import unrolled_reference_windows
from repro.timing.windows import (
    periodic_critical_path_length,
    periodic_scheduling_windows,
)
from repro.util.atomicio import atomic_write_json
from repro.verify.differential import oracle_periodic_windows

HEADERS = [
    "design",
    "nodes",
    "back edges",
    "II",
    "unrolled ms",
    "modulo ms",
    "speedup",
    "windows equal",
]

SMOKE = os.environ.get("BENCH_PERIODIC_SMOKE") == "1"
TARGET_SPEEDUP = 5.0
#: The tier carrying the speedup gate (hundreds of back edges).
GATE_DESIGN = "echo-cyclic-bench"
ORACLE_TRIALS = 50

SWEEP = (
    [s for s in PERIODIC_SUITE if s.name != GATE_DESIGN]
    if SMOKE
    else list(PERIODIC_SUITE)
)

BENCH_AUTHOR = "bench-periodic-author"


def _wm_config(design: CDFG) -> Tuple[SchedulingWMParams, int]:
    """Per-design embedding knobs (mirrors the golden battery).

    Tight loops (every cycle saturated at the minimum II) get one extra
    interval and two horizon steps of slack; everything else embeds at
    the design's minimum II with the steady-state horizon.
    """
    mii = design.view().min_ii()
    if design.name == "cyclic_pid":
        ii = mii + 1
        horizon = periodic_critical_path_length(design, ii) + 2
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=4),
            horizon=horizon,
            eligibility="mobility",
            min_mobility=1,
        )
        return params, ii
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=4),
        eligibility="mobility",
    )
    return params, mii


def _time(fn, *args):
    started = time.perf_counter()
    result = fn(*args)
    return (time.perf_counter() - started) * 1000.0, result


def _timed_windows(design: CDFG, horizon: int, ii: int):
    """(unrolled_ms, modulo_ms, equal) with view construction excluded.

    Both sides read the same prebuilt adjacency snapshot; fresh copies
    per side keep the kernel's modulo memo from serving a warm hit.
    """
    kernel_side = design.copy()
    kernel_side.view()
    unrolled_side = design.copy()
    unrolled_side.view()
    unrolled_ms, reference = _time(
        unrolled_reference_windows, unrolled_side, horizon, ii
    )
    modulo_ms, kernel = _time(
        periodic_scheduling_windows, kernel_side, horizon, ii
    )
    return unrolled_ms, modulo_ms, kernel == reference


def test_modulo_kernel_vs_unrolled_reference():
    table = get_collector("BENCH_periodic", HEADERS)
    results = []
    for spec in SWEEP:
        design = spec.factory()
        ii = design.view().min_ii()
        horizon = periodic_critical_path_length(design, ii)
        unrolled_ms, modulo_ms, equal = _timed_windows(design, horizon, ii)
        assert equal, f"modulo windows diverged from unrolled on {spec.name}"
        speedup = unrolled_ms / modulo_ms if modulo_ms > 0 else float("inf")
        nodes = len(design.operations)
        back = len(design.back_edges)
        table.add(
            spec.name, nodes, back, ii,
            f"{unrolled_ms:.2f}", f"{modulo_ms:.2f}", f"{speedup:.1f}x",
            equal,
        )
        results.append(
            {
                "design": spec.name,
                "nodes": nodes,
                "back_edges": back,
                "ii": ii,
                "unrolled_ms": unrolled_ms,
                "modulo_ms": modulo_ms,
                "speedup": speedup,
                "windows_equal": equal,
            }
        )

    gate = None
    if not SMOKE:
        tier = next(r for r in results if r["design"] == GATE_DESIGN)
        gate = {
            "design": tier["design"],
            "target_speedup": TARGET_SPEEDUP,
            "measured_speedup": tier["speedup"],
            "passed": tier["speedup"] >= TARGET_SPEEDUP,
        }
        assert tier["speedup"] >= TARGET_SPEEDUP, (
            f"modulo kernel speedup {tier['speedup']:.1f}x below "
            f"{TARGET_SPEEDUP}x on {tier['design']}"
        )

    _merge_bench_json({"smoke": SMOKE, "kernel_rows": results, "gate": gate})
    table.emit("E15: modulo kernel vs unrolled-iteration reference")


def test_watermarked_ii_overhead():
    """Embedding never costs more than +1 initiation interval."""
    rows = []
    for spec in SWEEP:
        design = spec.factory()
        unmarked = robust_schedule(design)
        params, ii = _wm_config(design)
        marker = SchedulingWatermarker(AuthorSignature(BENCH_AUTHOR), params)
        marked, watermark = marker.embed(design, ii=ii)
        result = robust_schedule(marked, horizon=watermark.horizon)
        verdict = marker.verify(design, result.schedule, watermark)
        assert verdict.satisfied == verdict.total > 0, spec.name
        assert result.ii <= unmarked.ii + 1, (
            f"watermark raised II from {unmarked.ii} to {result.ii} "
            f"on {spec.name}"
        )
        rows.append(
            {
                "design": spec.name,
                "unmarked_ii": unmarked.ii,
                "marked_ii": result.ii,
                "edges": watermark.k,
                "satisfied": verdict.satisfied,
            }
        )
    _merge_bench_json({"ii_overhead": rows})


def test_periodic_oracle_lane():
    """50 trials of the modulo-vs-unrolled oracle must stay clean."""
    divergences = []
    for trial in range(ORACLE_TRIALS):
        divergences += oracle_periodic_windows(1515, trial)
    assert divergences == [], [d.detail for d in divergences]
    _merge_bench_json(
        {"oracle": {"trials": ORACLE_TRIALS, "divergences": 0}}
    )


def _merge_bench_json(updates: dict) -> None:
    """Fold *updates* into ``BENCH_periodic.json`` without clobbering."""
    import json

    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_periodic.json"
    payload: Dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    atomic_write_json(path, payload)
