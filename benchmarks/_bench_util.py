"""Shared helpers for the benchmark harness (imported by bench modules)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

OUT_DIR = Path(__file__).parent / "out"


class RowCollector:
    """Accumulates table rows across parametrized benchmark cases."""

    def __init__(self, name: str, headers: Sequence[str]) -> None:
        self.name = name
        self.headers = list(headers)
        self.rows: List[List[object]] = []

    def add(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def render(self, title: str) -> str:
        from repro.analysis.report import render_table

        return render_table(self.headers, self.rows, title=title)

    def emit(self, title: str) -> str:
        """Render, print, and persist the table; returns the text."""
        text = self.render(title)
        print("\n" + text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{self.name}.txt").write_text(text + "\n", encoding="utf-8")
        return text


_collectors: Dict[str, RowCollector] = {}


def get_collector(name: str, headers: Sequence[str]) -> RowCollector:
    """Process-wide collector registry keyed by table name."""
    if name not in _collectors:
        _collectors[name] = RowCollector(name, headers)
    return _collectors[name]


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with a single round (pipelines are heavyweight)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
