"""A3 — Ablation: exact vs approximate ``P_c`` on enumerable designs.

The paper computes exact coincidence only "for small examples" and
relies on the window-model approximation everywhere else.  This bench
quantifies that approximation on designs small enough to enumerate:
every single-edge constraint of several watermarks is measured both
ways, and uniform vs Poisson placement models are compared.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.generators import random_layered_cdfg
from repro.core.coincidence import approx_log10_pc, exact_pc
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import DomainSelectionError

HEADERS = [
    "design",
    "edge",
    "exact log10",
    "uniform log10",
    "poisson log10",
]


def collect_cases():
    designs = [fourth_order_parallel_iir(), fourth_order_parallel_iir()]
    for seed in (1, 2, 3, 4, 5):
        designs.append(random_layered_cdfg(26, seed=seed, num_layers=5))
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=4), k=3
    )
    rows = []
    for index, design in enumerate(designs):
        marker = SchedulingWatermarker(
            AuthorSignature(f"author-{index}"), params
        )
        try:
            _, wm = marker.embed(design)
        except DomainSelectionError:
            continue
        for edge in wm.temporal_edges:
            exact = exact_pc(
                design, [edge], horizon=wm.horizon, nodes=list(wm.cone)
            )
            uniform = approx_log10_pc(
                design, [edge], horizon=wm.horizon, model="uniform"
            )
            poisson = approx_log10_pc(
                design, [edge], horizon=wm.horizon, model="poisson"
            )
            rows.append(
                (design.name, f"{edge[0]}->{edge[1]}", exact.log10_pc,
                 uniform, poisson)
            )
    return rows


def test_pc_accuracy(benchmark):
    rows = run_once(benchmark, collect_cases)
    assert len(rows) >= 4

    table = get_collector("pc_accuracy", HEADERS)
    errors_uniform = []
    errors_poisson = []
    for name, edge, exact, uniform, poisson in rows:
        table.add(
            name, edge, f"{exact:.2f}", f"{uniform:.2f}", f"{poisson:.2f}"
        )
        errors_uniform.append(abs(exact - uniform))
        errors_poisson.append(abs(exact - poisson))
    table.emit("A3: exact vs approximate per-edge log10 P_c")

    # The approximation must track the exact value within roughly one
    # order of magnitude per edge (the paper treats it as a first-order
    # estimate; window correlations account for the residual).
    assert max(errors_uniform) < 1.5
    assert sum(errors_uniform) / len(errors_uniform) < 0.8
