"""E12 — adversarial arena: attack-vs-detector ROC + the damage gate.

Runs the full arena sweep — three HYPER designs × K ∈ {8, 32} × every
registered attack (blind, rebuild-class, and adaptive) × three
strengths × clean and faulty extraction — at 10⁴-trial scale through
the crash-safe :class:`~repro.arena.runner.ArenaRunner`, then builds
the detection-confidence-vs-design-damage curves and asserts the
paper's robustness claim as an executable gate: every gate-eligible
cell (non-adaptive, solution-preserving attack, K ≥ 32, clean
extraction) whose mean damage stays at or below 10 % must keep mean
detection coincidence at or below 1e-6.

Writes ``BENCH_arena.json`` (the committed ROC artifact — curves,
totals, and the gate verdict, via the same
:func:`~repro.arena.roc.roc_artifact` builder the CLI uses) and
``BENCH_arena.txt``.  ``BENCH_ARENA_SMOKE=1`` shrinks the sweep to one
design × K=32 × four attacks × 200 trials (CI's smoke lane) and skips
the full-coverage assertions; the gate itself applies in both lanes.
"""

from __future__ import annotations

import os
import tempfile

from _bench_util import OUT_DIR, get_collector
from repro.arena.attacks import ATTACKS
from repro.arena.roc import (
    ARENA_HEADERS,
    aggregate_arena,
    roc_artifact,
)
from repro.arena.runner import ArenaRunner, canonical_records
from repro.arena.sweep import ArenaManifest
from repro.util.atomicio import atomic_write_json

SMOKE = os.environ.get("BENCH_ARENA_SMOKE") == "1"

DESIGNS = (
    ("Linear GE Cntrlr",)
    if SMOKE
    else ("Linear GE Cntrlr", "Volterra 3rd non-lin.", "D/A Converter")
)
K_VALUES = (32,) if SMOKE else (8, 32)
SWEEP_ATTACKS = (
    ("reorder", "rename", "edge_rewire", "adaptive_cut")
    if SMOKE
    else tuple(sorted(ATTACKS))
)
STRENGTHS = (0.5, 1.0) if SMOKE else (0.25, 0.5, 1.0)
FAULT_RATES = (0.0,) if SMOKE else (0.0, 0.1)
FAULT_KINDS = () if SMOKE else ("delete_edges",)
#: 200 trials in the smoke lane; 10 080 (288 cells × 35) in full.
TRIALS = 25 if SMOKE else 35
SEED = 20000


def test_arena_roc_and_damage_gate():
    manifest = ArenaManifest(
        designs=DESIGNS,
        k_values=K_VALUES,
        attacks=SWEEP_ATTACKS,
        strengths=STRENGTHS,
        fault_rates=FAULT_RATES,
        fault_kinds=FAULT_KINDS,
        trials=TRIALS,
        seed=SEED,
        author="Arena Bench Lab",
    )
    with tempfile.TemporaryDirectory(prefix="bench-arena-") as run_dir:
        result = ArenaRunner(run_dir).start(manifest)
    records = canonical_records({r.index: r for r in result.records})

    # Every planned trial completed: attacks and verification are total
    # functions of (case, seed) — errors would poison the curves.
    expected = (
        len(DESIGNS) * len(K_VALUES) * len(SWEEP_ATTACKS)
        * len(STRENGTHS) * len(FAULT_RATES) * TRIALS
    )
    assert len(records) == expected
    assert all(r["outcome"] == "completed" for r in records)

    artifact = roc_artifact(manifest.to_dict(), records)

    # The committed artifact's coverage floor: >= 3 designs × >= 2 K
    # values × >= 4 attack types, at least one adaptive.
    if not SMOKE:
        curves = artifact["curves"]
        assert len({c["design"] for c in curves}) >= 3
        assert len({c["k"] for c in curves}) >= 2
        assert len({c["attack"] for c in curves}) >= 4
        assert any(c["adaptive"] for c in curves)
        assert expected >= 10_000

    # The damage-floor gate — the paper's robustness claim, executable.
    assert artifact["gate"]["holds"], artifact["gate"]["violations"]

    # ... and it was not vacuously true.
    eligible = [
        p
        for p in aggregate_arena(records)
        if p.k >= artifact["gate"]["min_k"]
        and p.fault_rate == 0.0
        and p.attack in artifact["gate"]["attacks"]
        and p.mean_damage <= artifact["gate"]["max_damage"]
    ]
    assert eligible

    table = get_collector("BENCH_arena", ARENA_HEADERS)
    for p in aggregate_arena(records):
        table.add(
            p.design, p.k, p.attack, f"{p.strength:.2f}",
            f"{p.fault_rate:.2f}", p.trials,
            f"{100.0 * p.mean_fraction:.1f}%",
            f"{p.mean_confidence:.4f}", f"{p.mean_log10_pc:.2f}",
            f"{p.mean_damage:.3f}",
            f"{p.detection_rate * p.completed:.0f}/{p.completed}",
            p.errors,
        )
    table.emit(
        "E12: adversarial arena (smoke)" if SMOKE
        else "E12: adversarial arena"
    )

    OUT_DIR.mkdir(exist_ok=True)
    payload = dict(artifact)
    payload["smoke"] = SMOKE
    atomic_write_json(OUT_DIR / "BENCH_arena.json", payload)
