"""E8 — incremental timing kernel: speedup and bit-exactness gate.

Embedding at ``K`` temporal edges maintains ASAP/ALAP windows after
every insertion.  The retained reference
(:func:`repro.timing.kernel.edge_sequence_windows`) recomputes the full
windows after each edge — exactly what the pre-kernel embedding loop
did; the kernel (:class:`repro.timing.kernel.IncrementalWindows`)
repairs them by delta propagation over the affected cone.

This bench times both on the same deterministic K-edge sequences over
the hyper-suite designs, asserts node-for-node window equality (the
kernel's headline invariant), asserts the end-to-end watermarker picks
identical edges on both paths, and writes ``BENCH_kernel.json``.  Gate:
**>= 5x** window-maintenance speedup at ``K >= 8`` on the largest suite
design.

``BENCH_KERNEL_SMOKE=1`` restricts the sweep to the smallest design
(CI's bench-smoke job); the speedup gate only applies to the full run.

The **large tier** (``test_large_tier_vectorized_sweeps``) times the
array-native level-batched sweeps against the worklist reference on the
synthetic 50k–120k-node designs: full ASAP/tails/ALAP plus a bulk
feasibility screen, node-for-node identical, gated at **>= 5x** on a
>= 100k-node design (equality only under smoke, which uses the 50k
composite).  Results merge into ``BENCH_kernel.json`` under
``large_tier`` alongside the E8 rows.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Tuple

import pytest

from _bench_util import OUT_DIR, get_collector
from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.graph import CDFG
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import ReproError
from repro.cdfg.designs.hyper_suite import HYPER_SUITE
from repro.cdfg.designs.synthetic import synthetic_design
from repro.timing.kernel import (
    NUMPY_AVAILABLE,
    CDFGView,
    IncrementalWindows,
    edge_sequence_windows,
    kernel_mode_override,
)
from repro.timing.windows import critical_path_length, scheduling_windows
from repro.util.atomicio import atomic_write_json

HEADERS = [
    "design",
    "nodes",
    "K",
    "full ms",
    "incremental ms",
    "speedup",
    "windows equal",
]

SMOKE = os.environ.get("BENCH_KERNEL_SMOKE") == "1"
#: The gate target from the issue: >= 5x on the largest suite design.
TARGET_SPEEDUP = 5.0
K_EDGES = 8

_designs = sorted(HYPER_SUITE, key=lambda s: s.variables)
SWEEP = _designs[:1] if SMOKE else list(HYPER_SUITE)
LARGEST = max(HYPER_SUITE, key=lambda s: s.variables)


def _merge_bench_json(updates: dict) -> None:
    """Fold *updates* into ``BENCH_kernel.json`` without clobbering.

    The E8 sweep and the large tier run as separate tests (and CI jobs
    select them with ``-k``); each owns its keys and preserves the
    other's.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_kernel.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    atomic_write_json(path, payload)


def plan_edges(cdfg: CDFG, horizon: int, k: int, seed: int = 1) -> List[Tuple[str, str]]:
    """A deterministic feasible K-edge temporal-edge sequence."""
    scratch = cdfg.copy()
    iw = IncrementalWindows(scratch, horizon)
    ops = list(scratch.schedulable_operations)
    rng = random.Random(seed)
    plan: List[Tuple[str, str]] = []
    for _ in range(200 * k):
        if len(plan) >= k:
            break
        u, v = rng.sample(ops, 2)
        if scratch.graph.has_edge(u, v) or not iw.can_add_edge(u, v):
            continue
        try:
            iw.add_edge(u, v)
        except ReproError:
            continue  # cycle: order already implied the other way
        plan.append((u, v))
    return plan


def _time(fn, *args) -> Tuple[float, object]:
    started = time.perf_counter()
    result = fn(*args)
    return (time.perf_counter() - started) * 1000.0, result


def run_incremental(
    cdfg: CDFG, horizon: int, edges: List[Tuple[str, str]]
) -> Dict[str, Tuple[int, int]]:
    iw = IncrementalWindows(cdfg, horizon)
    for src, dst in edges:
        iw.add_edge(src, dst)
    return iw.windows()


def test_kernel_vs_reference_window_maintenance():
    table = get_collector("BENCH_kernel", HEADERS)
    results = []
    for spec in SWEEP:
        design = spec.factory()
        horizon = critical_path_length(design)
        edges = plan_edges(design, horizon, K_EDGES)
        assert len(edges) >= 1, f"no feasible temporal edge on {spec.name}"

        full_ms, full = _time(
            edge_sequence_windows, design.copy(), horizon, edges
        )
        inc_ms, incremental = _time(
            run_incremental, design.copy(), horizon, edges
        )
        equal = incremental == full
        assert equal, f"kernel windows diverged on {spec.name}"
        speedup = full_ms / inc_ms if inc_ms > 0 else float("inf")
        nodes = len(design.operations)
        table.add(
            spec.name, nodes, len(edges),
            f"{full_ms:.2f}", f"{inc_ms:.2f}", f"{speedup:.1f}x", equal,
        )
        results.append(
            {
                "design": spec.name,
                "nodes": nodes,
                "k": len(edges),
                "full_ms": full_ms,
                "incremental_ms": inc_ms,
                "speedup": speedup,
                "windows_equal": equal,
            }
        )

    gate = None
    if not SMOKE:
        largest = next(r for r in results if r["design"] == LARGEST.name)
        assert largest["k"] >= K_EDGES
        gate = {
            "design": largest["design"],
            "target_speedup": TARGET_SPEEDUP,
            "measured_speedup": largest["speedup"],
            "passed": largest["speedup"] >= TARGET_SPEEDUP,
        }
        assert largest["speedup"] >= TARGET_SPEEDUP, (
            f"kernel speedup {largest['speedup']:.1f}x below "
            f"{TARGET_SPEEDUP}x on {largest['design']}"
        )

    _merge_bench_json({"smoke": SMOKE, "rows": results, "gate": gate})
    table.emit("E8: incremental kernel vs full window recompute")


def test_kernel_equality_on_random_designs():
    """Equality gate on seeded random DAGs, not just the curated suite."""
    for num_ops, seed in ((40, 11), (80, 23), (160, 47)):
        design = random_layered_cdfg(num_ops, seed)
        horizon = critical_path_length(design) + (seed % 3)
        edges = plan_edges(design, horizon, K_EDGES, seed=seed)
        if not edges:
            continue
        full = edge_sequence_windows(design.copy(), horizon, edges)
        incremental = run_incremental(design.copy(), horizon, edges)
        assert incremental == full
        # And under a fresh horizon with leftover slack.
        assert run_incremental(
            design.copy(), horizon + 2, edges
        ) == edge_sequence_windows(design.copy(), horizon + 2, edges)


def test_embedding_identical_on_both_paths():
    """The watermarker draws the same edges with and without the kernel."""
    spec = SWEEP[0] if SMOKE else next(
        s for s in HYPER_SUITE if s.name == "D/A Converter"
    )
    design = spec.factory()
    sig = AuthorSignature("alice-designs-inc")
    params = SchedulingWMParams(k=K_EDGES)
    inc_ms, (marked_inc, wm_inc) = _time(
        SchedulingWatermarker(sig, params, incremental=True).embed, design
    )
    ref_ms, (marked_ref, wm_ref) = _time(
        SchedulingWatermarker(sig, params, incremental=False).embed, design
    )
    assert wm_inc == wm_ref
    assert sorted(marked_inc.temporal_edges) == sorted(
        marked_ref.temporal_edges
    )
    assert scheduling_windows(marked_inc, wm_inc.horizon) == (
        scheduling_windows(marked_ref, wm_ref.horizon)
    )
    payload = {
        "design": spec.name,
        "k": wm_inc.k,
        "incremental_ms": inc_ms,
        "reference_ms": ref_ms,
        "identical_watermark": True,
    }
    atomic_write_json(OUT_DIR / "BENCH_kernel_embed.json", payload)


#: Large-tier gate from the issue: the vectorized full ASAP/ALAP plus
#: feasibility sweep must beat the worklist reference by >= 5x on a
#: >= 100k-node design.
LARGE_TARGET_SPEEDUP = 5.0
LARGE_TIER = "composite-50k" if SMOKE else "composite-120k"
FEASIBILITY_PAIRS = 50_000


def _best_of(fn, *args, repeats: int = 3) -> Tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best, result


def test_large_tier_vectorized_sweeps():
    if not NUMPY_AVAILABLE:
        pytest.skip("large tier requires numpy")
    design = synthetic_design(LARGE_TIER)
    view = CDFGView(design)
    n = len(view.nodes)

    ref_asap_ms, ref_asap = _best_of(view._asap_reference)
    ref_tails_ms, ref_tails = _best_of(view._tails_reference)
    horizon = max(a + t for a, t in zip(ref_asap, ref_tails))
    ref_alap_ms, ref_alap = _best_of(view._alap_reference, horizon)

    started = time.perf_counter()
    view._ensure_arrays()
    csr_build_ms = (time.perf_counter() - started) * 1000.0
    vec_asap_ms, vec_asap = _best_of(view._asap_vectorized)
    vec_tails_ms, vec_tails = _best_of(view._tails_vectorized)
    vec_alap_ms, vec_alap = _best_of(view._alap_vectorized, horizon)

    assert vec_asap == ref_asap, f"ASAP diverged on {LARGE_TIER}"
    assert vec_tails == ref_tails, f"tails diverged on {LARGE_TIER}"
    assert vec_alap == ref_alap, f"ALAP diverged on {LARGE_TIER}"

    rng = random.Random(0)
    pairs = [
        (rng.randrange(n), rng.randrange(n))
        for _ in range(FEASIBILITY_PAIRS)
    ]
    latency = view.latency

    def feasibility_loop() -> List[bool]:
        return [
            ref_asap[u] + latency[u] <= ref_alap[v] for u, v in pairs
        ]

    ref_feas_ms, ref_feas = _best_of(feasibility_loop)
    with kernel_mode_override("vectorized"):
        vec_feas_ms, vec_feas = _best_of(view.feasible_pairs, horizon, pairs)
    assert vec_feas == ref_feas, f"feasibility screen diverged on {LARGE_TIER}"

    ref_total = ref_asap_ms + ref_alap_ms + ref_feas_ms
    vec_total = vec_asap_ms + vec_alap_ms + vec_feas_ms
    speedup = ref_total / vec_total if vec_total > 0 else float("inf")

    view._ensure_levels()
    payload = {
        "design": LARGE_TIER,
        "nodes": n,
        "levels": view._num_levels,
        "horizon": horizon,
        "pairs": FEASIBILITY_PAIRS,
        "csr_build_ms": csr_build_ms,
        "reference_ms": {
            "asap": ref_asap_ms,
            "tails": ref_tails_ms,
            "alap": ref_alap_ms,
            "feasibility": ref_feas_ms,
        },
        "vectorized_ms": {
            "asap": vec_asap_ms,
            "tails": vec_tails_ms,
            "alap": vec_alap_ms,
            "feasibility": vec_feas_ms,
        },
        "speedup": speedup,
        "target_speedup": LARGE_TARGET_SPEEDUP,
        "windows_equal": True,
        "gated": not SMOKE,
        "passed": SMOKE or speedup >= LARGE_TARGET_SPEEDUP,
    }
    _merge_bench_json({"large_tier": payload})

    table = get_collector(
        "BENCH_kernel_large",
        ["design", "nodes", "sweep", "reference ms", "vectorized ms", "speedup"],
    )
    for sweep, r, v in (
        ("asap", ref_asap_ms, vec_asap_ms),
        ("tails", ref_tails_ms, vec_tails_ms),
        ("alap", ref_alap_ms, vec_alap_ms),
        ("feasibility", ref_feas_ms, vec_feas_ms),
    ):
        table.add(
            LARGE_TIER, n, sweep, f"{r:.1f}", f"{v:.1f}",
            f"{r / v:.1f}x" if v > 0 else "inf",
        )
    table.emit("E13: array-native sweeps on the synthetic large tier")

    if not SMOKE:
        assert n >= 100_000, f"{LARGE_TIER} too small for the gate ({n})"
        assert speedup >= LARGE_TARGET_SPEEDUP, (
            f"large-tier speedup {speedup:.1f}x below "
            f"{LARGE_TARGET_SPEEDUP}x on {LARGE_TIER}"
        )
