"""E6 — §IV-A Discussion: tamper resistance.

Two parts:

* **analytic** — the paper's worked example (100 000-op design, 100
  temporal edges, ``E[ψ_W/ψ_N] = 1/2``): the number of pair-order
  alterations needed to push authorship evidence to one-in-a-million.
  The paper estimates 31 729 pairs (63 % of the solution); the explicit
  expected-value model lands in the same "must redo the majority of the
  design" regime.
* **empirical** — random legal reorder attacks of growing intensity on
  a 150-op marked design: evidence erodes only as a large fraction of
  the schedule is disturbed.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.analysis.tamper import TamperModel, paper_example
from repro.cdfg.generators import random_layered_cdfg
from repro.core.attacks import reorder_attack
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.list_scheduler import list_schedule

ANALYTIC_HEADERS = ["target coincidence", "pairs to alter", "% of solution"]
EMPIRICAL_HEADERS = [
    "swap attempts",
    "legal alterations",
    "evidence left",
    "confidence",
]


def analytic_rows():
    model = paper_example()
    rows = []
    for target in (1e-3, 1e-6, 1e-9):
        pairs = model.pairs_to_alter(target)
        rows.append(
            (f"{target:.0e}", pairs, 100.0 * pairs / model.total_pairs)
        )
    return rows


def empirical_rows():
    params = SchedulingWMParams(
        domain=DomainParams(tau=5, min_domain_size=10), k=8
    )
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, params)
    design = random_layered_cdfg(150, seed=202)
    marked, watermark = marker.embed(design)
    schedule = list_schedule(marked)
    rows = []
    seeds = (9, 23, 57)
    for attempts in (0, 100, 500, 2000, 10000):
        outcomes = [
            reorder_attack(
                design, schedule, watermark, signature, attempts, seed=seed
            )
            for seed in seeds
        ]
        rows.append(
            (
                attempts,
                round(sum(o.alterations for o in outcomes) / len(seeds)),
                sum(o.surviving_fraction for o in outcomes) / len(seeds),
                sum(o.verification.confidence for o in outcomes) / len(seeds),
            )
        )
    return rows


def test_analytic_tamper_model(benchmark):
    rows = run_once(benchmark, analytic_rows)
    table = get_collector("attacks_analytic", ANALYTIC_HEADERS)
    for target, pairs, pct in rows:
        table.add(target, pairs, f"{pct:.0f}%")
    table.emit(
        "E6a: analytic tamper resistance (paper: 31,729 pairs = 63% "
        "for 1e-6)"
    )
    # Paper's shape: the 1e-6 target requires altering > 50% of pairs.
    one_in_a_million = [r for r in rows if r[0] == "1e-06"][0]
    assert one_in_a_million[2] > 50.0
    # Raising the residual coincidence further (weaker surviving
    # evidence) requires strictly more destruction.
    assert rows[0][1] > rows[1][1] > rows[2][1]


def test_empirical_reorder_attack(benchmark):
    rows = run_once(benchmark, empirical_rows)
    table = get_collector("attacks_empirical", EMPIRICAL_HEADERS)
    for attempts, alterations, surviving, confidence in rows:
        table.add(
            attempts, alterations, f"{surviving:.2f}", f"{confidence:.4f}"
        )
    table.emit("E6b: random reorder attacks vs surviving evidence")

    # Untouched schedule carries the full watermark.
    assert rows[0][2] == 1.0
    # Attacks do some damage...
    survivals = [r[2] for r in rows]
    assert min(survivals) < 1.0
    # ...but heavy RANDOM tampering cannot drive evidence to zero: the
    # perturbation walk mixes toward the space of legal schedules, where
    # each constraint coincidentally holds with probability ψ_W/ψ_N.
    # Erasure needs *directed* majority alteration — the paper's point.
    assert survivals[-1] >= 0.25
    # Light attacks must not erase the mark.
    assert rows[1][2] >= 0.5


def test_tamper_binomial_tail(benchmark):
    def tail_summary():
        model = TamperModel(total_pairs=50_000, k_edges=100)
        confident = model.pairs_to_alter_with_confidence(1e-6, 1e-3)
        expected = model.pairs_to_alter(1e-6)
        return expected, confident

    expected, confident = run_once(benchmark, tail_summary)
    table = get_collector("attacks_tail", ["model", "pairs to alter"])
    table.add("expected-value", expected)
    table.add("99.9%-confident", confident)
    table.emit("E6c: expectation vs confident-guarantee attack cost")
    assert confident >= expected * 0.9
