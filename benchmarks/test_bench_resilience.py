"""E6 — resilience: confidence under faults, fallback-ladder latency.

Two tables:

* stress — detection confidence vs. fault rate on a marked 100-op
  design under compound faults (edge deletion + node drops + schedule
  jitter), the machine-checked version of the paper's robustness claim;
* ladder — what each rung of the exact → force-directed → list ladder
  costs and which rung wins as the instance hardens, under a shared
  200 ms budget.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.analysis.report import percent
from repro.cdfg.generators import random_layered_cdfg
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.resilience.budget import Budget
from repro.resilience.campaign import stress_campaign
from repro.resilience.pipeline import robust_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.timing.windows import critical_path_length

PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=5, min_domain_size=8), k=6
)

STRESS_HEADERS = [
    "fault rate", "faults/trial", "constraints held", "confidence",
    "detected", "errors",
]

LADDER_HEADERS = ["instance", "winner", "rungs tried", "met horizon", "ms"]


def stress_pipeline():
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, PARAMS)
    core = random_layered_cdfg(100, seed=4242, name="core")
    marked, watermark = marker.embed(core)
    schedule = list_schedule(marked)
    return stress_campaign(
        marked.without_temporal_edges(),
        schedule,
        watermark,
        rates=(0.0, 0.05, 0.10, 0.20),
        seed=0,
        trials=3,
        fault_kinds=("delete_edges", "drop_nodes"),
        jitter=True,
        signature=signature,
    )


def test_stress_campaign(benchmark):
    points = run_once(benchmark, stress_pipeline)
    table = get_collector("resilience_stress", STRESS_HEADERS)
    for p in points:
        table.add(
            percent(p.rate),
            f"{p.faults_applied:.1f}",
            percent(p.mean_fraction),
            f"{p.mean_confidence:.4f}",
            f"{p.detection_rate * p.trials:.0f}/{p.trials}",
            p.errors,
        )
    table.emit("E6a: detection confidence vs. fault rate (compound faults)")

    clean = points[0]
    assert clean.rate == 0.0
    assert clean.detection_rate == 1.0, "clean replay must always detect"
    assert clean.errors == 0
    # Graded degradation: the campaign finishes every rate, crash-free.
    assert len(points) == 4


def ladder_pipeline():
    rows = []
    instances = [
        ("layered-60 (easy)", random_layered_cdfg(60, seed=9), None),
        (
            "layered-200 (tight horizon)",
            random_layered_cdfg(200, seed=9, num_layers=10),
            None,
        ),
    ]
    for name, graph, horizon in instances:
        budget = Budget(wall_ms=200.0)
        result = robust_schedule(
            graph,
            horizon=horizon or critical_path_length(graph),
            budget=budget,
        )
        result.schedule.verify(graph)
        rows.append(
            (
                name,
                result.scheduler,
                len(result.attempts),
                result.met_horizon,
                f"{budget.elapsed_ms:.0f}",
            )
        )
    return rows


def test_fallback_ladder(benchmark):
    rows = run_once(benchmark, ladder_pipeline)
    table = get_collector("resilience_ladder", LADDER_HEADERS)
    for name, winner, tried, met, ms in rows:
        table.add(name, winner, tried, "yes" if met else "OVERRUN", ms)
    table.emit("E6b: fallback ladder under a 200 ms shared budget")

    # Every instance must come back with a legal schedule.
    assert all(winner in ("exact", "force-directed", "list") for _, winner, *_ in rows)
