"""E1 — Table I: scheduling watermarks on the MediaBench applications.

For each of the paper's eight applications (rebuilt synthetically with
the published operation counts) and each constraint level (2 % and 5 %
of operations), this bench:

1. embeds local watermarks until the target number of temporal edges is
   reached (``embed_until``),
2. estimates ``log10 P_c`` with the Poisson window model over the full
   edge set, and
3. realizes the edges as unit operations and measures the VLIW cycle
   overhead against the unwatermarked compilation (4-issue machine,
   4 ALU / 2 branch / 2 memory units).

Paper's shape: |log10 P_c| grows with the design size and with the
constraint level (10^-26…10^-89 at 2 %; 10^-53…10^-283 at 5 %); the
performance overhead stays below ~2.5 %.
"""

from __future__ import annotations

import pytest

from _bench_util import get_collector, run_once
from repro.core.coincidence import approx_log10_pc, format_pc_power
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.vliw.apps import APP_SPECS, build_app
from repro.vliw.compiler import compile_block, overhead_percent, realize_watermark_as_code
from repro.vliw.machine import paper_machine

HEADERS = [
    "application",
    "ops",
    "level",
    "edges",
    "log10 Pc",
    "Pc",
    "perf overhead",
]

# Mobility eligibility: program graphs are hundreds of steps deep, where
# the absolute-laxity rule starves (see SchedulingWMParams docstring).
PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=8, min_domain_size=6, include_probability=0.8),
    k=8,
    eligibility="mobility",
    min_mobility=3,
    realization_slack=1,
)

LEVELS = [("2% constrained", 0.02), ("5% constrained", 0.05)]


def watermark_and_measure(app, level_fraction):
    """The full Table I pipeline for one (application, level) cell."""
    signature = AuthorSignature("alice-designs-inc")
    marker = SchedulingWatermarker(signature, PARAMS)
    n_ops = len(app.schedulable_operations)
    target = max(2, round(level_fraction * n_ops))
    marked, marks = marker.embed_until(app, target, max_marks=128)
    edges = [e for m in marks for e in m.temporal_edges]

    log10_pc = approx_log10_pc(app, edges, model="poisson")

    machine = paper_machine()
    base = compile_block(app, machine)
    realized = realize_watermark_as_code(app, edges)
    marked_result = compile_block(realized, machine)
    overhead = overhead_percent(base.cycles, marked_result.cycles)
    return {
        "edges": len(edges),
        "log10_pc": log10_pc,
        "overhead": overhead,
        "base_cycles": base.cycles,
        "marked_cycles": marked_result.cycles,
    }


@pytest.mark.parametrize("spec", APP_SPECS, ids=[s.name for s in APP_SPECS])
@pytest.mark.parametrize("level", LEVELS, ids=[l[0] for l in LEVELS])
def test_table1_cell(benchmark, spec, level):
    level_name, fraction = level
    app = build_app(spec)
    result = run_once(benchmark, watermark_and_measure, app, fraction)

    # Shape assertions from the paper's Table I.
    assert result["edges"] >= 2
    assert result["log10_pc"] < -1.0, "watermark must carry real evidence"
    assert result["overhead"] < 4.0, "overhead must stay in low single digits"
    assert result["overhead"] >= 0.0

    table = get_collector("table1", HEADERS)
    table.add(
        spec.name,
        spec.operations,
        level_name,
        result["edges"],
        f"{result['log10_pc']:.1f}",
        format_pc_power(result["log10_pc"]),
        f"{result['overhead']:.2f}%",
    )


def test_table1_report(benchmark):
    table = get_collector("table1", HEADERS)
    run_once(
        benchmark,
        table.emit,
        "Table I reproduction: local watermarking of operation scheduling",
    )
    # Cross-row shape: 5% rows must carry more evidence than 2% rows.
    by_app = {}
    for row in table.rows:
        by_app.setdefault(row[0], {})[row[2]] = float(row[4])
    for app, levels in by_app.items():
        if len(levels) == 2:
            assert (
                levels["5% constrained"] < levels["2% constrained"]
            ), f"{app}: 5% must give smaller log10 Pc"
