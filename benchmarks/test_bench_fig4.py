"""E4 — Fig. 4: the motivational template-matching example.

The paper isolates three matchings on the IIR filter —
{(A5, A6), (A9, A7), (A8, C7)} — by promoting surrounding variables to
PPOs, and counts six alternative coverings of the (A5, A6) adder pair.
This bench enforces Z = 3 matchings with the same library flavour,
counts the alternative coverings of the paper's reference pair on the
reconstruction, and checks the watermark survives covering.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.ops import OpType
from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams
from repro.crypto.signature import AuthorSignature
from repro.templates.covering import cover_and_allocate
from repro.templates.library import chain_template, default_library
from repro.templates.matcher import Matching
from repro.timing.windows import critical_path_length

HEADERS = ["quantity", "paper", "reproduction"]


def fig4_pipeline():
    design = fourth_order_parallel_iir()
    library = default_library()
    steps = 2 * critical_path_length(design)
    marker = MatchingWatermarker(
        AuthorSignature("alice-designs-inc"),
        library=library,
        params=MatchingWMParams(z=3, horizon=steps),
    )
    marked, watermark = marker.embed(design)
    covering, allocation = cover_and_allocate(
        marked, library, steps=steps, forced=watermark.enforced
    )
    verification = marker.verify(covering, watermark)

    t1 = chain_template("T1_add_add", (OpType.ADD, OpType.ADD))
    pair_coverings = marker.solutions_count(
        design, Matching(t1, ("A6", "A5"))
    )
    log10_pc = marker.approx_log10_pc(design, watermark)
    return watermark, verification, pair_coverings, log10_pc


def test_fig4(benchmark):
    watermark, verification, pair_coverings, log10_pc = run_once(
        benchmark, fig4_pipeline
    )

    table = get_collector("fig4", HEADERS)
    table.add("enforced matchings Z", 3, watermark.z)
    table.add("coverings of the (A5, A6) pair", 6, pair_coverings)
    table.add(
        "watermark detected in covering", "yes", "yes" if verification.detected else "NO"
    )
    table.add("PPO promotions", "~3 per matching", len(watermark.ppo_nodes))
    table.add("approx log10 P_c", "< 0", f"{log10_pc:.2f}")
    table.emit("Fig. 4 reproduction: motivational template-matching example")

    assert watermark.z == 3
    assert verification.detected
    # Paper counts six coverings; the reconstruction must land nearby.
    assert 3 <= pair_coverings <= 10
    assert log10_pc < 0
