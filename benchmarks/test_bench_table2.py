"""E2 — Table II: template-matching watermarks on the HYPER suite.

For each of the eight Table II designs (rebuilt from the published
critical-path/variable statistics) and each step budget (tight = the
critical path; relaxed = twice the critical path, mirroring the table's
paired rows), this bench:

1. embeds a matching watermark (``Z ≈ 0.07·τ`` capped for the largest
   designs; ``T = CDFG``),
2. covers and allocates the unwatermarked and watermarked designs, and
3. reports the fraction of modules enforced and the module-count
   overhead.

Paper's shape: a few percent of matchings enforced; overhead in the low
single digits, larger under the tight budget than the relaxed one, and
shrinking as designs get bigger.
"""

from __future__ import annotations

import pytest

from _bench_util import get_collector, run_once
from repro.cdfg.designs import HYPER_SUITE
from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import ConstraintEncodingError
from repro.templates.covering import cover_and_allocate
from repro.templates.library import default_library
from repro.timing.windows import critical_path_length

HEADERS = [
    "design",
    "steps",
    "crit path",
    "vars",
    "Z enforced",
    "% mod enf",
    "base modules",
    "wm modules",
    "instance OH",
    "occurrence OH",
]

#: Enforcement count cap for the very large designs (keeps the bench
#: minutes-scale; the paper's Z = 0.07·τ on the echo canceler would be
#: ~270 — the overhead metric saturates long before that).
Z_CAP = 24


def watermark_and_cover(design, steps):
    """The full Table II pipeline for one (design, budget) row."""
    library = default_library()
    signature = AuthorSignature("alice-designs-inc")
    tau = len(design.schedulable_operations)
    z = min(Z_CAP, max(1, round(0.07 * tau)))
    params = MatchingWMParams(z=z, epsilon=0.15, horizon=steps)
    marker = MatchingWatermarker(signature, library=library, params=params)
    try:
        marked, watermark = marker.embed(design)
    except ConstraintEncodingError:
        # Tight budgets can leave no enforceable multi-op matching
        # (everything near-critical); report a zero-enforcement row.
        marked, watermark = design, None

    base_cov, base = cover_and_allocate(design, library, steps=steps)
    if watermark is None:
        return {
            "z": 0,
            "enforced_pct": 0.0,
            "base_modules": base.module_count,
            "wm_modules": base.module_count,
            "overhead": 0.0,
            "occ_overhead": 0.0,
        }
    wm_cov, wm_alloc = cover_and_allocate(
        marked, library, steps=steps, forced=watermark.enforced
    )
    verification = marker.verify(wm_cov, watermark)
    assert verification.detected, "covering must carry the watermark"
    overhead = (
        100.0
        * (wm_alloc.module_count - base.module_count)
        / base.module_count
    )
    occ_overhead = (
        100.0
        * (len(wm_cov.occurrences) - len(base_cov.occurrences))
        / len(base_cov.occurrences)
    )
    return {
        "z": watermark.z,
        "enforced_pct": 100.0 * watermark.z / len(wm_cov.occurrences),
        "base_modules": base.module_count,
        "wm_modules": wm_alloc.module_count,
        "overhead": overhead,
        "occ_overhead": occ_overhead,
    }


BUDGETS = [("tight", 1), ("relaxed", 2)]


@pytest.mark.parametrize(
    "spec", HYPER_SUITE, ids=[s.name for s in HYPER_SUITE]
)
@pytest.mark.parametrize("budget", BUDGETS, ids=[b[0] for b in BUDGETS])
def test_table2_cell(benchmark, spec, budget):
    budget_name, multiplier = budget
    design = spec.factory()
    c = critical_path_length(design)
    steps = multiplier * c
    result = run_once(benchmark, watermark_and_cover, design, steps)

    assert result["base_modules"] >= 1
    assert result["overhead"] < 40.0
    # Constraining the coverer can only take fusion opportunities away;
    # small greedy noise aside, the occurrence count must not drop much.
    assert result["occ_overhead"] >= -10.0

    table = get_collector("table2", HEADERS)
    table.add(
        spec.name,
        steps,
        c,
        design.num_variables,
        result["z"],
        f"{result['enforced_pct']:.1f}%",
        result["base_modules"],
        result["wm_modules"],
        f"{result['overhead']:+.1f}%",
        f"{result['occ_overhead']:+.1f}%",
    )


def test_table2_report(benchmark):
    table = get_collector("table2", HEADERS)
    run_once(
        benchmark,
        table.emit,
        "Table II reproduction: local watermarking of template matching",
    )
    # Cross-row shape: every row embeds a detectable watermark at a few
    # percent enforcement, and on average the relaxed budget absorbs the
    # watermark at least as well as the tight one (instance metric).
    for row in table.rows:
        assert row[4] >= 1, f"{row[0]}: no matching enforced"
    tight = [float(r[8].rstrip("%")) for r in table.rows if r[1] == r[2]]
    relaxed = [float(r[8].rstrip("%")) for r in table.rows if r[1] != r[2]]
    if tight and relaxed:
        assert sum(relaxed) / len(relaxed) <= sum(tight) / len(tight) + 2.0
