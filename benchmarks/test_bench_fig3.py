"""E3 — Fig. 3: the motivational scheduling example, exactly enumerated.

The paper demonstrates the protocol on a subtree of the fourth-order
parallel IIR filter: the unconstrained subtree admits 166 schedules, the
watermarked one 15 (``P_c = 15/166 ≈ 0.09``), and one operation pair
contributes ``ψ_W/ψ_N = 10/77 ≈ 0.13``.  The exact figure depends on
the original drawing (unavailable); this bench recomputes the same
quantities on the reconstruction and asserts the paper's shape:
two-digit schedule counts collapsing by roughly an order of magnitude.
"""

from __future__ import annotations

from _bench_util import get_collector, run_once
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.enumeration import pairwise_psi
from repro.timing.windows import critical_path_length

HEADERS = ["quantity", "paper", "reproduction"]


def fig3_pipeline():
    design = fourth_order_parallel_iir()
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=5, include_probability=0.9),
        k=4,
        epsilon=0.15,
        horizon=critical_path_length(design),
    )
    marker = SchedulingWatermarker(AuthorSignature("alice-designs-inc"), params)
    marked, watermark = marker.embed(design)
    exact = marker.exact_coincidence(design, watermark)
    psi = [
        pairwise_psi(design, watermark.horizon, src, dst, nodes=list(watermark.cone))
        for src, dst in watermark.temporal_edges
    ]
    return watermark, exact, psi


def test_fig3(benchmark):
    watermark, exact, psi = run_once(benchmark, fig3_pipeline)

    table = get_collector("fig3", HEADERS)
    table.add("subtree schedules (unconstrained)", 166, exact.without_constraints)
    table.add("subtree schedules (watermarked)", 15, exact.with_constraints)
    table.add("exact P_c", f"{15 / 166:.3f}", f"{exact.pc:.3f}")
    for (src, dst), (psi_w, psi_n) in zip(watermark.temporal_edges, psi):
        table.add(
            f"psi_W/psi_N for e({src}->{dst})",
            "10/77 = 0.130",
            f"{psi_w}/{psi_n} = {psi_w / psi_n:.3f}",
        )
    table.emit("Fig. 3 reproduction: motivational scheduling example")

    # Shape: two-digit-to-three-digit unconstrained count, constrained
    # count an order of magnitude smaller, P_c below ~0.15.
    assert 20 <= exact.without_constraints <= 2000
    assert 0 < exact.with_constraints < exact.without_constraints
    assert exact.pc <= 0.15
    for psi_w, psi_n in psi:
        assert 0 < psi_w < psi_n  # every edge is informative
