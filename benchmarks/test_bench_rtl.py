"""E14 — RTL round-trip identity across the HYPER suite.

For every Table II design: embed the golden-configuration watermark
when a locality fits, list-schedule, emit Verilog, extract it back,
and demand bit-identical structure — controller table, binding,
schedule — plus an identical cross-level detection verdict.  The table
reports emitted lines of code, FSM state counts, datapath size, and
the per-design emit/extract wall time.

Writes ``BENCH_rtl.json``.  ``BENCH_RTL_SMOKE=1`` restricts the sweep
to the small designs (critical path ≤ 20) so CI stays seconds-scale;
the full run covers all eight designs including the D/A converter and
the echo canceler.
"""

from __future__ import annotations

import os
import time

import pytest

from _bench_util import OUT_DIR, get_collector, run_once
from repro.cdfg.designs import HYPER_SUITE
from repro.core.detector import detect_from_recovered_schedule
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import WatermarkError
from repro.rtl.binding import bind
from repro.rtl.controller import (
    recover_schedule,
    recovered_schedule_for,
    synthesize_controller,
)
from repro.rtl.emit import emit_verilog
from repro.rtl.extract import extract_verilog
from repro.scheduling.list_scheduler import list_schedule
from repro.util.atomicio import atomic_write_json

SMOKE = os.environ.get("BENCH_RTL_SMOKE") == "1"

#: Critical-path cutoff for smoke mode (matches the verify suite's
#: small-HYPER sweep).
SMOKE_CP_LIMIT = 20

SPECS = [
    spec
    for spec in HYPER_SUITE
    if not SMOKE or spec.critical_path <= SMOKE_CP_LIMIT
]

HEADERS = [
    "design",
    "ops",
    "marked",
    "states",
    "regs",
    "units",
    "LoC",
    "emit ms",
    "extract ms",
    "roundtrip",
    "detect",
]

EMBED_PARAMS = SchedulingWMParams(domain=DomainParams(tau=4), k=3)


def roundtrip_design(design):
    """Emit → extract one design; returns the identity/verdict row."""
    record = None
    marker = SchedulingWatermarker(
        AuthorSignature("rtl-bench-author"), EMBED_PARAMS
    )
    try:
        design, record = marker.embed(design)
    except WatermarkError:
        pass  # no locality fits; round-trip the clean design
    schedule = list_schedule(design)
    binding = bind(design, schedule)
    controller = synthesize_controller(design, schedule, binding)

    started = time.perf_counter()
    rtl = emit_verilog(design, schedule, binding, controller)
    emit_ms = (time.perf_counter() - started) * 1000.0
    started = time.perf_counter()
    extracted = extract_verilog(rtl.text)
    extract_ms = (time.perf_counter() - started) * 1000.0

    identical = (
        extracted.num_steps == schedule.makespan(design)
        and extracted.binding.unit_of == binding.unit_of
        and extracted.binding.register_of == binding.register_of
        and extracted.controller.as_table() == controller.as_table()
    )
    detected = None
    if record is not None:
        suspect = design.without_temporal_edges()
        recovered = recovered_schedule_for(
            suspect, recover_schedule(extracted.controller)
        )
        hit = detect_from_recovered_schedule(suspect, recovered, record)
        behavioral = marker.verify(suspect, recovered, record)
        detected = hit.result.detected and hit.result == behavioral
    return {
        "design": design.name,
        "ops": len(design.schedulable_operations),
        "marked": record is not None,
        "states": rtl.num_states,
        "registers": rtl.num_registers,
        "units": rtl.num_units,
        "loc": rtl.lines,
        "emit_ms": emit_ms,
        "extract_ms": extract_ms,
        "identical": identical,
        "detected": detected,
    }


@pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
def test_rtl_roundtrip_identity(benchmark, spec):
    result = run_once(benchmark, roundtrip_design, spec.factory())

    assert result["identical"], f"{spec.name}: round trip not bit-identical"
    if result["marked"]:
        assert result["detected"], (
            f"{spec.name}: RTL-level detection disagreed with behavioral"
        )
    assert result["states"] >= 1
    assert result["loc"] > result["states"]  # every state costs lines

    table = get_collector("BENCH_rtl", HEADERS)
    table.add(
        result["design"],
        result["ops"],
        "yes" if result["marked"] else "no",
        result["states"],
        result["registers"],
        result["units"],
        result["loc"],
        f"{result['emit_ms']:.1f}",
        f"{result['extract_ms']:.1f}",
        "identical" if result["identical"] else "DIVERGED",
        {True: "match", False: "MISMATCH", None: "-"}[result["detected"]],
    )


def test_rtl_report(benchmark):
    table = get_collector("BENCH_rtl", HEADERS)
    run_once(
        benchmark,
        table.emit,
        "E14: RTL round-trip identity across the HYPER suite",
    )
    assert all(row[9] == "identical" for row in table.rows)
    assert all(row[10] != "MISMATCH" for row in table.rows)
    # At least one design must exercise the full cross-level detection
    # path, or the bench proves nothing about the watermark.
    assert any(row[2] == "yes" for row in table.rows)
    atomic_write_json(
        OUT_DIR / "BENCH_rtl.json",
        {
            "experiment": "E14-rtl-roundtrip",
            "smoke": SMOKE,
            "headers": HEADERS,
            "rows": table.rows,
        },
        indent=2,
    )
