"""E10 — batch watermarking service: cache throughput gate.

Runs the same 80%-duplicate embed workload through the service twice —
once **cold** (``cache_enabled=False``: every job computed on the pool,
the pre-service baseline) and once **warm** (content-addressed cache +
single-flight coalescing on) — and gates on the speedup.  The warm run
serves four out of five jobs without touching a worker, so the target
is **>= 3x** throughput on the duplicate-heavy batch.

Both runs must agree bit-for-bit per unique job (cached/coalesced
results are the leader's bytes by construction; this pins it).

Writes ``BENCH_service.json``.  ``BENCH_SERVICE_SMOKE=1`` shrinks the
workload and skips the speedup gate (CI's smoke lane); the gate applies
to the full run only.
"""

from __future__ import annotations

import os
import time

from _bench_util import OUT_DIR, get_collector
from repro.cdfg.designs.hyper_suite import HYPER_SUITE
from repro.cdfg.io import to_dict
from repro.service import ServiceClient, ServiceConfig, canonical_json
from repro.util.atomicio import atomic_write_json
from repro.util.perf import PerfRegistry

SMOKE = os.environ.get("BENCH_SERVICE_SMOKE") == "1"
TARGET_SPEEDUP = 3.0
UNIQUE = 4 if SMOKE else 10
COPIES = 5  # each unique job five times -> 80% duplication
WORKERS = 2

HEADERS = ["run", "jobs", "computed", "reused", "seconds", "jobs/s"]

_designs = sorted(HYPER_SUITE, key=lambda spec: spec.variables)
#: The full run needs jobs heavy enough that compute (not per-job
#: submit/IPC overhead) dominates the comparison, and every bench
#: author must embed successfully — some design/signature pairs reject
#: with "no encodable locality", which would poison the throughput
#: numbers.  ``svc-author-{0..9}`` all embed on the D/A converter at
#: tau=5 (embeds are deterministic, so this stays true until the
#: embedding algorithm itself changes).
SPEC = _designs[0] if SMOKE else next(
    spec for spec in HYPER_SUITE if spec.name == "D/A Converter"
)
TAU = 4 if SMOKE else 5


def _workload():
    """UNIQUE x COPIES embed jobs over one suite design (stable order)."""
    design = to_dict(SPEC.factory())
    unique = [
        ("embed", {"design": design, "author": f"svc-author-{i}",
                   "k": 4, "tau": TAU})
        for i in range(UNIQUE)
    ]
    jobs = []
    for copy in range(COPIES):
        # Interleave copies so duplicates are spread across the batch,
        # like a real queue — not COPIES identical back-to-back bursts.
        jobs.extend(unique[copy % UNIQUE:] + unique[: copy % UNIQUE])
    return unique, jobs


def _run(jobs, cache_enabled):
    registry = PerfRegistry()
    config = ServiceConfig(
        workers=WORKERS, queue_limit=len(jobs), cache_enabled=cache_enabled
    )
    with ServiceClient(config, registry=registry) as client:
        # Spawn the pool workers before the clock starts: both runs pay
        # the same startup, the measurement is pure job throughput.
        warmup = client.submit(
            "schedule", {"design": to_dict(_designs[0].factory())}
        )
        assert warmup.ok
        started = time.perf_counter()
        outcomes = client.submit_many(jobs, timeout=1200)
        elapsed = time.perf_counter() - started
        stats = client.stats()
    assert all(outcome.ok for outcome in outcomes)
    return outcomes, elapsed, stats


def test_service_throughput_duplicate_heavy_workload():
    unique, jobs = _workload()
    assert len(jobs) == UNIQUE * COPIES

    cold_outcomes, cold_s, cold_stats = _run(jobs, cache_enabled=False)
    warm_outcomes, warm_s, warm_stats = _run(jobs, cache_enabled=True)

    # Cold really computed everything; warm computed one leader per
    # unique job and reused the rest.
    cache = warm_stats["cache"]
    reused = cache.get("cache_hits", 0) + cache.get("coalesced", 0)
    assert cache["cache_misses"] == UNIQUE + 1  # + the pool-warmup job
    assert reused == len(jobs) - UNIQUE
    assert cold_stats["cache"].get("cache_hits", 0) == 0
    assert not any(o.cached or o.coalesced for o in cold_outcomes)

    # Bit-identity between the two paths, per unique job.
    reference = {}
    for (op, params), outcome in zip(jobs, cold_outcomes):
        reference.setdefault(canonical_json(params),
                             canonical_json(outcome.result))
    assert len(reference) == UNIQUE
    for (op, params), outcome in zip(jobs, warm_outcomes):
        assert canonical_json(outcome.result) == reference[
            canonical_json(params)
        ], "warm result diverged from cold compute"

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    table = get_collector("BENCH_service", HEADERS)
    table.add("cold", len(jobs), len(jobs), 0,
              f"{cold_s:.3f}", f"{len(jobs) / cold_s:.1f}")
    table.add("warm", len(jobs), UNIQUE, reused,
              f"{warm_s:.3f}", f"{len(jobs) / warm_s:.1f}")
    table.emit(
        f"E10: service throughput, {SPEC.name}, "
        f"{UNIQUE}x{COPIES} jobs (80% duplicate) — {speedup:.1f}x"
    )

    gate = None
    if not SMOKE:
        gate = {
            "design": SPEC.name,
            "target_speedup": TARGET_SPEEDUP,
            "measured_speedup": speedup,
            "passed": speedup >= TARGET_SPEEDUP,
        }

    OUT_DIR.mkdir(exist_ok=True)
    atomic_write_json(
        OUT_DIR / "BENCH_service.json",
        {
            "smoke": SMOKE,
            "workload": {
                "op": "embed",
                "design": SPEC.name,
                "jobs": len(jobs),
                "unique": UNIQUE,
                "duplication": 1 - UNIQUE / len(jobs),
            },
            "cold": {"seconds": cold_s, "jobs_per_s": len(jobs) / cold_s},
            "warm": {
                "seconds": warm_s,
                "jobs_per_s": len(jobs) / warm_s,
                "computed": UNIQUE,
                "reused": reused,
            },
            "gate": gate,
        },
    )

    if not SMOKE:
        assert speedup >= TARGET_SPEEDUP, (
            f"warm service only {speedup:.1f}x faster than cold on the "
            f"80%-duplicate workload (target {TARGET_SPEEDUP}x)"
        )
