"""Metamorphic oracles: clean on the real code, divergent on planted bugs."""

from __future__ import annotations

import random

import pytest

from repro.verify.differential import derive_seed
from repro.verify.metamorphic import (
    _marked_instance,
    io_roundtrip_trial,
    latency_scale_trial,
    relabel_trial,
    reserialize_trial,
    reserialized_copy,
)
from repro.verify.suites import run_metamorphic_suite

SEEDS = [derive_seed(2, trial, "meta") for trial in range(3)]


class TestOraclesClean:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_relabel(self, seed):
        assert relabel_trial(seed) == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reserialize(self, seed):
        assert reserialize_trial(seed) == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_latency_scale(self, seed):
        assert latency_scale_trial(seed) == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_io_roundtrip(self, seed):
        assert io_roundtrip_trial(seed) == []

    def test_suite_clean(self):
        report = run_metamorphic_suite(seed=2, trials=2)
        assert report.clean
        assert [outcome.name for outcome in report.outcomes] == [
            "relabel",
            "reserialize",
            "latency_scale",
            "io_roundtrip",
        ]


class TestTransforms:
    def test_reserialized_copy_is_isomorphic(self, iir4):
        rebuilt = reserialized_copy(iir4, random.Random(3))
        assert sorted(rebuilt.operations) == sorted(iir4.operations)
        assert sorted(rebuilt.edges()) == sorted(iir4.edges())

    def test_marked_instance_is_deterministic(self):
        # Find an embeddable seed, then require identical replays.
        for trial in range(10):
            seed = derive_seed(4, trial, "inst")
            first = _marked_instance(seed)
            if first is None:
                continue
            second = _marked_instance(seed)
            assert second is not None
            assert first[1] == second[1]  # same watermark record
            assert first[2].start_times == second[2].start_times
            return
        pytest.fail("no embeddable instance in 10 trials")


class TestTeeth:
    def test_relabel_catches_name_dependent_detection(self, monkeypatch):
        # Plant a name-sensitive bug: verification silently drops
        # constraints whose source node name starts with "r_" (i.e. any
        # renamed node).  The relabel oracle must notice the verdict
        # change.
        from repro.scheduling.schedule import Schedule

        original = Schedule.satisfies_order

        def buggy(self, before, after, distance=0, ii=None):
            if before.startswith("r_"):
                return False
            return original(self, before, after, distance=distance, ii=ii)

        monkeypatch.setattr(Schedule, "satisfies_order", buggy)
        divergences = []
        for trial in range(10):
            divergences += relabel_trial(derive_seed(2, trial, "relabel"))
        assert any(
            "verdict" in divergence.detail for divergence in divergences
        ), "name-dependent verification went unnoticed"
