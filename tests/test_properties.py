"""Cross-module property tests: the invariants the system rests on.

Hypothesis generates random designs and parameters; every property here
is something the paper's security or quality argument depends on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.generators import backbone_design, random_layered_cdfg
from repro.core.coincidence import exact_pc
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import (
    ConstraintEncodingError,
    DomainSelectionError,
    ReproError,
)
from repro.scheduling.enumeration import count_schedules, iter_schedules
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.schedule import Schedule
from repro.timing.windows import critical_path_length, scheduling_windows


def try_embed(graph, seed_tag, k=3):
    """Embed or skip (some random graphs legitimately can't host K)."""
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=4), k=k
    )
    marker = SchedulingWatermarker(AuthorSignature(f"prop-{seed_tag}"), params)
    try:
        return marker, marker.embed(graph)
    except (DomainSelectionError, ConstraintEncodingError):
        return marker, None


class TestEmbedInvariants:
    @given(st.integers(20, 70), st.integers(0, 400))
    @settings(max_examples=20, deadline=None)
    def test_critical_path_never_stretches(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed)
        marker, outcome = try_embed(graph, seed)
        if outcome is None:
            return
        marked, _ = outcome
        assert critical_path_length(marked) == critical_path_length(graph)

    @given(st.integers(20, 70), st.integers(0, 400))
    @settings(max_examples=20, deadline=None)
    def test_marked_design_schedulable_and_detectable(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed)
        marker, outcome = try_embed(graph, seed)
        if outcome is None:
            return
        marked, watermark = outcome
        schedule = list_schedule(marked)
        schedule.verify(marked)
        result = marker.verify(graph, schedule, watermark)
        assert result.fraction == 1.0

    @given(st.integers(20, 60), st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_watermark_is_strippable(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed)
        _, outcome = try_embed(graph, seed)
        if outcome is None:
            return
        marked, watermark = outcome
        stripped = marked.without_temporal_edges()
        assert stripped.structure_signature() == graph.structure_signature()
        assert len(marked.temporal_edges) == watermark.k

    @given(st.integers(20, 60), st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_edges_connect_eligible_nodes(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed)
        _, outcome = try_embed(graph, seed)
        if outcome is None:
            return
        _, watermark = outcome
        eligible = set(watermark.eligible_nodes)
        for src, dst in watermark.temporal_edges:
            assert src in eligible and dst in eligible


class TestCoincidenceInvariants:
    @given(st.integers(8, 18), st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_constraints_never_increase_schedule_count(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed, num_layers=4)
        _, outcome = try_embed(graph, seed, k=2)
        if outcome is None:
            return
        _, watermark = outcome
        result = exact_pc(
            graph,
            watermark.temporal_edges,
            horizon=watermark.horizon,
            nodes=list(watermark.cone),
        )
        assert 0 < result.with_constraints <= result.without_constraints

    @given(st.integers(4, 9), st.integers(0, 100), st.integers(0, 2))
    @settings(max_examples=15, deadline=None)
    def test_count_monotone_in_horizon(self, num_ops, seed, extra):
        graph = random_layered_cdfg(num_ops, seed, num_layers=3)
        c = critical_path_length(graph)
        at_c = count_schedules(graph, c, limit=500_000)
        relaxed = count_schedules(graph, c + extra, limit=5_000_000)
        assert relaxed >= at_c >= 1

    @given(st.integers(4, 10), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_enumerated_schedules_are_valid(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed, num_layers=3)
        c = critical_path_length(graph)
        for assignment in iter_schedules(graph, c, limit=100_000):
            schedule = Schedule(dict(assignment))
            for node in graph.operations:
                schedule.start_times.setdefault(node, 0)
            schedule.verify(graph, horizon=c)


class TestWindowInvariants:
    @given(st.integers(10, 60), st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_temporal_edges_only_tighten(self, num_ops, seed):
        graph = random_layered_cdfg(num_ops, seed)
        _, outcome = try_embed(graph, seed)
        if outcome is None:
            return
        marked, watermark = outcome
        before = scheduling_windows(graph, watermark.horizon)
        after = scheduling_windows(marked, watermark.horizon)
        for node in graph.operations:
            lo_b, hi_b = before[node]
            lo_a, hi_a = after[node]
            assert lo_a >= lo_b
            assert hi_a <= hi_b
            assert lo_a <= hi_a  # still satisfiable


class TestBackboneInvariants:
    @given(st.integers(3, 30), st.integers(0, 500), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_side_chains_never_stretch(self, cp, seed, extra_values):
        num_values = cp + 1 + extra_values
        design = backbone_design("p", num_values, cp, seed)
        assert critical_path_length(design) == cp
        assert design.num_variables == num_values
        design.validate()


class TestSignatureSeparation:
    def test_two_authors_rarely_collide(self):
        # Two signatures CAN derive identical constraints when both
        # fall back to the same tiny locality whose edge space is a
        # near-singleton; across many designs this must stay rare.
        collisions = 0
        comparisons = 0
        for seed in range(12):
            graph = random_layered_cdfg(60, seed)
            _, a = try_embed(graph, "alice")
            _, b = try_embed(graph, "bob")
            if a is None or b is None:
                continue
            comparisons += 1
            if a[1].temporal_edges == b[1].temporal_edges:
                collisions += 1
        assert comparisons >= 6
        assert collisions <= comparisons // 3
