"""CDFG serialization: round trips, file IO, malformed payloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.io import from_dict, from_json, load, save, to_dict, to_json
from repro.cdfg.ops import OpType
from repro.errors import CDFGError


def sample() -> CDFG:
    g = CDFG("sample")
    g.add_operation("x", OpType.INPUT)
    g.add_operation("m", OpType.MUL, latency=3)
    g.add_operation("a", OpType.ADD, ppo=True)
    g.add_data_edge("x", "m")
    g.add_data_edge("m", "a")
    g.add_temporal_edge("x", "a")
    return g


def graphs_equal(a: CDFG, b: CDFG) -> bool:
    if set(a.operations) != set(b.operations):
        return False
    for node in a.operations:
        if (
            a.op(node) is not b.op(node)
            or a.latency(node) != b.latency(node)
            or a.is_ppo(node) != b.is_ppo(node)
        ):
            return False
    edges_a = {(u, v, a.edge_kind(u, v)) for u, v in a.edges()}
    edges_b = {(u, v, b.edge_kind(u, v)) for u, v in b.edges()}
    return edges_a == edges_b


def test_dict_roundtrip():
    g = sample()
    assert graphs_equal(g, from_dict(to_dict(g)))


def test_json_roundtrip():
    g = sample()
    restored = from_json(to_json(g))
    assert graphs_equal(g, restored)
    assert restored.name == "sample"


def test_latency_and_ppo_survive():
    restored = from_json(to_json(sample()))
    assert restored.latency("m") == 3
    assert restored.is_ppo("a")


def test_edge_kinds_survive():
    restored = from_json(to_json(sample()))
    assert restored.edge_kind("x", "a") is EdgeKind.TEMPORAL


def test_file_roundtrip(tmp_path):
    g = sample()
    path = tmp_path / "design.json"
    save(g, path)
    assert graphs_equal(g, load(path))


def test_malformed_payloads():
    with pytest.raises(CDFGError):
        from_dict({"name": "x"})  # missing keys
    with pytest.raises(CDFGError):
        from_dict(
            {
                "name": "x",
                "nodes": [{"name": "a", "op": "NOT_AN_OP"}],
                "edges": [],
            }
        )
    with pytest.raises(CDFGError):
        from_dict(
            {
                "name": "x",
                "nodes": [{"name": "a", "op": "ADD"}],
                "edges": [{"src": "a", "dst": "ghost", "kind": "data"}],
            }
        )


def test_cyclic_payload_rejected():
    payload = {
        "name": "cyc",
        "nodes": [
            {"name": "a", "op": "ADD"},
            {"name": "b", "op": "ADD"},
        ],
        "edges": [
            {"src": "a", "dst": "b", "kind": "data"},
            {"src": "b", "dst": "a", "kind": "data"},
        ],
    }
    with pytest.raises(CDFGError):
        from_dict(payload)


@given(st.integers(1, 40), st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_random_graph_roundtrip_property(num_ops, seed):
    g = random_layered_cdfg(num_ops, seed)
    assert graphs_equal(g, from_json(to_json(g)))
