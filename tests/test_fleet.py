"""Fleet router semantics on in-process shards (PR 6 tentpole).

Everything here runs on :class:`LocalShard`\\ s (and test subclasses
that fake transport behavior), so each property of the router —
consistent-hash stickiness, hedging, the circuit breaker, bounded
rerouting, graceful drain, graded exhaustion — is pinned without
subprocess noise.  Real SIGKILL fault domains are
``test_fleet_kill.py``'s job.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import to_dict
from repro.errors import ServiceError, ShardDiedError
from repro.service import (
    Fleet,
    FleetConfig,
    HashRing,
    LocalShard,
    ServiceConfig,
    canonical_json,
    execute_job,
    job_key,
)
from repro.service.engine import _OpStats
from repro.util.perf import PerfRegistry


def _design():
    return to_dict(fourth_order_parallel_iir())


def _run(coroutine):
    return asyncio.run(coroutine)


def _tag_routed_to(fleet: Fleet, shard_name: str, op: str = "schedule"):
    """Params for *op* whose ring primary is *shard_name*."""
    for index in range(4096):
        params = {"design": _design(), "tag": f"route-{index}"}
        if fleet._ring.walk(job_key(op, params))[0] == shard_name:
            return params
    raise AssertionError(f"no tag routed to {shard_name}")  # pragma: no cover


# ----------------------------------------------------------------------
# test shards: fake transport behavior over a real engine
# ----------------------------------------------------------------------
class SlowShard(LocalShard):
    """Sits on every request for ``delay_s`` before serving it — the
    hedge trigger.  The sleep happens *before* the engine sees the job,
    so cancelling a slow loser abandons no computation."""

    def __init__(self, name, config, delay_s, registry):
        super().__init__(name, config, registry=registry)
        self.delay_s = delay_s

    async def submit(self, op, params=None):
        await asyncio.sleep(self.delay_s)
        return await super().submit(op, params)


class FlakyShard(LocalShard):
    """Tears the transport for the first ``failures`` submits, then
    behaves — exercises reroute + breaker + probe recovery."""

    def __init__(self, name, config, failures, registry):
        super().__init__(name, config, registry=registry)
        self.failures = failures

    async def submit(self, op, params=None):
        if self.failures > 0:
            self.failures -= 1
            raise ShardDiedError(f"shard {self.name!r} dropped the line")
        return await super().submit(op, params)


class DyingShard(LocalShard):
    """Claims to be alive but every submit dies — reroute exhaustion."""

    async def submit(self, op, params=None):
        raise ShardDiedError(f"shard {self.name!r} died mid-request")

    @property
    def alive(self):
        return True


# ----------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------
def test_hash_ring_walk_is_deterministic_and_complete():
    ring = HashRing(["a", "b", "c"], replicas=64)
    for key in ("k1", "k2", "deadbeef" * 8):
        order = ring.walk(key)
        assert sorted(order) == ["a", "b", "c"]  # all shards, once each
        assert order == ring.walk(key)  # same key, same ladder
    # Different keys spread across primaries (64 vnodes even the arcs).
    primaries = {ring.walk(f"key-{i}")[0] for i in range(64)}
    assert primaries == {"a", "b", "c"}


def test_hash_ring_removal_only_remaps_the_lost_arc():
    """The consistent-hash property: dropping one shard moves only the
    keys that shard owned; everyone else's primary is untouched."""
    full = HashRing(["a", "b", "c"], replicas=64)
    reduced = HashRing(["a", "b"], replicas=64)
    moved = kept = 0
    for index in range(300):
        key = f"job-{index}"
        before = full.walk(key)[0]
        after = reduced.walk(key)[0]
        if before == "c":
            moved += 1
            assert after in ("a", "b")
        else:
            kept += 1
            assert after == before
    assert moved > 0 and kept > 0


def test_hash_ring_rejects_bad_replicas():
    with pytest.raises(ServiceError):
        HashRing(["a"], replicas=0)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_fleet_config_validation():
    for bad in (
        {"shards": 0},
        {"shard_kind": "carrier-pigeon"},
        {"max_reroutes": -1},
        {"breaker_threshold": 0},
        {"probe_interval_s": 0.0},
        {"hedge_min_samples": 0},
    ):
        with pytest.raises(ServiceError):
            FleetConfig(**bad)


def test_fleet_requires_the_shared_cache_dir():
    """No shared disk tier, no side-effect-safe hedging — building a
    fleet's own shards without ``cache_dir`` is a config error."""
    with pytest.raises(ServiceError, match="cache_dir"):
        Fleet(FleetConfig(service=ServiceConfig()))


def test_fleet_rejects_duplicate_shard_names(tmp_path):
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")
    shards = [LocalShard("twin", config), LocalShard("twin", config)]
    with pytest.raises(ServiceError, match="duplicate"):
        Fleet(FleetConfig(), shards=shards)


def test_dynamic_hedge_delay_policy(tmp_path):
    """``hedge_ms=None`` hedges at max(p95, floor) once enough samples
    exist; ``0`` disables; a fixed value converts to seconds."""
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    def fleet_with(**knobs):
        return Fleet(
            FleetConfig(service=config, **knobs),
            shards=[LocalShard("s0", config)],
            registry=PerfRegistry(),
        )

    fixed = fleet_with(hedge_ms=25.0)
    assert fixed._hedge_delay_s("schedule") == 0.025
    disabled = fleet_with(hedge_ms=0.0)
    assert disabled._hedge_delay_s("schedule") is None

    dynamic = fleet_with(hedge_min_samples=4, hedge_floor_ms=50.0)
    assert dynamic._hedge_delay_s("schedule") is None  # no samples yet
    stats = dynamic._op_stats.setdefault("schedule", _OpStats())
    for _ in range(3):
        stats.record(10.0)
    assert dynamic._hedge_delay_s("schedule") is None  # below min_samples
    stats.record(10.0)
    assert dynamic._hedge_delay_s("schedule") == 0.05  # floor wins
    stats.record(400.0)
    assert dynamic._hedge_delay_s("schedule") == pytest.approx(
        stats.summary()["p95_ms"] / 1000.0
    )


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_routing_is_sticky_graded_and_bit_identical(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        fleet = Fleet(
            FleetConfig(service=config, hedge_ms=0.0),
            shards=[LocalShard(f"shard-{i}", config, registry=registry)
                    for i in range(3)],
            registry=registry,
        )
        async with fleet:
            jobs = [
                ("schedule", {"design": _design(), "tag": f"t{i}"})
                for i in range(6)
            ]
            first = await asyncio.gather(
                *(fleet.submit(op, params) for op, params in jobs)
            )
            second = await asyncio.gather(
                *(fleet.submit(op, params) for op, params in jobs)
            )
            unknown = await fleet.submit("transmogrify", {})
            unserializable = await fleet.submit(
                "schedule", {"design": _design(), "bad": object()}
            )
            stats = await fleet.stats()
            return first, second, unknown, unserializable, stats

    first, second, unknown, unserializable, stats = _run(scenario())

    for index, outcome in enumerate(first):
        assert outcome.ok and outcome.code == 200
        assert outcome.shard.startswith("shard-")
        assert not outcome.hedged and outcome.reroutes == 0
        # Bit-identity with the direct, single-process computation.
        assert canonical_json(outcome.result) == canonical_json(
            execute_job(
                "schedule", {"design": _design(), "tag": f"t{index}"}
            )
        )
    # Stickiness: the duplicate rides the same shard (and its cache).
    for before, after in zip(first, second):
        assert after.shard == before.shard
        assert after.ok and after.cached
    assert len({outcome.shard for outcome in first}) > 1  # actually spread

    # Graded failures pass through the router unchanged.
    assert unknown.code == 400 and "unknown op" in unknown.error
    assert unserializable.code == 400
    assert "unserializable" in unserializable.error

    # Observability: topology plus per-shard engine stats.
    assert stats["fleet"]["routed"] >= 13
    assert set(stats["shards"]) == {"shard-0", "shard-1", "shard-2"}
    for shard_stats in stats["shards"].values():
        assert shard_stats["alive"] and not shard_stats["draining"]
        assert not shard_stats["breaker_open"]
        assert shard_stats["stats"]["cache"]["memory_entries"] >= 0


# ----------------------------------------------------------------------
# hedging (the satellite: exactly one side effect)
# ----------------------------------------------------------------------
def test_hedge_beats_slow_shard_with_exactly_one_side_effect(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")
    effect = tmp_path / "computes.log"

    async def scenario():
        fleet = Fleet(
            FleetConfig(service=config, hedge_ms=40.0),
            shards=[
                SlowShard("slow", config, delay_s=5.0, registry=registry),
                LocalShard("fast-0", config, registry=registry),
                LocalShard("fast-1", config, registry=registry),
            ],
            registry=registry,
        )
        async with fleet:
            params = _tag_routed_to(fleet, "slow")
            params["_hook"] = {"append_to": str(effect)}
            return await fleet.submit("schedule", params), params

    outcome, params = _run(scenario())

    assert outcome.ok and outcome.code == 200
    assert outcome.hedged and outcome.shard.startswith("fast-")
    assert outcome.reroutes == 0
    assert registry.get("fleet.hedges") >= 1
    assert registry.get("fleet.hedge_wins") >= 1
    # The satellite's teeth: the job computed exactly once — the slow
    # loser was cancelled before its engine ever saw the job.
    assert effect.read_text(encoding="ascii").count("\n") == 1
    clean = {k: v for k, v in params.items() if k != "_hook"}
    assert canonical_json(outcome.result) == canonical_json(
        execute_job("schedule", clean)
    )


# ----------------------------------------------------------------------
# breaker, reroute, probe recovery
# ----------------------------------------------------------------------
def test_transport_death_reroutes_and_opens_breaker(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        flaky = FlakyShard("flaky", config, failures=1, registry=registry)
        fleet = Fleet(
            FleetConfig(
                service=config, hedge_ms=0.0, breaker_threshold=1,
                probe_interval_s=60.0,  # no probe rescue during the test
                reroute_backoff_s=0.001,
            ),
            shards=[flaky, LocalShard("good-0", config, registry=registry),
                    LocalShard("good-1", config, registry=registry)],
            registry=registry,
        )
        async with fleet:
            params = _tag_routed_to(fleet, "flaky")
            rerouted = await fleet.submit("schedule", params)
            breaker_open = fleet._health["flaky"].breaker_open
            routable = fleet._routable("flaky")
            # With the breaker open the key's duplicates skip the flaky
            # primary entirely — no reroute needed the second time.
            repeat = await fleet.submit("schedule", params)
            return rerouted, breaker_open, routable, repeat

    rerouted, breaker_open, routable, repeat = _run(scenario())

    assert rerouted.ok and rerouted.code == 200
    assert rerouted.reroutes == 1  # died once, next shard answered
    assert rerouted.shard.startswith("good-")
    assert breaker_open and not routable  # threshold=1: one death opens
    assert registry.get("fleet.shard_deaths") >= 1
    assert registry.get("fleet.reroutes") >= 1
    assert repeat.ok and repeat.reroutes == 0
    assert repeat.shard == rerouted.shard


def test_probe_loop_recovers_a_tripped_shard(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        flaky = FlakyShard("flaky", config, failures=1, registry=registry)
        fleet = Fleet(
            FleetConfig(
                service=config, hedge_ms=0.0, breaker_threshold=1,
                probe_interval_s=0.05, reroute_backoff_s=0.001,
            ),
            shards=[flaky, LocalShard("good-0", config, registry=registry),
                    LocalShard("good-1", config, registry=registry)],
            registry=registry,
        )
        async with fleet:
            params = _tag_routed_to(fleet, "flaky")
            rerouted = await fleet.submit("schedule", params)

            # The probe loop must close the breaker once the shard
            # answers again (FlakyShard is healthy after one failure).
            deadline = asyncio.get_running_loop().time() + 5.0
            while (
                not fleet._routable("flaky")
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.05)
            recovered = await fleet.submit(
                "schedule", dict(params, tag2="after-recovery")
            )
            return rerouted, fleet._routable("flaky"), recovered

    rerouted, routable_again, recovered = _run(scenario())

    assert rerouted.ok and rerouted.reroutes == 1
    assert routable_again
    assert registry.get("fleet.recoveries") >= 1
    assert recovered.ok and recovered.shard == "flaky"


def test_no_healthy_shard_grades_overloaded_not_raises(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        only = LocalShard("only", config, registry=registry)
        fleet = Fleet(
            FleetConfig(
                service=config, hedge_ms=0.0, max_reroutes=1,
                probe_interval_s=0.05, restart_dead=False,
                reroute_backoff_s=0.001,
            ),
            shards=[only],
            registry=registry,
        )
        async with fleet:
            only.kill()
            return await fleet.submit("schedule", {"design": _design()})

    outcome = _run(scenario())
    assert not outcome.ok and outcome.code == 503
    assert "no healthy shard" in outcome.error
    assert outcome.reroutes == 1 and outcome.shard == "fleet"
    assert registry.get("fleet.no_healthy_waits") >= 1


def test_shards_that_keep_dying_grade_crashed(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        fleet = Fleet(
            FleetConfig(
                service=config, hedge_ms=0.0, max_reroutes=2,
                breaker_threshold=100,  # stays routable: worst case
                reroute_backoff_s=0.001, reroute_backoff_cap_s=0.002,
            ),
            shards=[DyingShard("zombie", config, registry=registry)],
            registry=registry,
        )
        async with fleet:
            return await fleet.submit("schedule", {"design": _design()})

    outcome = _run(scenario())
    assert not outcome.ok and outcome.code == 500
    assert "kept dying" in outcome.error
    assert outcome.reroutes == 2  # the configured bound, then give up


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_and_migrates_routing(tmp_path):
    registry = PerfRegistry()
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        fleet = Fleet(
            FleetConfig(service=config, hedge_ms=0.0),
            shards=[LocalShard(f"shard-{i}", config, registry=registry)
                    for i in range(3)],
            registry=registry,
        )
        async with fleet:
            params = _tag_routed_to(fleet, "shard-0")
            slow = dict(params, _hook={"sleep_s": 0.3})
            inflight = asyncio.ensure_future(fleet.submit("schedule", slow))
            await asyncio.sleep(0.1)  # the job is on shard-0's engine
            await fleet.drain_shard("shard-0")
            drains = registry.get("fleet.drains")
            finished = await inflight
            stats = await fleet.stats()
            migrated = await fleet.submit("schedule", params)
            return finished, stats, migrated, drains

    finished, stats, migrated, drains = _run(scenario())

    # The drain waited the accepted job out: completed, not torn.
    assert finished.ok and finished.code == 200
    assert finished.shard == "shard-0"
    # The shard is out of the fleet but marked as a drain, not a death.
    assert stats["shards"]["shard-0"]["draining"]
    assert not stats["shards"]["shard-0"]["alive"]
    assert drains == 1  # close() drains the rest later
    # Its keys migrated to a survivor via normal ring routing.
    assert migrated.ok and migrated.shard in ("shard-1", "shard-2")
    assert migrated.reroutes == 0  # routed around, not bounced off


def test_drain_unknown_shard_is_an_error(tmp_path):
    config = ServiceConfig(workers=1, cache_dir=tmp_path / "cache")

    async def scenario():
        fleet = Fleet(
            FleetConfig(service=config),
            shards=[LocalShard("s0", config)],
            registry=PerfRegistry(),
        )
        async with fleet:
            with pytest.raises(ServiceError, match="no shard"):
                await fleet.drain_shard("s7")

    _run(scenario())
