"""Atomic write layer: durability contracts of repro.util.atomicio."""

from __future__ import annotations

import json
import os

import pytest

from repro.util.atomicio import (
    JsonlAppender,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_leaves_no_temp_files_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "{}")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json"]

    def test_failure_preserves_old_content_and_cleans_temp(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("precious")

        class Boom:
            """json.dumps cannot serialize this."""

        with pytest.raises(TypeError):
            atomic_write_json(target, Boom())
        assert target.read_text() == "precious"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_json_roundtrip(self, tmp_path):
        target = tmp_path / "payload.json"
        payload = {"a": [1, 2, 3], "b": "x"}
        atomic_write_json(target, payload)
        assert json.loads(target.read_text()) == payload


class TestJsonl:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlAppender(path) as journal:
            journal.append({"n": 1})
            journal.append({"n": 2})
        records, torn = read_jsonl(path)
        assert records == [{"n": 1}, {"n": 2}]
        assert torn is None

    def test_torn_tail_without_newline(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(b'{"n": 1}\n{"n": 2}\n{"n": 3')
        records, torn = read_jsonl(path)
        assert records == [{"n": 1}, {"n": 2}]
        assert torn is not None
        assert torn.reason == "no trailing newline"
        assert torn.offset == len(b'{"n": 1}\n{"n": 2}\n')

    def test_torn_tail_invalid_json_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(b'{"n": 1}\n{"n": 2, "x\n')
        records, torn = read_jsonl(path)
        assert records == [{"n": 1}]
        assert torn is not None and torn.reason == "invalid JSON"

    def test_corruption_before_tail_is_not_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(b'{"n": 1}\ngarbage\n{"n": 3}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_truncate_at_discards_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(b'{"n": 1}\n{"n": 2')
        _, torn = read_jsonl(path)
        with JsonlAppender(path, truncate_at=torn.offset) as journal:
            journal.append({"n": 99})
        records, torn = read_jsonl(path)
        assert records == [{"n": 1}, {"n": 99}]
        assert torn is None

    def test_records_survive_process_level_view(self, tmp_path):
        # Each append is flushed to the OS before returning, so another
        # reader (or a post-crash resume) sees every completed record.
        path = tmp_path / "log.jsonl"
        journal = JsonlAppender(path)
        journal.append({"n": 1})
        fd = os.open(path, os.O_RDONLY)
        try:
            assert os.read(fd, 4096) == b'{"n":1}\n'
        finally:
            os.close(fd)
        journal.close()
