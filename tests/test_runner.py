"""Crash-safe campaign runner: journal, resume, isolation, grading.

Process-pool tests stay deliberately small (a handful of trials on the
IIR design) — the contracts under test are durability and accounting,
not throughput.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import RunnerError, TrialCrashedError, TrialTimeoutError
from repro.resilience.campaign import stress_campaign
from repro.resilience.runner import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    TABLE_NAME,
    CampaignRunner,
    RunnerConfig,
    load_journal,
)
from repro.scheduling.list_scheduler import list_schedule
from repro.util.atomicio import read_jsonl

RATES = [0.0, 0.1]
TRIALS = 2
SEED = 11

#: No-backoff config so retry tests don't sleep.
FAST = RunnerConfig(backoff_base_s=0.0)


@pytest.fixture(scope="module")
def artifacts():
    from repro.cdfg.designs import fourth_order_parallel_iir

    marker = SchedulingWatermarker(
        AuthorSignature("alice-designs-inc"),
        SchedulingWMParams(domain=DomainParams(tau=4), k=3),
    )
    marked, watermark = marker.embed(fourth_order_parallel_iir())
    schedule = list_schedule(marked)
    return marked.without_temporal_edges(), schedule, watermark


def start_run(tmp_path, artifacts, config=FAST, hooks=None, **kwargs):
    design, schedule, watermark = artifacts
    runner = CampaignRunner(tmp_path / "run", config, hooks=hooks)
    kwargs.setdefault("rates", RATES)
    kwargs.setdefault("trials", TRIALS)
    kwargs.setdefault("seed", SEED)
    return runner.start(design, schedule, watermark, **kwargs)


class TestFreshRun:
    def test_matches_in_process_campaign(self, tmp_path, artifacts):
        design, schedule, watermark = artifacts
        result = start_run(tmp_path, artifacts)
        expected = stress_campaign(
            design, schedule, watermark, rates=RATES, trials=TRIALS,
            seed=SEED,
        )
        assert result.points == expected

    def test_run_dir_layout(self, tmp_path, artifacts):
        result = start_run(tmp_path, artifacts)
        run_dir = result.run_dir
        for name in (
            MANIFEST_NAME, "design.json", "schedule.json", "record.json",
            JOURNAL_NAME, TABLE_NAME,
        ):
            assert (run_dir / name).exists(), name
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert manifest["status"] == "complete"
        assert (run_dir / TABLE_NAME).read_text().rstrip("\n") == result.table

    def test_journal_has_one_record_per_trial(self, tmp_path, artifacts):
        result = start_run(tmp_path, artifacts)
        records, torn = read_jsonl(result.run_dir / JOURNAL_NAME)
        assert torn is None
        keys = {(r["rate_index"], r["trial"]) for r in records}
        assert keys == {(i, t) for i in range(2) for t in range(2)}
        assert all(r["outcome"] == "completed" for r in records)
        assert all(r["seed"] != 0 for r in records)

    def test_start_refuses_existing_run_dir(self, tmp_path, artifacts):
        start_run(tmp_path, artifacts)
        with pytest.raises(RunnerError, match="already holds a campaign"):
            start_run(tmp_path, artifacts)

    def test_jobs_parallel_matches_serial(self, tmp_path, artifacts):
        serial = start_run(tmp_path / "a", artifacts)
        parallel = start_run(
            tmp_path / "b", artifacts,
            config=RunnerConfig(jobs=2, backoff_base_s=0.0),
        )
        assert parallel.points == serial.points
        assert parallel.table == serial.table


class TestResume:
    def make_partial(self, tmp_path, artifacts, keep):
        """A run dir interrupted after *keep* journaled trials."""
        result = start_run(tmp_path, artifacts)
        run_dir = result.run_dir
        lines = (run_dir / JOURNAL_NAME).read_bytes().splitlines(True)
        (run_dir / JOURNAL_NAME).write_bytes(b"".join(lines[:keep]))
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        manifest["status"] = "running"
        (run_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        return run_dir, result

    @pytest.mark.parametrize("keep", [0, 1, 3])
    def test_resume_reproduces_uninterrupted_table(
        self, tmp_path, artifacts, keep
    ):
        run_dir, full = self.make_partial(tmp_path, artifacts, keep)
        resumed = CampaignRunner(run_dir, FAST).resume()
        assert resumed.points == full.points
        assert resumed.table == full.table
        assert resumed.accounting.resumed == keep

    def test_resume_appends_only_missing_trials(self, tmp_path, artifacts):
        run_dir, _ = self.make_partial(tmp_path, artifacts, 3)
        before = len(read_jsonl(run_dir / JOURNAL_NAME)[0])
        resumed = CampaignRunner(run_dir, FAST).resume()
        after = len(read_jsonl(run_dir / JOURNAL_NAME)[0])
        # Only the one un-journaled trial ran; the three checkpointed
        # ones were skipped, not re-executed and re-appended.
        assert before == 3 and after == 4
        assert resumed.accounting.resumed == 3

    def test_resume_of_complete_run_is_a_no_op(self, tmp_path, artifacts):
        result = start_run(tmp_path, artifacts)
        resumed = CampaignRunner(result.run_dir, FAST).resume()
        assert resumed.points == result.points
        assert resumed.accounting.resumed == resumed.accounting.total

    def test_resume_requires_a_run_dir(self, tmp_path):
        with pytest.raises(RunnerError, match="not a campaign run"):
            CampaignRunner(tmp_path).resume()


class TestTornJournal:
    def test_torn_tail_is_discarded_and_rerun(self, tmp_path, artifacts):
        result = start_run(tmp_path, artifacts)
        run_dir = result.run_dir
        journal = run_dir / JOURNAL_NAME
        lines = journal.read_bytes().splitlines(True)
        # Simulate SIGKILL mid-append: half of the final record, no
        # trailing newline.
        torn = b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        journal.write_bytes(torn)
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        manifest["status"] = "running"
        (run_dir / MANIFEST_NAME).write_text(json.dumps(manifest))

        notes = []
        resumed = CampaignRunner(run_dir, FAST, echo=notes.append).resume()
        assert resumed.torn_tail_discarded
        assert any("torn" in note for note in notes)
        assert resumed.points == result.points
        assert resumed.table == result.table
        # The journal healed: complete again, no torn tail left behind.
        records, torn_after = read_jsonl(journal)
        assert torn_after is None
        assert len(records) == len(RATES) * TRIALS

    def test_state_reports_truncation_offset(self, tmp_path, artifacts):
        result = start_run(tmp_path, artifacts)
        journal = result.run_dir / JOURNAL_NAME
        good = journal.read_bytes()
        journal.write_bytes(good + b'{"rate_index": 1, "tr')
        state = load_journal(journal)
        assert state.torn_tail_discarded
        assert state.truncate_at == len(good)
        assert len(state.records) == len(RATES) * TRIALS


class TestIsolation:
    def test_hung_trial_is_reaped_and_graded(self, tmp_path, artifacts):
        start = time.monotonic()
        result = start_run(
            tmp_path, artifacts,
            config=RunnerConfig(trial_timeout_s=1.0, backoff_base_s=0.0),
            hooks={(1, 0): {"sleep_s": 60}},
        )
        # The 60 s hang was SIGKILLed, not waited out.
        assert time.monotonic() - start < 30
        assert result.accounting.timed_out == 1
        assert result.accounting.completed == len(RATES) * TRIALS - 1
        records, _ = read_jsonl(result.run_dir / JOURNAL_NAME)
        by_key = {(r["rate_index"], r["trial"]): r for r in records}
        assert by_key[(1, 0)]["outcome"] == "timed_out"
        assert "timeout" in by_key[(1, 0)]["error"]
        # Graded into the table: one error + one timeout at rate index 1.
        point = result.points[1]
        assert point.errors == 1 and point.timeouts == 1
        assert "timeouts" in result.table

    def test_all_trials_hung_raises_trial_timeout_error(
        self, tmp_path, artifacts
    ):
        hooks = {
            (i, t): {"sleep_s": 60} for i in range(2) for t in range(2)
        }
        with pytest.raises(TrialTimeoutError, match="overran"):
            start_run(
                tmp_path, artifacts,
                config=RunnerConfig(
                    trial_timeout_s=0.5, backoff_base_s=0.0
                ),
                hooks=hooks,
            )
        # The journal and table were still written before raising.
        run_dir = tmp_path / "run"
        records, _ = read_jsonl(run_dir / JOURNAL_NAME)
        assert {r["outcome"] for r in records} == {"timed_out"}
        assert (run_dir / TABLE_NAME).exists()

    def test_crashed_worker_is_retried_then_succeeds(
        self, tmp_path, artifacts
    ):
        design, schedule, watermark = artifacts
        result = start_run(
            tmp_path, artifacts,
            hooks={(0, 0): {"kill_below_attempt": 1}},
        )
        assert result.accounting.crashed == 0
        assert result.accounting.retries >= 1
        expected = stress_campaign(
            design, schedule, watermark, rates=RATES, trials=TRIALS,
            seed=SEED,
        )
        stripped = [
            dataclasses.replace(p, retries=0) for p in result.points
        ]
        assert stripped == expected

    def test_transient_failure_is_retried(self, tmp_path, artifacts):
        result = start_run(
            tmp_path, artifacts,
            hooks={(0, 1): {"fail_below_attempt": 2}},
        )
        assert result.accounting.completed == len(RATES) * TRIALS
        assert result.accounting.retries == 2
        records, _ = read_jsonl(result.run_dir / JOURNAL_NAME)
        retry_lines = [r for r in records if r.get("event") == "retry"]
        assert len(retry_lines) == 2
        assert all("transient" in r["error"] for r in retry_lines)

    def test_exhausted_retries_grade_as_crashed(self, tmp_path, artifacts):
        result = start_run(
            tmp_path, artifacts,
            config=RunnerConfig(retries=1, backoff_base_s=0.0),
            hooks={(0, 0): {"kill_below_attempt": 99}},
        )
        assert result.accounting.crashed == 1
        assert result.accounting.completed == len(RATES) * TRIALS - 1
        point = result.points[0]
        assert point.errors == 1 and point.crashes == 1
