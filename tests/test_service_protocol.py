"""JSON-lines wire protocol: parsing, graded errors, stdio, and TCP.

Pins the serving contract end to end: request validation never raises
into the serving loop (malformed lines answer ``400`` with the id echoed
when parseable), responses correlate by ``id`` even when they arrive out
of order, and both transports — ``localmark serve`` over stdio and
``--tcp`` — serve a duplicate-heavy batch with the cache/coalescing
counters visible in the ``stats`` job and a clean shutdown at EOF.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import to_dict
from repro.errors import ServiceError
from repro.service import JobEngine, ServiceConfig
from repro.service.protocol import (
    error_response,
    handle_line,
    outcome_response,
    parse_request,
    serve_tcp,
)

REPO = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
def test_parse_request_accepts_minimal_and_full_shapes():
    assert parse_request('{"op": "stats"}') == {
        "id": None, "op": "stats", "params": {}
    }
    assert parse_request(b'{"id": 7, "op": "verify", "params": {"a": 1}}') == {
        "id": 7, "op": "verify", "params": {"a": 1}
    }


@pytest.mark.parametrize(
    "line",
    [
        "not json",
        b"\xff\xfe",
        "[1, 2]",
        '{"params": {}}',
        '{"op": 9}',
        '{"op": ""}',
        '{"op": "stats", "params": []}',
        '{"op": "stats", "id": [1]}',
    ],
)
def test_parse_request_rejects_malformed(line):
    with pytest.raises(ServiceError):
        parse_request(line)


def test_handle_line_answers_400_with_id_echoed():
    responses = []

    async def respond(payload):
        responses.append(payload)

    async def scenario():
        async with JobEngine(ServiceConfig(workers=1)) as engine:
            await handle_line(engine, '{"id": "x1", "op": 3}', respond)
            await handle_line(engine, "garbage", respond)
            await handle_line(
                engine, '{"id": 2, "op": "no-such-op"}', respond
            )

    asyncio.run(scenario())
    assert [r["id"] for r in responses] == ["x1", None, 2]
    assert all(r["ok"] is False and r["code"] == 400 for r in responses)
    # Unknown op reached the engine and came back graded, not raised.
    assert "unknown op" in responses[2]["error"]


def test_response_shapes_round_trip_through_json():
    error = error_response("id-9", "nope")
    assert json.loads(json.dumps(error)) == {
        "id": "id-9", "ok": False, "code": 400, "error": "nope"
    }

    async def scenario():
        async with JobEngine(ServiceConfig(workers=1)) as engine:
            return await engine.submit("stats")

    payload = outcome_response(3, asyncio.run(scenario()))
    wire = json.loads(json.dumps(payload))
    assert wire["id"] == 3 and wire["ok"] and wire["code"] == 200
    assert "result" in wire and "wall_ms" in wire


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
def _requests(design, count=10):
    """count//2 identical schedule jobs + stats + malformed, as lines."""
    lines = []
    for i in range(count):
        lines.append(json.dumps(
            {"id": i, "op": "schedule", "params": {"design": design}}
        ))
    lines.append(json.dumps({"id": "stats", "op": "stats"}))
    lines.append('{"id": "bad", "op": 1}')
    return lines


def _check_batch(responses, count=10):
    by_id = {r["id"]: r for r in responses}
    assert len(by_id) == count + 2
    starts = set()
    for i in range(count):
        assert by_id[i]["ok"] and by_id[i]["code"] == 200
        starts.add(json.dumps(by_id[i]["result"], sort_keys=True))
    assert len(starts) == 1, "identical requests must agree bit-for-bit"
    served = sum(
        1 for i in range(count)
        if by_id[i]["cached"] or by_id[i]["coalesced"]
    )
    assert served == count - 1, "one leader computes, the rest reuse"
    assert by_id["bad"]["code"] == 400
    assert by_id["stats"]["ok"]


def test_stdio_end_to_end_duplicate_batch():
    """``localmark serve`` over stdin/stdout: batch in, batch out, clean
    exit and a summary on stderr at EOF."""
    design = to_dict(fourth_order_parallel_iir())
    payload = "\n".join(_requests(design)) + "\n"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "1"],
        input=payload,
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    _check_batch(responses)
    assert "served 12 request(s)" in proc.stderr


def test_stdio_accepts_file_redirect(tmp_path):
    """``localmark serve < batch.jsonl``: stdin as a regular file (pipe
    transports refuse those; the thread-pump fallback must kick in)."""
    design = to_dict(fourth_order_parallel_iir())
    batch = tmp_path / "batch.jsonl"
    batch.write_text("\n".join(_requests(design, count=4)) + "\n")
    with batch.open("rb") as stdin:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--workers", "1"],
            stdin=stdin,
            capture_output=True,
            timeout=120,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
    assert proc.returncode == 0, proc.stderr
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    _check_batch(responses, count=4)


def test_tcp_end_to_end_shared_cache_across_connections():
    """Two sequential TCP connections share one engine: the second
    connection's identical job is a cache hit."""
    design = to_dict(fourth_order_parallel_iir())

    async def scenario():
        engine = JobEngine(ServiceConfig(workers=1))
        await engine.start()
        bound = {}
        server_task = asyncio.get_running_loop().create_task(
            serve_tcp(
                engine, "127.0.0.1", 0,
                ready=lambda host, port: bound.update(host=host, port=port),
            )
        )
        while not bound:
            await asyncio.sleep(0.01)

        async def one_connection(lines):
            reader, writer = await asyncio.open_connection(
                bound["host"], bound["port"]
            )
            writer.write(("\n".join(lines) + "\n").encode())
            await writer.drain()
            writer.write_eof()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return [json.loads(line) for line in raw.splitlines()]

        first = await one_connection(_requests(design))
        second = await one_connection(
            [json.dumps({"id": "again", "op": "schedule",
                         "params": {"design": design}})]
        )
        server_task.cancel()
        try:
            await server_task
        except asyncio.CancelledError:
            pass
        await engine.close()
        return first, second

    first, second = asyncio.run(scenario())
    _check_batch(first)
    (again,) = second
    assert again["ok"] and again["cached"], (
        "second connection must hit the shared cache"
    )
