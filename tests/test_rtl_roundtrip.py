"""Verilog emit → extract round trip: clean runs, planted bugs, CLI.

The ``rtl_roundtrip`` oracle claims emitted Verilog is a lossless
carrier for (schedule, binding, watermark evidence).  These tests check
the claim three ways: clean designs round-trip exactly (including every
small HYPER design), two planted bugs — an off-by-one in FSM state
emission and a register swap in the extractor — surface as divergences
(the oracle has teeth), and the cross-level detection evidence matches
the behavioral detector bit for bit.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.rtl.emit as emit_mod
import repro.rtl.extract as extract_mod
from repro.cdfg.generators import random_layered_cdfg
from repro.cli import main
from repro.core.detector import detect_from_recovered_schedule
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.rtl.binding import bind
from repro.rtl.controller import (
    recover_schedule,
    recovered_schedule_for,
    synthesize_controller,
)
from repro.rtl.emit import EmissionError, emit_verilog, rtl_identifiers
from repro.rtl.extract import (
    RTLExtractionError,
    detect_from_rtl,
    extract_verilog,
    recover_schedule_from_rtl,
)
from repro.scheduling.list_scheduler import list_schedule
from repro.timing.windows import critical_path_length
from repro.verify.differential import derive_seed, rtl_roundtrip_trial
from repro.verify.report import Divergence
from repro.verify.suites import small_hyper_designs


def _marked_iir(iir4):
    marker = SchedulingWatermarker(
        AuthorSignature("rtl-tests"),
        SchedulingWMParams(domain=DomainParams(tau=4), k=3),
    )
    return marker, *marker.embed(iir4)


class TestRoundTrip:
    def test_iir4_controller_binding_schedule(self, iir4):
        schedule = list_schedule(iir4)
        binding = bind(iir4, schedule)
        controller = synthesize_controller(iir4, schedule, binding)
        rtl = emit_verilog(iir4, schedule, binding, controller)
        extracted = extract_verilog(rtl.text)
        assert extracted.module_name == "iir4_parallel"
        assert extracted.design_name == iir4.name
        assert extracted.num_steps == schedule.makespan(iir4)
        assert extracted.binding.unit_of == binding.unit_of
        assert extracted.binding.register_of == binding.register_of
        assert extracted.controller.as_table() == controller.as_table()
        assert extracted.outputs == tuple(sorted(iir4.primary_outputs))

    def test_emission_is_deterministic(self, iir4):
        schedule = list_schedule(iir4)
        assert (
            emit_verilog(iir4, schedule).text
            == emit_verilog(iir4, schedule).text
        )

    @pytest.mark.parametrize("trial", range(4))
    def test_randomized_trials_clean(self, trial):
        assert rtl_roundtrip_trial(derive_seed(3, trial, "rtl")) == []

    def test_all_hyper_designs_clean(self):
        for index, design in enumerate(small_hyper_designs()):
            divergences = rtl_roundtrip_trial(
                derive_seed(3, index, "rtl-hyper"), design=design
            )
            assert divergences == [], design.name

    def test_multicycle_latency_rejected(self, iir4):
        iir4.set_latency("C1", 2)
        with pytest.raises(EmissionError):
            emit_verilog(iir4, list_schedule(iir4))

    def test_extract_rejects_foreign_text(self):
        with pytest.raises(RTLExtractionError):
            extract_verilog("module foo (); endmodule\n")

    def test_extract_rejects_truncated_text(self, iir4):
        rtl = emit_verilog(iir4, list_schedule(iir4))
        # Cut the sequential block off: write-backs disappear while the
        # combinational arms survive, which must not parse as a module.
        head = rtl.text.split("always @(posedge clk)")[0]
        with pytest.raises(RTLExtractionError):
            extract_verilog(head)


class TestCrossLevelDetection:
    def test_rtl_evidence_matches_behavioral(self, iir4):
        marker, marked, record = _marked_iir(iir4)
        schedule = list_schedule(marked)
        suspect = marked.without_temporal_edges()
        rtl = emit_verilog(marked, schedule)

        hit = detect_from_rtl(rtl.text, suspect, record)
        behavioral = marker.verify(
            suspect,
            recovered_schedule_for(
                suspect,
                recover_schedule(
                    extract_verilog(rtl.text).controller
                ),
            ),
            record,
        )
        assert hit.result == behavioral
        assert hit.result.detected
        assert len(hit.evidence) == record.k
        assert all(e.present and e.satisfied for e in hit.evidence)
        assert [(e.src, e.dst) for e in hit.evidence] == list(
            record.temporal_edges
        )

    def test_unmarked_rtl_does_not_detect(self, iir4):
        marker, marked, record = _marked_iir(iir4)
        # Schedule the *clean* design: with the constraints gone the
        # list schedule packs greedily and the evidence must not all
        # line up.
        clean = marked.without_temporal_edges()
        rtl = emit_verilog(clean, list_schedule(clean))
        hit = detect_from_rtl(rtl.text, clean, record)
        assert not hit.result.detected
        assert any(not e.satisfied for e in hit.evidence)


class TestTeeth:
    """Planted bugs in emitter and extractor must surface as divergences."""

    def _buggy_arm_label(self, monkeypatch):
        monkeypatch.setattr(
            emit_mod, "_arm_label", lambda step: f"S_{step + 1}"
        )

    def _buggy_writeback(self, monkeypatch):
        original = extract_mod._writeback_register

        def swapped(text):
            register = original(text)
            return {0: 1, 1: 0}.get(register, register)

        monkeypatch.setattr(extract_mod, "_writeback_register", swapped)

    def test_fsm_off_by_one_caught(self, monkeypatch):
        self._buggy_arm_label(monkeypatch)
        divergences = []
        for trial in range(20):
            divergences += rtl_roundtrip_trial(derive_seed(7, trial, "rtl"))
        assert divergences, "off-by-one in FSM state emission went unnoticed"
        assert all(isinstance(d, Divergence) for d in divergences)
        assert all(d.oracle == "rtl_roundtrip" for d in divergences)

    def test_register_swap_caught(self, monkeypatch):
        self._buggy_writeback(monkeypatch)
        divergences = []
        for trial in range(20):
            divergences += rtl_roundtrip_trial(derive_seed(7, trial, "rtl"))
        assert divergences, "swapped-register extraction went unnoticed"
        assert any("register" in d.detail for d in divergences)

    def test_divergence_is_replayable_from_its_seed(self, monkeypatch):
        self._buggy_arm_label(monkeypatch)
        found = None
        for trial in range(20):
            hits = rtl_roundtrip_trial(derive_seed(7, trial, "rtl"))
            if hits:
                found = hits[0]
                break
        assert found is not None
        replayed = rtl_roundtrip_trial(found.seed)
        assert replayed and replayed[0].detail == found.detail

    def test_clean_run_is_clean(self):
        for trial in range(20):
            assert rtl_roundtrip_trial(derive_seed(7, trial, "rtl")) == []


class TestProperties:
    @given(st.integers(12, 50), st.integers(0, 300))
    @settings(deadline=None)
    def test_roundtrip_preserves_schedule_cp_and_verdict(self, num_ops, seed):
        design = random_layered_cdfg(num_ops, seed=seed, name=f"prop{seed}")
        marker = SchedulingWatermarker(
            AuthorSignature(f"rtl-prop-{seed}"),
            SchedulingWMParams(domain=DomainParams(tau=4), k=2),
        )
        record = None
        try:
            design, record = marker.embed(design)
        except Exception:
            pass  # unembeddable graphs still have to round-trip
        schedule = list_schedule(design)
        rtl = emit_verilog(design, schedule)
        recovered = recover_schedule_from_rtl(rtl.text)
        assert all(
            recovered.start(n) == schedule.start(n)
            for n in design.schedulable_operations
        )
        suspect = design.without_temporal_edges()
        full = recovered_schedule_for(suspect, recovered)
        assert full.makespan(suspect) == schedule.makespan(design)
        assert critical_path_length(suspect) <= extract_verilog(
            rtl.text
        ).num_steps
        if record is not None:
            hit = detect_from_rtl(rtl.text, suspect, record)
            assert hit.result == marker.verify(suspect, full, record)
            assert hit.result.detected


class TestEmitterCache:
    def test_identifier_cache_invalidates_on_mutation(self, iir4):
        table = rtl_identifiers(iir4)
        assert rtl_identifiers(iir4) is table  # cached
        iir4.add_operation("late+op", emit_mod.OpType.ADD)
        fresh = rtl_identifiers(iir4)
        assert fresh is not table
        assert fresh["late+op"] == "late_op"

    def test_pickle_drops_identifier_cache(self, iir4):
        schedule = list_schedule(iir4)
        text = emit_verilog(iir4, schedule).text
        assert "_rtl_names" in iir4.__dict__  # emission populated it
        clone = pickle.loads(pickle.dumps(iir4))
        assert "_rtl_names" not in clone.__dict__
        # The rebuilt cache renders byte-identical text.
        assert emit_verilog(clone, schedule).text == text


class TestCLI:
    def test_emit_rtl_writes_and_checks(self, tmp_path, capsys):
        from repro.cdfg.designs import fourth_order_parallel_iir
        from repro.cdfg.io import save

        design_file = str(tmp_path / "iir4.json")
        out = tmp_path / "iir4.v"
        save(fourth_order_parallel_iir(), design_file)
        assert (
            main(
                [
                    "emit-rtl",
                    "--design", design_file,
                    "--out", str(out),
                    "--check",
                ]
            )
            == 0
        )
        text = out.read_text(encoding="utf-8")
        assert text.startswith("// localmark-rtl-v1\n")
        assert extract_verilog(text).design_name == "iir4_parallel"
        assert "round trip verified" in capsys.readouterr().out

    def test_emit_rtl_honors_schedule_and_module(self, tmp_path):
        from repro.cdfg.designs import fourth_order_parallel_iir
        from repro.cdfg.io import save
        from repro.util.atomicio import atomic_write_json

        design = fourth_order_parallel_iir()
        design_file = str(tmp_path / "iir4.json")
        schedule_file = str(tmp_path / "schedule.json")
        out = tmp_path / "named.v"
        save(design, design_file)
        atomic_write_json(
            schedule_file,
            {"start_times": dict(list_schedule(design).start_times)},
        )
        assert (
            main(
                [
                    "emit-rtl",
                    "--design", design_file,
                    "--schedule", schedule_file,
                    "--module", "my top!",
                    "--out", str(out),
                ]
            )
            == 0
        )
        extracted = extract_verilog(out.read_text(encoding="utf-8"))
        assert extracted.module_name == "my_top_"

    def test_emit_rtl_missing_design_is_usage_error(self, tmp_path):
        assert (
            main(
                [
                    "emit-rtl",
                    "--design", "/nonexistent/x.json",
                    "--out", str(tmp_path / "x.v"),
                ]
            )
            == 2
        )
