"""Fleet fault domains over real subprocess shards (PR 6 satellites).

:class:`TcpShard` is the honest failure model: SIGKILLing the process
tears the transport with jobs in flight.  These tests pin the fleet's
survival contract on that model:

* a shard SIGKILLed mid-soak loses *no* jobs — every in-flight request
  reroutes to a survivor and completes ``200``, bit-identical to the
  direct computation, with no hangs and no 500s;
* the shared on-disk cache is never torn by the kill (atomic writes +
  claims: whole entries or no entries);
* the probe loop respawns the killed process and routes to it again;
* a gracefully drained shard finishes and answers everything it
  accepted, exits 0, and its keys migrate to survivors.

These spawn real ``localmark serve --tcp`` subprocesses; counts are
sized for CI, the 10k-job soak lives in ``benchmarks/test_bench_fleet``.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import to_dict
from repro.service import (
    Fleet,
    FleetConfig,
    ServiceConfig,
    canonical_json,
    execute_job,
    job_key,
)
from repro.util.perf import PerfRegistry


def _design():
    return to_dict(fourth_order_parallel_iir())


def _tags_by_primary(fleet: Fleet, per_shard: int):
    """``per_shard`` tags per shard name, keyed by their ring primary."""
    wanted = {name: [] for name in fleet.shards}
    for index in range(65536):
        if all(len(tags) >= per_shard for tags in wanted.values()):
            return wanted
        params = {"design": _design(), "tag": f"soak-{index}"}
        primary = fleet._ring.walk(job_key("schedule", params))[0]
        if len(wanted[primary]) < per_shard:
            wanted[primary].append(f"soak-{index}")
    raise AssertionError("ring never covered every shard")  # pragma: no cover


def _check_cache_whole(cache_dir: Path) -> int:
    """Every on-disk entry parses whole and self-consistent."""
    entries = sorted((cache_dir / "objects").rglob("*.json"))
    for path in entries:
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(payload) >= {"key", "result"}
        assert path.stem == payload["key"]
    return len(entries)


def test_sigkill_mid_soak_loses_no_jobs_and_probe_respawns(tmp_path):
    cache_dir = tmp_path / "cache"
    registry = PerfRegistry()
    config = FleetConfig(
        shards=3,
        shard_kind="tcp",
        service=ServiceConfig(workers=1, queue_limit=256,
                              cache_dir=cache_dir),
        hedge_ms=0.0,  # rerouting only: keep the kill path deterministic
        breaker_threshold=1,
        probe_interval_s=0.1,
        restart_dead=True,
        reroute_backoff_s=0.01,
    )

    async def scenario():
        async with Fleet(config, registry=registry) as fleet:
            tags = _tags_by_primary(fleet, per_shard=3)
            jobs = []
            for name, shard_tags in tags.items():
                # The victim's jobs run long enough that SIGKILL lands
                # while they are genuinely in flight on its engine.
                sleep_s = 0.5 if name == "shard-1" else 0.05
                for tag in shard_tags:
                    jobs.append({
                        "design": _design(), "tag": tag,
                        "_hook": {"sleep_s": sleep_s},
                    })
            jobs = jobs * 2  # duplicates must coalesce, not double-run

            batch = [
                asyncio.ensure_future(fleet.submit("schedule", params))
                for params in jobs
            ]
            await asyncio.sleep(0.25)  # shard-1 is mid-compute now
            fleet.shards["shard-1"].kill()
            outcomes = await asyncio.gather(*batch)

            # The probe loop must respawn the killed subprocess and
            # bring it back into routing.
            deadline = asyncio.get_running_loop().time() + 30.0
            while (
                not fleet._routable("shard-1")
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.1)
            assert fleet._routable("shard-1")
            revived = await fleet.submit(
                "schedule", {"design": _design(), "tag": tags["shard-1"][0]}
            )
            return jobs, outcomes, revived

    jobs, outcomes, revived = asyncio.run(scenario())

    # Zero lost jobs: every submission answered 200, none raised.
    assert len(outcomes) == len(jobs)
    assert all(o.ok and o.code == 200 for o in outcomes)
    # The kill really was mid-flight: someone had to reroute.
    assert sum(o.reroutes for o in outcomes) > 0
    assert registry.get("fleet.shard_deaths") >= 1
    assert registry.get("fleet.recoveries") >= 1
    assert revived.ok

    # Bit-identity with the direct computation, per unique job.
    for params in jobs:
        clean = {k: v for k, v in params.items() if k != "_hook"}
        matching = [
            o for o, p in zip(outcomes, jobs) if p["tag"] == params["tag"]
        ]
        expected = canonical_json(execute_job("schedule", clean))
        assert all(canonical_json(o.result) == expected for o in matching)

    # SIGKILL at an arbitrary instant never tears the shared store.
    assert _check_cache_whole(cache_dir) >= 1


def test_graceful_drain_mid_batch_answers_everything_accepted(tmp_path):
    cache_dir = tmp_path / "cache"
    registry = PerfRegistry()
    config = FleetConfig(
        shards=3,
        shard_kind="tcp",
        service=ServiceConfig(workers=1, queue_limit=256,
                              cache_dir=cache_dir),
        hedge_ms=0.0,
        probe_interval_s=0.2,
        drain_grace_s=30.0,
    )

    async def scenario():
        async with Fleet(config, registry=registry) as fleet:
            tags = _tags_by_primary(fleet, per_shard=2)
            slow = [
                {"design": _design(), "tag": tag,
                 "_hook": {"sleep_s": 0.4}}
                for tag in tags["shard-0"]
            ]
            rest = [
                {"design": _design(), "tag": tag}
                for name in ("shard-1", "shard-2")
                for tag in tags[name]
            ]
            batch = [
                asyncio.ensure_future(fleet.submit("schedule", params))
                for params in slow + rest
            ]
            await asyncio.sleep(0.15)  # shard-0 accepted its slow jobs
            await fleet.drain_shard("shard-0")
            drained_rc = fleet.shards["shard-0"]._proc.returncode
            outcomes = await asyncio.gather(*batch)
            migrated = await fleet.submit(
                "schedule", {"design": _design(), "tag": tags["shard-0"][0]}
            )
            return outcomes, drained_rc, migrated

    outcomes, drained_rc, migrated = asyncio.run(scenario())

    # Everything the fleet accepted was answered — the drain waited the
    # in-flight jobs out rather than tearing them.
    assert all(o.ok and o.code == 200 for o in outcomes)
    slow_shards = {o.shard for o in outcomes[:2]}
    assert "shard-0" in slow_shards  # the drained shard answered them
    # Graceful exit: SIGTERM produced a clean 0, not a kill.
    assert drained_rc == 0
    # Its arc migrated: the same key now routes to a survivor.
    assert migrated.ok and migrated.shard in ("shard-1", "shard-2")
    assert migrated.reroutes == 0
    assert _check_cache_whole(cache_dir) >= 1
