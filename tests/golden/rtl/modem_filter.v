// localmark-rtl-v1
// design: modem_filter+wm
// steps: 10 registers: 8 units: 5
module modem_filter_wm (
  input wire clk,
  input wire rst,
  input wire start,
  input wire signed [31:0] in_x0,  // pi x0
  input wire signed [31:0] in_x17,  // pi x17
  input wire signed [31:0] in_x18,  // pi x18
  input wire signed [31:0] in_x25,  // pi x25
  input wire signed [31:0] in_x28,  // pi x28
  output reg signed [31:0] out_y,  // po y
  output reg done
);
  localparam [3:0] S_IDLE = 4'd0;
  localparam [3:0] S_0 = 4'd1;
  localparam [3:0] S_1 = 4'd2;
  localparam [3:0] S_2 = 4'd3;
  localparam [3:0] S_3 = 4'd4;
  localparam [3:0] S_4 = 4'd5;
  localparam [3:0] S_5 = 4'd6;
  localparam [3:0] S_6 = 4'd7;
  localparam [3:0] S_7 = 4'd8;
  localparam [3:0] S_8 = 4'd9;
  localparam [3:0] S_9 = 4'd10;
  localparam [3:0] S_DONE = 4'd11;
  reg [3:0] state;
  reg signed [31:0] r0;
  reg signed [31:0] r1;
  reg signed [31:0] r2;
  reg signed [31:0] r3;
  reg signed [31:0] r4;
  reg signed [31:0] r5;
  reg signed [31:0] r6;
  reg signed [31:0] r7;

  // unit alu_0
  reg signed [31:0] u_alu_0;
  always @* begin
    u_alu_0 = 32'sd0;
    case (state)
      S_1: u_alu_0 = r0;  // op ADD b1
      S_2: u_alu_0 = r6;  // op SUB s1
      S_3: u_alu_0 = r0;  // op ADD b3
      S_4: u_alu_0 = r6;  // op ADD s3
      S_5: u_alu_0 = r0;  // op ADD b5
      S_6: u_alu_0 = r2;  // op ADD s10
      S_7: u_alu_0 = r0 + r1 + r3 + r5;  // op ADD b7
      S_9: u_alu_0 = r0 + r2 + r1;  // op ADD b9
      default: ;
    endcase
  end

  // unit alu_1
  reg signed [31:0] u_alu_1;
  always @* begin
    u_alu_1 = 32'sd0;
    case (state)
      S_1: u_alu_1 = r0;  // op ADD s0
      S_2: u_alu_1 = r6;  // op ADD s7
      S_3: u_alu_1 = r7;  // op ADD s16
      S_4: u_alu_1 = r1;  // op SUB s6
      S_5: u_alu_1 = r5;  // op ADD s17
      S_6: u_alu_1 = r1;  // op ADD s5
      S_7: u_alu_1 = r2;  // op ADD s11
      default: ;
    endcase
  end

  // unit alu_2
  reg signed [31:0] u_alu_2;
  always @* begin
    u_alu_2 = 32'sd0;
    case (state)
      S_5: u_alu_2 = r0;  // op ADD s9
      default: ;
    endcase
  end

  // unit multiplier_0
  reg signed [31:0] u_multiplier_0;
  always @* begin
    u_multiplier_0 = 32'sd0;
    case (state)
      S_0: u_multiplier_0 = 32'sd114 * r1 * r0;  // op CONST_MUL b0
      S_2: u_multiplier_0 = 32'sd4 * r0;  // op CONST_MUL b2
      S_3: u_multiplier_0 = 32'sd100 * r6;  // op CONST_MUL s2
      S_4: u_multiplier_0 = 32'sd33 * r0 * r2;  // op CONST_MUL b4
      S_5: u_multiplier_0 = 32'sd115 * r2;  // op CONST_MUL s12
      S_6: u_multiplier_0 = 32'sd226 * r0 * r6;  // op CONST_MUL b6
      S_7: u_multiplier_0 = r1;  // op MUL s8
      S_8: u_multiplier_0 = 32'sd249 * r0 * r4 * r7;  // op CONST_MUL b8
      default: ;
    endcase
  end

  // unit multiplier_1
  reg signed [31:0] u_multiplier_1;
  always @* begin
    u_multiplier_1 = 32'sd0;
    case (state)
      S_0: u_multiplier_1 = r3;  // op MUL s15
      S_5: u_multiplier_1 = r1;  // op MUL s4
      S_6: u_multiplier_1 = r5;  // op MUL s14
      S_8: u_multiplier_1 = 32'sd174 * r1;  // op CONST_MUL s13
      default: ;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      state <= S_IDLE;
      done <= 1'b0;
    end else begin
      case (state)
        S_IDLE: begin
          if (start) begin
            r1 <= in_x0;  // pi x0
            r0 <= in_x17;  // pi x17
            r2 <= in_x18;  // pi x18
            r4 <= in_x25;  // pi x25
            r3 <= in_x28;  // pi x28
            done <= 1'b0;
            state <= S_0;
          end
        end
        S_0: begin
          r0 <= u_multiplier_0;  // wb b0
          r5 <= u_multiplier_1;  // wb s15
          state <= S_1;
        end
        S_1: begin
          r0 <= u_alu_0;  // wb b1
          r6 <= u_alu_1;  // wb s0
          state <= S_2;
        end
        S_2: begin
          r6 <= u_alu_0;  // wb s1
          r7 <= u_alu_1;  // wb s7
          r0 <= u_multiplier_0;  // wb b2
          state <= S_3;
        end
        S_3: begin
          r0 <= u_alu_0;  // wb b3
          r7 <= u_alu_1;  // wb s16
          r6 <= u_multiplier_0;  // wb s2
          state <= S_4;
        end
        S_4: begin
          r1 <= u_alu_0;  // wb s3
          r2 <= u_alu_1;  // wb s6
          r0 <= u_multiplier_0;  // wb b4
          state <= S_5;
        end
        S_5: begin
          r0 <= u_alu_0;  // wb b5
          r6 <= u_alu_1;  // wb s17
          r2 <= u_alu_2;  // wb s9
          r5 <= u_multiplier_0;  // wb s12
          r1 <= u_multiplier_1;  // wb s4
          state <= S_6;
        end
        S_6: begin
          r2 <= u_alu_0;  // wb s10
          r1 <= u_alu_1;  // wb s5
          r0 <= u_multiplier_0;  // wb b6
          r5 <= u_multiplier_1;  // wb s14
          state <= S_7;
        end
        S_7: begin
          r0 <= u_alu_0;  // wb b7
          r1 <= u_alu_1;  // wb s11
          r2 <= u_multiplier_0;  // wb s8
          state <= S_8;
        end
        S_8: begin
          r0 <= u_multiplier_0;  // wb b8
          r1 <= u_multiplier_1;  // wb s13
          state <= S_9;
        end
        S_9: begin
          r0 <= u_alu_0;  // wb b9
          state <= S_DONE;
        end
        S_DONE: begin
          out_y <= r0;  // po y
          done <= 1'b1;
          state <= S_DONE;
        end
        default: state <= S_IDLE;
      endcase
    end
  end
endmodule
