// localmark-rtl-v1
// design: volterra_2+wm
// steps: 12 registers: 7 units: 5
module volterra_2_wm (
  input wire clk,
  input wire rst,
  input wire start,
  input wire signed [31:0] in_x0,  // pi x0
  input wire signed [31:0] in_x14,  // pi x14
  output reg signed [31:0] out_y,  // po y
  output reg done
);
  localparam [3:0] S_IDLE = 4'd0;
  localparam [3:0] S_0 = 4'd1;
  localparam [3:0] S_1 = 4'd2;
  localparam [3:0] S_2 = 4'd3;
  localparam [3:0] S_3 = 4'd4;
  localparam [3:0] S_4 = 4'd5;
  localparam [3:0] S_5 = 4'd6;
  localparam [3:0] S_6 = 4'd7;
  localparam [3:0] S_7 = 4'd8;
  localparam [3:0] S_8 = 4'd9;
  localparam [3:0] S_9 = 4'd10;
  localparam [3:0] S_10 = 4'd11;
  localparam [3:0] S_11 = 4'd12;
  localparam [3:0] S_DONE = 4'd13;
  reg [3:0] state;
  reg signed [31:0] r0;
  reg signed [31:0] r1;
  reg signed [31:0] r2;
  reg signed [31:0] r3;
  reg signed [31:0] r4;
  reg signed [31:0] r5;
  reg signed [31:0] r6;

  // unit alu_0
  reg signed [31:0] u_alu_0;
  always @* begin
    u_alu_0 = 32'sd0;
    case (state)
      S_0: u_alu_0 = r0;  // op ADD s2
      S_1: u_alu_0 = r0;  // op ADD b1
      S_3: u_alu_0 = r0;  // op ADD b3
      S_5: u_alu_0 = r0;  // op ADD b5
      S_6: u_alu_0 = r2;  // op ADD s12
      S_7: u_alu_0 = r0;  // op ADD b7
      S_8: u_alu_0 = r6;  // op ADD s4
      S_9: u_alu_0 = r0 + r3;  // op ADD b9
      S_10: u_alu_0 = r2;  // op ADD s13
      S_11: u_alu_0 = r0 + r1 + r3 + r2;  // op ADD b11
      default: ;
    endcase
  end

  // unit alu_1
  reg signed [31:0] u_alu_1;
  always @* begin
    u_alu_1 = 32'sd0;
    case (state)
      S_1: u_alu_1 = (r2) <<< 1;  // op SHIFT s3
      S_3: u_alu_1 = r3;  // op ADD s8
      S_5: u_alu_1 = r2;  // op ADD s11
      S_7: u_alu_1 = r0;  // op ADD s0
      S_9: u_alu_1 = r0;  // op ADD s1
      default: ;
    endcase
  end

  // unit alu_2
  reg signed [31:0] u_alu_2;
  always @* begin
    u_alu_2 = 32'sd0;
    case (state)
      S_5: u_alu_2 = r0;  // op ADD s5
      S_9: u_alu_2 = r2;  // op ADD s9
      default: ;
    endcase
  end

  // unit multiplier_0
  reg signed [31:0] u_multiplier_0;
  always @* begin
    u_multiplier_0 = 32'sd0;
    case (state)
      S_0: u_multiplier_0 = r0;  // op MUL b0
      S_2: u_multiplier_0 = r0;  // op MUL b2
      S_4: u_multiplier_0 = r0;  // op MUL b4
      S_6: u_multiplier_0 = r0;  // op MUL b6
      S_8: u_multiplier_0 = r0 * r2 * r4 * r5;  // op MUL b8
      S_10: u_multiplier_0 = r0 * r4;  // op MUL b10
      default: ;
    endcase
  end

  // unit multiplier_1
  reg signed [31:0] u_multiplier_1;
  always @* begin
    u_multiplier_1 = 32'sd0;
    case (state)
      S_2: u_multiplier_1 = 32'sd191 * r2;  // op CONST_MUL s6
      S_4: u_multiplier_1 = r2;  // op MUL s10
      S_8: u_multiplier_1 = 32'sd167 * r6;  // op CONST_MUL s7
      default: ;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      state <= S_IDLE;
      done <= 1'b0;
    end else begin
      case (state)
        S_IDLE: begin
          if (start) begin
            r0 <= in_x0;  // pi x0
            r1 <= in_x14;  // pi x14
            done <= 1'b0;
            state <= S_0;
          end
        end
        S_0: begin
          r2 <= u_alu_0;  // wb s2
          r0 <= u_multiplier_0;  // wb b0
          state <= S_1;
        end
        S_1: begin
          r0 <= u_alu_0;  // wb b1
          r2 <= u_alu_1;  // wb s3
          state <= S_2;
        end
        S_2: begin
          r0 <= u_multiplier_0;  // wb b2
          r3 <= u_multiplier_1;  // wb s6
          state <= S_3;
        end
        S_3: begin
          r0 <= u_alu_0;  // wb b3
          r3 <= u_alu_1;  // wb s8
          state <= S_4;
        end
        S_4: begin
          r0 <= u_multiplier_0;  // wb b4
          r2 <= u_multiplier_1;  // wb s10
          state <= S_5;
        end
        S_5: begin
          r0 <= u_alu_0;  // wb b5
          r4 <= u_alu_1;  // wb s11
          r2 <= u_alu_2;  // wb s5
          state <= S_6;
        end
        S_6: begin
          r5 <= u_alu_0;  // wb s12
          r0 <= u_multiplier_0;  // wb b6
          state <= S_7;
        end
        S_7: begin
          r0 <= u_alu_0;  // wb b7
          r6 <= u_alu_1;  // wb s0
          state <= S_8;
        end
        S_8: begin
          r4 <= u_alu_0;  // wb s4
          r0 <= u_multiplier_0;  // wb b8
          r2 <= u_multiplier_1;  // wb s7
          state <= S_9;
        end
        S_9: begin
          r0 <= u_alu_0;  // wb b9
          r2 <= u_alu_1;  // wb s1
          r3 <= u_alu_2;  // wb s9
          state <= S_10;
        end
        S_10: begin
          r2 <= u_alu_0;  // wb s13
          r0 <= u_multiplier_0;  // wb b10
          state <= S_11;
        end
        S_11: begin
          r0 <= u_alu_0;  // wb b11
          state <= S_DONE;
        end
        S_DONE: begin
          out_y <= r0;  // po y
          done <= 1'b1;
          state <= S_DONE;
        end
        default: state <= S_IDLE;
      endcase
    end
  end
endmodule
