// localmark-rtl-v1
// design: iir4_parallel+wm
// steps: 6 registers: 9 units: 9
module iir4_parallel_wm (
  input wire clk,
  input wire rst,
  input wire start,
  input wire signed [31:0] in_s11,  // pi s11
  input wire signed [31:0] in_s12,  // pi s12
  input wire signed [31:0] in_s21,  // pi s21
  input wire signed [31:0] in_s22,  // pi s22
  input wire signed [31:0] in_x,  // pi x
  output reg signed [31:0] out_w1_next,  // po w1_next
  output reg signed [31:0] out_w2_next,  // po w2_next
  output reg signed [31:0] out_y,  // po y
  output reg done
);
  localparam [2:0] S_IDLE = 3'd0;
  localparam [2:0] S_0 = 3'd1;
  localparam [2:0] S_1 = 3'd2;
  localparam [2:0] S_2 = 3'd3;
  localparam [2:0] S_3 = 3'd4;
  localparam [2:0] S_4 = 3'd5;
  localparam [2:0] S_5 = 3'd6;
  localparam [2:0] S_DONE = 3'd7;
  reg [2:0] state;
  reg signed [31:0] r0;
  reg signed [31:0] r1;
  reg signed [31:0] r2;
  reg signed [31:0] r3;
  reg signed [31:0] r4;
  reg signed [31:0] r5;
  reg signed [31:0] r6;
  reg signed [31:0] r7;
  reg signed [31:0] r8;

  // unit alu_0
  reg signed [31:0] u_alu_0;
  always @* begin
    u_alu_0 = 32'sd0;
    case (state)
      S_1: u_alu_0 = r3 + r0;  // op ADD A1
      S_2: u_alu_0 = r2 + r0;  // op ADD A2
      S_3: u_alu_0 = r0 + r6;  // op ADD A3
      S_4: u_alu_0 = r7 + r0;  // op ADD A4
      S_5: u_alu_0 = r0 + r1;  // op ADD A9
      default: ;
    endcase
  end

  // unit alu_1
  reg signed [31:0] u_alu_1;
  always @* begin
    u_alu_1 = 32'sd0;
    case (state)
      S_1: u_alu_1 = r3 + r1;  // op ADD A5
      S_2: u_alu_1 = r5 + r1;  // op ADD A6
      S_3: u_alu_1 = r1 + r3;  // op ADD A7
      S_4: u_alu_1 = r8 + r1;  // op ADD A8
      default: ;
    endcase
  end

  // unit multiplier_0
  reg signed [31:0] u_multiplier_0;
  always @* begin
    u_multiplier_0 = 32'sd0;
    case (state)
      S_0: u_multiplier_0 = 32'sd165 * r0;  // op CONST_MUL C1
      S_1: u_multiplier_0 = 32'sd85 * r4;  // op CONST_MUL C7
      default: ;
    endcase
  end

  // unit multiplier_1
  reg signed [31:0] u_multiplier_1;
  always @* begin
    u_multiplier_1 = 32'sd0;
    case (state)
      S_0: u_multiplier_1 = 32'sd109 * r1;  // op CONST_MUL C2
      default: ;
    endcase
  end

  // unit multiplier_2
  reg signed [31:0] u_multiplier_2;
  always @* begin
    u_multiplier_2 = 32'sd0;
    case (state)
      S_0: u_multiplier_2 = 32'sd23 * r0;  // op CONST_MUL C3
      default: ;
    endcase
  end

  // unit multiplier_3
  reg signed [31:0] u_multiplier_3;
  always @* begin
    u_multiplier_3 = 32'sd0;
    case (state)
      S_0: u_multiplier_3 = 32'sd87 * r1;  // op CONST_MUL C4
      default: ;
    endcase
  end

  // unit multiplier_4
  reg signed [31:0] u_multiplier_4;
  always @* begin
    u_multiplier_4 = 32'sd0;
    case (state)
      S_0: u_multiplier_4 = 32'sd226 * r4;  // op CONST_MUL C5
      default: ;
    endcase
  end

  // unit multiplier_5
  reg signed [31:0] u_multiplier_5;
  always @* begin
    u_multiplier_5 = 32'sd0;
    case (state)
      S_0: u_multiplier_5 = 32'sd135 * r2;  // op CONST_MUL C6
      default: ;
    endcase
  end

  // unit multiplier_6
  reg signed [31:0] u_multiplier_6;
  always @* begin
    u_multiplier_6 = 32'sd0;
    case (state)
      S_0: u_multiplier_6 = 32'sd46 * r2;  // op CONST_MUL C8
      default: ;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      state <= S_IDLE;
      done <= 1'b0;
    end else begin
      case (state)
        S_IDLE: begin
          if (start) begin
            r0 <= in_s11;  // pi s11
            r1 <= in_s12;  // pi s12
            r4 <= in_s21;  // pi s21
            r2 <= in_s22;  // pi s22
            r3 <= in_x;  // pi x
            done <= 1'b0;
            state <= S_0;
          end
        end
        S_0: begin
          r0 <= u_multiplier_0;  // wb C1
          r2 <= u_multiplier_1;  // wb C2
          r6 <= u_multiplier_2;  // wb C3
          r7 <= u_multiplier_3;  // wb C4
          r1 <= u_multiplier_4;  // wb C5
          r5 <= u_multiplier_5;  // wb C6
          r8 <= u_multiplier_6;  // wb C8
          state <= S_1;
        end
        S_1: begin
          r0 <= u_alu_0;  // wb A1
          r1 <= u_alu_1;  // wb A5
          r3 <= u_multiplier_0;  // wb C7
          state <= S_2;
        end
        S_2: begin
          r0 <= u_alu_0;  // wb A2
          r1 <= u_alu_1;  // wb A6
          state <= S_3;
        end
        S_3: begin
          r0 <= u_alu_0;  // wb A3
          r1 <= u_alu_1;  // wb A7
          out_w1_next <= r0;  // po w1_next
          out_w2_next <= r1;  // po w2_next
          state <= S_4;
        end
        S_4: begin
          r0 <= u_alu_0;  // wb A4
          r1 <= u_alu_1;  // wb A8
          state <= S_5;
        end
        S_5: begin
          r0 <= u_alu_0;  // wb A9
          state <= S_DONE;
        end
        S_DONE: begin
          out_y <= r0;  // po y
          done <= 1'b1;
          state <= S_DONE;
        end
        default: state <= S_IDLE;
      endcase
    end
  end
endmodule
