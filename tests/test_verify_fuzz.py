"""View-cache mutation fuzzer: coherent caches pass, stale caches fail."""

from __future__ import annotations

import random

import pytest

from repro.cdfg.graph import CDFG
from repro.timing.kernel import CDFGView
from repro.verify.differential import derive_seed, trial_design
from repro.verify.fuzz import (
    _mutate_once,
    fuzz_design,
    fuzz_trial,
    oracle_view_cache,
)
from repro.verify.suites import run_fuzz_suite


class TestFuzzClean:
    @pytest.mark.parametrize("trial", range(3))
    def test_random_designs_stay_coherent(self, trial):
        divergences, executed = fuzz_trial(
            derive_seed(2, trial, "fuzz"), steps=40
        )
        assert divergences == []
        assert executed == 40

    def test_canonical_design_stays_coherent(self, iir4):
        divergences, executed = fuzz_design(iir4, seed=5, steps=60)
        assert divergences == []
        assert executed == 60

    def test_suite_reports_mutation_steps(self):
        report = run_fuzz_suite(seed=2, trials=3)
        assert report.clean
        # 3 random trials + the small-HYPER sweep, 25 steps each.
        assert report.metric("mutation_steps") >= 3 * 25

    def test_oracle_is_deterministic(self):
        first = oracle_view_cache(9, 1, steps=30)
        second = oracle_view_cache(9, 1, steps=30)
        assert first == second


class TestMutator:
    def test_mutations_apply_and_bump_version(self):
        design = trial_design(11, num_ops=20)
        rng = random.Random(11)
        counter = [0]
        applied = 0
        for _ in range(50):
            before = design.mutation_count
            action = _mutate_once(design, rng, counter)
            if action is not None:
                applied += 1
                assert design.mutation_count > before
        assert applied > 25  # most rolls must do real work

    def test_rejected_mutations_leave_state_unchanged(self):
        design = trial_design(11, num_ops=12)
        rng = random.Random(3)
        counter = [0]
        for _ in range(120):
            snapshot = (sorted(design.edges()), sorted(design.operations))
            action = _mutate_once(design, rng, counter)
            if action is None:
                assert snapshot == (
                    sorted(design.edges()),
                    sorted(design.operations),
                )


class TestTeeth:
    def test_fuzzer_catches_missing_bump(self, monkeypatch):
        # Plant the classic cache bug: set_latency mutates the graph
        # without bumping the mutation counter, so the cached view goes
        # stale (the view materializes latencies, so staleness shows).
        def sneaky_set_latency(self, name, latency):
            self._require(name)
            self._g.nodes[name]["latency"] = latency
            # bug: no self._bump()

        monkeypatch.setattr(CDFG, "set_latency", sneaky_set_latency)
        caught = False
        for trial in range(20):
            divergences, _ = fuzz_trial(
                derive_seed(2, trial, "fuzz"), steps=40
            )
            if divergences:
                caught = True
                assert divergences[0].oracle == "view_cache"
                break
        assert caught, "missing _bump() in a mutator went unnoticed"

    def test_divergence_from_flags_latency_drift(self, diamond):
        view = CDFGView(diamond)
        diamond.set_latency("a", diamond.latency("a") + 1)
        fresh = CDFGView(diamond)
        problem = view.divergence_from(fresh)
        assert problem is not None
        assert "a" in problem
