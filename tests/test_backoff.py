"""The one shared jittered-backoff policy (`repro.util.backoff`).

PR 6 deduplicated the retry-backoff formula out of the campaign runner
and the service engine; these tests pin the contract both now depend
on: the seeded path reproduces the runner's historical formula
bit-for-bit (resume determinism), the unseeded path is exactly the
engine's unjittered exponential, and both respect the cap.
"""

from __future__ import annotations

import random

from repro.resilience.campaign import TrialSpec
from repro.resilience.runner import CampaignRunner, RunnerConfig
from repro.util.backoff import backoff_delay


def _historical_runner_delay(seed: int, attempt: int,
                             base_s: float, cap_s: float) -> float:
    """The pre-extraction formula from resilience.runner, verbatim."""
    jitter = random.Random(seed * 31 + attempt).random()
    return min(cap_s, base_s * (2 ** attempt) * (0.5 + jitter))


def test_seeded_matches_historical_runner_formula():
    for seed in (0, 1, 7, 12345):
        for attempt in range(6):
            assert backoff_delay(attempt, 0.05, 2.0, seed=seed) == (
                _historical_runner_delay(seed, attempt, 0.05, 2.0)
            )


def test_seeded_is_deterministic_and_decorrelated():
    # Same (seed, attempt) -> same delay (the resume contract) ...
    assert backoff_delay(3, 0.1, 5.0, seed=9) == backoff_delay(
        3, 0.1, 5.0, seed=9
    )
    # ... while distinct seeds decorrelate their retry storms.
    delays = {backoff_delay(2, 0.1, 5.0, seed=s) for s in range(16)}
    assert len(delays) > 8


def test_unseeded_is_plain_exponential():
    assert backoff_delay(0, 0.05, 2.0) == 0.05
    assert backoff_delay(1, 0.05, 2.0) == 0.10
    assert backoff_delay(3, 0.05, 2.0) == 0.40
    assert backoff_delay(10, 0.05, 2.0) == 2.0  # capped


def test_cap_applies_to_jittered_path_too():
    for attempt in range(20):
        assert backoff_delay(attempt, 0.5, 1.25, seed=4) <= 1.25


def test_non_positive_base_means_retry_immediately():
    assert backoff_delay(5, 0.0, 2.0) == 0.0
    assert backoff_delay(5, -1.0, 2.0, seed=3) == 0.0


def test_campaign_runner_backoff_sleeps_the_shared_policy(monkeypatch,
                                                          tmp_path):
    """`CampaignRunner._backoff` must sleep exactly `backoff_delay`
    with the trial's seed — the runner's resume determinism rides on
    this staying bit-identical across the refactor."""
    slept = []
    monkeypatch.setattr("repro.resilience.runner.time.sleep", slept.append)
    runner = CampaignRunner(
        tmp_path, RunnerConfig(backoff_base_s=0.05, backoff_cap_s=2.0)
    )
    spec = TrialSpec(rate_index=0, rate=0.1, trial=0, seed=77,
                     fault_kinds=("delete_edges",), jitter=False)
    for attempt in range(3):
        runner._backoff(spec, attempt)
    assert slept == [
        backoff_delay(attempt, 0.05, 2.0, seed=77) for attempt in range(3)
    ]
