"""Fallback ladder and robust embedder: degradation, widening,
partial-success accounting."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.ops import ResourceClass
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.errors import SchedulingError
from repro.resilience.budget import Budget
from repro.resilience.pipeline import (
    DEFAULT_LADDER,
    PipelineOutcome,
    RobustEmbedder,
    robust_schedule,
    widened_domain_params,
)
from repro.scheduling.exact import exact_schedule
from repro.scheduling.resources import UNLIMITED, ResourceSet
from repro.timing.windows import critical_path_length


class TestRobustSchedule:
    def test_exact_wins_on_easy_input(self, iir4):
        result = robust_schedule(iir4, horizon=critical_path_length(iir4))
        assert result.scheduler == "exact"
        assert not result.degraded
        assert result.met_horizon
        assert result.makespan == critical_path_length(iir4)
        result.schedule.verify(iir4)

    def test_matches_plain_exact(self, iir4):
        horizon = critical_path_length(iir4) + 1
        robust = robust_schedule(iir4, horizon=horizon)
        plain = exact_schedule(iir4, horizon, UNLIMITED)
        assert robust.schedule.start_times == plain.start_times

    def test_list_rung_reports_horizon_overrun(self, chain5):
        # chain5 needs 5 steps; horizon 3 is impossible for every rung,
        # so the list rung wins but met_horizon is False — reported,
        # never raised.
        result = robust_schedule(chain5, horizon=3)
        assert result.scheduler == "list"
        assert result.degraded
        assert not result.met_horizon
        assert result.makespan == 5
        assert [a.scheduler for a in result.attempts] == list(DEFAULT_LADDER)
        assert all(not a.succeeded for a in result.attempts[:2])
        result.schedule.verify(chain5)

    def test_resource_pressure_degrades_past_fds(self, iir4):
        # One ALU + one multiplier: exact proves the cp horizon
        # infeasible and FDS (time-constrained only) violates the caps,
        # so its verify pushes the ladder to the list rung.
        resources = ResourceSet(
            {ResourceClass.ALU: 1, ResourceClass.MULTIPLIER: 1}
        )
        result = robust_schedule(
            iir4, horizon=critical_path_length(iir4), resources=resources
        )
        assert result.scheduler == "list"
        result.schedule.verify(iir4, resources=resources)

    def test_bad_ladder_rejected(self, iir4):
        with pytest.raises(SchedulingError, match="empty"):
            robust_schedule(iir4, ladder=())
        with pytest.raises(SchedulingError, match="unknown"):
            robust_schedule(iir4, ladder=("exact", "quantum"))

    def test_truncated_ladder_can_fail_entirely(self, chain5):
        with pytest.raises(SchedulingError, match="every scheduler rung"):
            robust_schedule(chain5, horizon=3, ladder=("exact",))


class TestWidening:
    def test_step_zero_is_identity(self):
        base = DomainParams()
        assert widened_domain_params(base, 0) is base

    def test_monotone_widening(self):
        base = DomainParams(tau=2, min_domain_size=5, include_probability=0.6)
        previous = base
        for step in range(1, 4):
            widened = widened_domain_params(base, step)
            assert widened.tau > previous.tau
            assert widened.min_domain_size <= previous.min_domain_size
            assert widened.include_probability >= previous.include_probability
            previous = widened

    def test_bounds_respected(self):
        base = DomainParams(tau=1, min_domain_size=3, include_probability=0.9)
        widened = widened_domain_params(base, 10)
        assert widened.min_domain_size >= 2
        assert widened.include_probability <= 1.0


class TestRobustEmbedder:
    def test_zero_widenings_matches_plain_embed(self, alice, iir4):
        marked_r, wm_r, widenings = RobustEmbedder(alice).embed(iir4)
        marked_p, wm_p = SchedulingWatermarker(alice).embed(iir4)
        assert widenings == 0
        assert wm_r == wm_p
        assert sorted(marked_r.temporal_edges) == sorted(
            marked_p.temporal_edges
        )

    def test_widening_rescues_too_strict_params(self, alice, iir4):
        # min_domain_size far above what tau=1 cones offer: the base
        # params fail, the widened ones succeed.
        params = SchedulingWMParams(
            domain=DomainParams(tau=1, min_domain_size=12)
        )
        strict = SchedulingWatermarker(alice, params)
        from repro.errors import DomainSelectionError

        with pytest.raises(DomainSelectionError):
            strict.embed(iir4)
        _, wm, widenings = RobustEmbedder(
            alice, params=params, max_widenings=5
        ).embed(iir4)
        assert widenings >= 1
        assert wm.k >= 1

    def test_embed_many_full_success(self, alice):
        graph = random_layered_cdfg(150, seed=31, num_layers=25)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=3
        )
        outcome = RobustEmbedder(alice, params=params).embed_many(graph, 4)
        assert isinstance(outcome, PipelineOutcome)
        assert len(outcome.localities) == 4
        assert outcome.success_rate == 1.0
        assert outcome.total_edges == sum(w.k for w in outcome.watermarks)
        assert len(outcome.marked.temporal_edges) == outcome.total_edges

    def test_embed_many_partial_success_never_raises(self, alice, chain5):
        # chain5 has zero mobility: no locality can ever encode. Every
        # locality must be accounted for as a failure, not raised.
        outcome = RobustEmbedder(alice, max_widenings=1).embed_many(chain5, 3)
        assert len(outcome.localities) == 3
        assert outcome.success_rate == 0.0
        assert outcome.succeeded == ()
        assert len(outcome.failed) == 3
        assert all(o.error for o in outcome.failed)
        assert outcome.total_edges == 0
        # The design is returned unmarked.
        assert outcome.marked.temporal_edges == []

    def test_embed_many_budget_exhaustion_is_partial(self, alice):
        graph = random_layered_cdfg(150, seed=31, num_layers=25)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=3
        )
        # Probe what one locality costs, then grant roughly two: the
        # budget must run dry partway through the six requested.
        probe = Budget()
        RobustEmbedder(
            alice, params=params, budget=probe, max_widenings=0
        ).embed(graph)
        budget = Budget(node_limit=max(1, 2 * probe.nodes))
        outcome = RobustEmbedder(
            alice, params=params, budget=budget, max_widenings=0
        ).embed_many(graph, 6)
        assert len(outcome.localities) == 6
        assert 0 < len(outcome.succeeded) < 6
        assert any(
            "BudgetExceededError" in o.error for o in outcome.failed
        )

    def test_partial_marks_verify(self, alice):
        graph = random_layered_cdfg(150, seed=31, num_layers=25)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=3
        )
        embedder = RobustEmbedder(alice, params=params)
        outcome = embedder.embed_many(graph, 3)
        from repro.scheduling.list_scheduler import list_schedule

        schedule = list_schedule(outcome.marked)
        marker = SchedulingWatermarker(alice, params=params)
        for watermark in outcome.watermarks:
            result = marker.verify(outcome.marked, schedule, watermark)
            assert result.detected
