"""Attack models: reorder, reschedule, rename, ghost-signature search."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.core.attacks import (
    apply_renaming,
    ghost_signature_search,
    rename_attack,
    reorder_attack,
    reschedule_attack,
)
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.scheduling.list_scheduler import list_schedule


@pytest.fixture
def params():
    return SchedulingWMParams(
        domain=DomainParams(tau=5, min_domain_size=8), k=6
    )


@pytest.fixture
def victim(alice, params):
    design = random_layered_cdfg(120, seed=77)
    marker = SchedulingWatermarker(alice, params)
    marked, wm = marker.embed(design)
    schedule = list_schedule(marked)
    return design, wm, schedule


class TestReorderAttack:
    def test_schedule_stays_legal(self, victim, alice):
        design, wm, schedule = victim
        outcome = reorder_attack(
            design, schedule, wm, alice, attempts=200, seed=1
        )
        outcome.schedule.verify(design)

    def test_few_swaps_leave_watermark(self, victim, alice):
        design, wm, schedule = victim
        outcome = reorder_attack(
            design, schedule, wm, alice, attempts=10, seed=1
        )
        assert outcome.surviving_fraction >= 0.5

    def test_more_swaps_erode_more(self, victim, alice):
        design, wm, schedule = victim
        light = reorder_attack(
            design, schedule, wm, alice, attempts=20, seed=3
        )
        heavy = reorder_attack(
            design, schedule, wm, alice, attempts=2000, seed=3
        )
        assert heavy.alterations > light.alterations
        assert heavy.surviving_fraction <= light.surviving_fraction

    def test_deterministic_in_seed(self, victim, alice):
        design, wm, schedule = victim
        a = reorder_attack(design, schedule, wm, alice, 100, seed=5)
        b = reorder_attack(design, schedule, wm, alice, 100, seed=5)
        assert a.schedule.start_times == b.schedule.start_times


class TestRescheduleAttack:
    def test_fresh_schedule_is_legal(self, victim, alice):
        design, wm, _ = victim
        outcome = reschedule_attack(design, wm, alice)
        outcome.schedule.verify(design.without_temporal_edges())

    def test_watermark_weakened(self, victim, alice):
        design, wm, schedule = victim
        outcome = reschedule_attack(design, wm, alice)
        # A fresh schedule satisfies some constraints by chance but the
        # full-evidence confidence of the original must not be beaten.
        assert outcome.verification.fraction <= 1.0


class TestRenameAttack:
    def test_structure_preserved(self, victim):
        design, _, _ = victim
        renamed, mapping = rename_attack(design, seed=2)
        assert renamed.num_operations == design.num_operations
        assert set(mapping) == set(design.operations)
        assert len(set(mapping.values())) == len(mapping)
        assert design.structure_signature() == renamed.structure_signature()

    def test_apply_renaming_translates_schedule(self, victim):
        design, _, schedule = victim
        renamed, mapping = rename_attack(design, seed=2)
        translated = apply_renaming(schedule, mapping)
        for node, start in schedule.start_times.items():
            assert translated.start(mapping[node]) == start

    def test_deterministic(self, victim):
        design, _, _ = victim
        _, m1 = rename_attack(design, seed=9)
        _, m2 = rename_attack(design, seed=9)
        assert m1 == m2


class TestGhostSearch:
    def test_no_cheap_false_authorship(self, victim):
        design, _, schedule = victim
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=6
        )
        result = ghost_signature_search(
            design, schedule, n_candidates=8, seed=4, params=params
        )
        assert result.tried > 0
        # With 6 constraints each, a handful of ghosts should not fully
        # match (probability per ghost is roughly (1/2)^6).
        assert result.detections <= 1
        assert 0.0 <= result.best_fraction <= 1.0

    def test_deterministic(self, victim):
        design, _, schedule = victim
        a = ghost_signature_search(design, schedule, 4, seed=4)
        b = ghost_signature_search(design, schedule, 4, seed=4)
        assert a == b
