"""CLI resilience surface: stress subcommand, budget/fallback flags,
hardened error paths."""

from __future__ import annotations

import json

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import save
from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.json"
    save(fourth_order_parallel_iir(), path)
    return str(path)


@pytest.fixture
def workflow(tmp_path, design_file):
    marked = str(tmp_path / "marked.json")
    record = str(tmp_path / "wm.json")
    schedule = str(tmp_path / "sched.json")
    assert (
        main(
            [
                "embed",
                "--design", design_file,
                "--author", "Alice Inc.",
                "--out", marked,
                "--record", record,
                "--k", "3",
                "--tau", "4",
            ]
        )
        == 0
    )
    assert main(["schedule", "--design", marked, "--out", schedule]) == 0
    return design_file, marked, record, schedule


class TestStress:
    def test_stress_reports_multiple_rates(self, workflow, capsys):
        design, marked, record, schedule = workflow
        code = main(
            [
                "stress",
                "--design", marked,
                "--record", record,
                "--schedule", schedule,
                "--rates", "0.0,0.1,0.2",
                "--trials", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection confidence vs. fault rate" in out
        for cell in ("0.0%", "10.0%", "20.0%"):
            assert cell in out

    def test_stress_without_schedule_uses_list_scheduler(
        self, workflow, capsys
    ):
        _, marked, record, _ = workflow
        assert (
            main(
                [
                    "stress",
                    "--design", marked,
                    "--record", record,
                    "--trials", "1",
                ]
            )
            == 0
        )
        assert "confidence" in capsys.readouterr().out

    def test_stress_compound_faults_and_jitter(self, workflow, capsys):
        _, marked, record, schedule = workflow
        code = main(
            [
                "stress",
                "--design", marked,
                "--record", record,
                "--schedule", schedule,
                "--rates", "0.2",
                "--trials", "2",
                "--faults", "delete_edges,drop_nodes",
                "--jitter",
            ]
        )
        assert code == 0  # graded, never crashed

    def test_bad_rates_exit_2(self, workflow, capsys):
        _, marked, record, _ = workflow
        for rates in ("1.5", "abc", ""):
            assert (
                main(
                    [
                        "stress",
                        "--design", marked,
                        "--record", record,
                        "--rates", rates,
                    ]
                )
                == 2
            )
            assert "error:" in capsys.readouterr().err

    def test_unknown_fault_kind_exit_2(self, workflow, capsys):
        _, marked, record, _ = workflow
        assert (
            main(
                [
                    "stress",
                    "--design", marked,
                    "--record", record,
                    "--faults", "melt",
                ]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    def test_embed_fallback_and_budget(self, tmp_path, design_file):
        marked = str(tmp_path / "m.json")
        record = str(tmp_path / "r.json")
        assert (
            main(
                [
                    "embed",
                    "--design", design_file,
                    "--author", "Alice Inc.",
                    "--out", marked,
                    "--record", record,
                    "--fallback",
                    "--budget-ms", "5000",
                ]
            )
            == 0
        )
        payload = json.loads(open(marked).read())
        assert any(e["kind"] == "temporal" for e in payload["edges"])

    def test_embed_fallback_rescues_strict_params(
        self, tmp_path, design_file, capsys
    ):
        marked = str(tmp_path / "m.json")
        record = str(tmp_path / "r.json")
        args = [
            "embed",
            "--design", design_file,
            "--author", "Alice Inc.",
            "--out", marked,
            "--record", record,
            "--tau", "1",
            "--min-domain", "12",
        ]
        assert main(args) == 2  # without fallback: domain selection fails
        assert "error:" in capsys.readouterr().err
        assert main(args + ["--fallback"]) == 0
        assert "widen" in capsys.readouterr().out.lower()

    def test_schedule_exact_with_budget(self, workflow, tmp_path):
        _, marked, _, _ = workflow
        out = str(tmp_path / "s.json")
        assert (
            main(
                [
                    "schedule",
                    "--design", marked,
                    "--out", out,
                    "--scheduler", "exact",
                    "--budget-ms", "5000",
                ]
            )
            == 0
        )
        assert json.loads(open(out).read())["start_times"]

    def test_schedule_fallback_reports_winner(self, workflow, tmp_path, capsys):
        _, marked, _, _ = workflow
        out = str(tmp_path / "s.json")
        assert (
            main(
                [
                    "schedule",
                    "--design", marked,
                    "--out", out,
                    "--fallback",
                ]
            )
            == 0
        )
        assert "scheduler" in capsys.readouterr().out


class TestHardenedErrors:
    def test_malformed_json_design_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["info", "--design", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_schedule_exit_2(self, workflow, tmp_path, capsys):
        design, _, record, _ = workflow
        bad = tmp_path / "sched.json"
        bad.write_text(json.dumps({"wrong": "shape"}))
        assert (
            main(
                [
                    "verify",
                    "--design", design,
                    "--schedule", str(bad),
                    "--record", record,
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "error:" in err and "malformed" in err
