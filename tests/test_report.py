"""Report rendering helpers."""

from __future__ import annotations

import pytest

from repro.analysis.report import percent, render_table, signed_percent


def test_render_alignment():
    out = render_table(
        ["name", "value"],
        [["short", 1], ["a-much-longer-name", 22]],
        title="demo",
    )
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    # All data rows share the separator width.
    assert len(lines[3]) == len(lines[4])


def test_render_without_title():
    out = render_table(["a"], [["x"]])
    assert out.splitlines()[0].startswith("a")


def test_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_cells_stringified():
    out = render_table(["n"], [[3.5], [None]])
    assert "3.5" in out and "None" in out


def test_percent():
    assert percent(0.031) == "3.1%"
    assert percent(0.5, digits=0) == "50%"


def test_signed_percent():
    assert signed_percent(0.05) == "+5.0%"
    assert signed_percent(-0.012) == "-1.2%"
