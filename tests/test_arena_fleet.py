"""Fleet-dispatched arena sweeps: zero trials lost, bit-identical.

The arena's serving-path contract (PR 7 tentpole): dispatching a sweep
across a sharded fleet — including SIGKILLing a shard mid-sweep — must
lose zero planned trials and produce a ``records.json`` byte-identical
to the direct in-process :class:`~repro.arena.runner.ArenaRunner` on
the same manifest.  The fleet may reroute, respawn, and retry however
it likes; none of that is allowed to show in the canonical artifact.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.arena.dispatch import ArenaDispatcher
from repro.arena.runner import ArenaRunner
from repro.arena.sweep import ArenaManifest, plan_arena_trials
from repro.resilience.runner import RunnerConfig
from repro.service.client import FleetClient
from repro.service.engine import ServiceConfig
from repro.service.fleet import FleetConfig

MANIFEST = ArenaManifest(
    designs=("Linear GE Cntrlr",),
    k_values=(8,),
    attacks=("reorder", "rename", "edge_rewire", "adaptive_cut"),
    strengths=(0.5, 1.0),
    fault_rates=(0.0,),
    fault_kinds=(),
    trials=3,
    seed=17,
    author="Arena Fleet Lab",
)


def _kill_when_underway(client, journal: Path, done: threading.Event):
    """SIGKILL shard-1 the moment the dispatcher has journaled progress."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and not done.is_set():
        if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
            client.kill_shard("shard-1")
            return True
        time.sleep(0.01)
    return False


def test_shard_sigkill_mid_sweep_loses_no_trials(tmp_path):
    # Reference: the direct library path.
    direct_dir = tmp_path / "direct"
    direct = ArenaRunner(
        direct_dir, config=RunnerConfig(jobs=2)
    ).start(MANIFEST)
    expected = len(plan_arena_trials(MANIFEST))
    assert len(direct.records) == expected
    assert all(r.outcome == "completed" for r in direct.records)

    # Fleet path: two real subprocess shards, one SIGKILLed mid-sweep.
    fleet_dir = tmp_path / "fleet"
    config = FleetConfig(
        shards=2,
        shard_kind="tcp",
        service=ServiceConfig(
            workers=1, queue_limit=256, cache_dir=tmp_path / "cache"
        ),
        hedge_ms=0.0,
        breaker_threshold=1,
        probe_interval_s=0.1,
        restart_dead=True,
        reroute_backoff_s=0.01,
    )
    killed = {}
    done = threading.Event()
    with FleetClient(config) as client:
        watcher = threading.Thread(
            target=lambda: killed.update(
                fired=_kill_when_underway(
                    client, fleet_dir / "journal.jsonl", done
                )
            )
        )
        watcher.start()
        try:
            # Small batches: the journal fills between submissions, so
            # the watcher's SIGKILL lands with most of the sweep still
            # to dispatch.
            result = ArenaDispatcher(
                fleet_dir, client, batch=2
            ).start(MANIFEST)
        finally:
            done.set()
            watcher.join(timeout=120)

    # The kill really happened, and still: zero trials lost — every
    # planned trial completed (rerouted, not crashed or dropped).
    assert killed.get("fired"), "shard kill never fired mid-sweep"
    assert len(result.records) == expected
    assert all(r.outcome == "completed" for r in result.records)

    # Canonical artifact bit-identity with the direct path: reroutes
    # and retries may differ, records.json may not.
    assert (fleet_dir / "records.json").read_bytes() == (
        direct_dir / "records.json"
    ).read_bytes()

    # The journal keeps the messy truth (per-trial retries, wall time);
    # only the canonical artifact strips it.
    rows = [
        json.loads(line)
        for line in (fleet_dir / "journal.jsonl")
        .read_text(encoding="utf-8")
        .splitlines()
        if line.strip()
    ]
    trial_rows = [r for r in rows if r.get("event") != "retry"]
    assert {r["index"] for r in trial_rows} == set(range(expected))
    assert all("wall_ms" in r for r in trial_rows)
    canonical = json.loads(
        (fleet_dir / "records.json").read_text(encoding="utf-8")
    )
    assert all("wall_ms" not in r and "retries" not in r for r in canonical)
