"""Unit tests for the adversarial arena: cases, planning, attacks, gate.

The end-to-end properties (SIGKILL + resume determinism, fleet
dispatch) live in ``test_arena_kill_resume.py`` and
``test_arena_fleet.py``; this file pins the pieces: case construction
and multi-mark verification, the pure sweep planner, the attack
registry's gating taxonomy, per-attack semantics on a real HYPER case,
journal record round-trips, and the ROC builder's damage-floor gate.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arena.attacks import (
    ATTACKS,
    gate_attack_names,
    watermark_pair_candidates,
)
from repro.arena.embedding import (
    ARENA_TAU,
    ArenaCase,
    arena_horizon,
    arena_params,
    build_case,
    case_key,
    resolve_design,
    verify_marks,
)
from repro.arena.roc import (
    GATE_MAX_LOG10_PC,
    aggregate_arena,
    build_roc,
    check_gate,
    roc_artifact,
)
from repro.arena.sweep import (
    ARENA_SEED_STRIDE,
    ArenaManifest,
    attack_once,
    derive_arena_seed,
    plan_arena_trials,
    record_from_json,
    record_to_json,
    validate_manifest,
    zero_arena_record,
)
from repro.errors import ReproError

AUTHOR = "Arena Unit Lab"


@pytest.fixture(scope="module")
def case() -> ArenaCase:
    return build_case("Linear GE Cntrlr", AUTHOR, 8)


def manifest(**overrides) -> ArenaManifest:
    base = dict(
        designs=("Linear GE Cntrlr",),
        k_values=(8,),
        attacks=("reorder", "rename"),
        strengths=(0.5, 1.0),
        fault_rates=(0.0,),
        fault_kinds=(),
        trials=3,
        seed=11,
        author=AUTHOR,
    )
    base.update(overrides)
    return ArenaManifest(**base)


# ----------------------------------------------------------------------
# cases
# ----------------------------------------------------------------------
def test_build_case_embeds_k_and_ships_a_satisfying_schedule(case):
    assert case.k == 8
    assert case.edges >= 8
    assert case.key == case_key("Linear GE Cntrlr", 8)
    # Suspect designs are what an adversary recovers: no temporal edges.
    assert not list(case.suspect.temporal_edges)
    # The shipped schedule satisfies every constraint of every mark.
    verification = verify_marks(case.suspect, case.schedule, case.marks)
    assert verification.satisfied == verification.total == case.edges
    assert verification.detected
    assert verification.log10_pc < 0.0
    assert verification.confidence > 0.9


def test_case_is_author_keyed():
    other = build_case("Linear GE Cntrlr", AUTHOR + " B", 8)
    ours = build_case("Linear GE Cntrlr", AUTHOR, 8)
    assert {m.root for m in other.marks} != {m.root for m in ours.marks} or [
        m.temporal_edges for m in other.marks
    ] != [m.temporal_edges for m in ours.marks]


def test_every_embedded_edge_is_a_candidate_pair(case):
    pairs = {
        tuple(sorted(p))
        for p in watermark_pair_candidates(
            case.suspect, arena_params(horizon=arena_horizon(case.suspect))
        )
    }
    for mark in case.marks:
        for edge in mark.temporal_edges:
            assert tuple(sorted(edge)) in pairs


def test_resolve_design_rejects_unknown():
    with pytest.raises(ReproError, match="unknown arena design"):
        resolve_design("No Such Design")


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_is_a_pure_grid_in_index_order():
    m = manifest()
    specs = plan_arena_trials(m)
    assert len(specs) == 1 * 1 * 2 * 2 * 1 * 3
    assert [s.index for s in specs] == list(range(len(specs)))
    assert specs == plan_arena_trials(m)  # pure: replanning is identical
    for spec in specs:
        assert spec.seed == m.seed + ARENA_SEED_STRIDE * spec.index
        assert spec.seed == derive_arena_seed(m.seed, spec.index)
    # Nesting order: designs > k > attacks > strengths > rates > trials.
    assert [s.attack for s in specs[:6]] == ["reorder"] * 6
    assert [s.strength for s in specs[:3]] == [0.5] * 3
    assert [s.trial for s in specs[:3]] == [0, 1, 2]


def test_manifest_round_trip_and_title():
    m = manifest(fault_rates=(0.0, 0.2), fault_kinds=("delete_edges",))
    assert ArenaManifest.from_dict(m.to_dict()) == m
    assert "1 design(s)" in m.title
    assert "K[8]" in m.title


@pytest.mark.parametrize(
    "overrides, message",
    [
        ({"designs": ()}, "at least one design"),
        ({"k_values": (0,)}, "positive"),
        ({"attacks": ("nope",)}, "unknown arena attack"),
        ({"strengths": (1.5,)}, r"\[0, 1\]"),
        ({"fault_rates": (0.5,), "fault_kinds": ()}, "need fault kinds"),
        ({"trials": 0}, "trials"),
        ({"author": ""}, "author"),
    ],
)
def test_validate_manifest_rejects(overrides, message):
    with pytest.raises(ReproError, match=message):
        validate_manifest(manifest(**overrides))


# ----------------------------------------------------------------------
# attack registry and per-attack semantics
# ----------------------------------------------------------------------
def test_registry_gating_taxonomy():
    assert set(gate_attack_names()) == {
        name for name, attack in ATTACKS.items() if attack.gated
    }
    for name, attack in ATTACKS.items():
        # Gate-eligible attacks are exactly the non-adaptive tweaks that
        # keep the shipped solution: adaptive adversaries know the
        # parameters, and rebuild-class attacks pay in re-engineering
        # effort the damage metric cannot see.
        if attack.gated:
            assert not attack.adaptive, name
            assert not attack.rebuilds, name
    assert ATTACKS["adaptive_cut"].adaptive
    assert ATTACKS["adaptive_excise"].adaptive
    assert ATTACKS["reschedule"].rebuilds
    assert ATTACKS["excise"].rebuilds


def test_rename_attack_is_survivable_via_node_map(case):
    result = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="rename", strength=1.0, seed=5,
    )
    # Renaming destroys identifiers, not order: with the ground-truth
    # mapping every constraint still holds and damage is zero.
    assert result["satisfied"] == result["total"] == case.edges
    assert result["detected"]
    assert result["damage"] == 0.0
    assert result["alterations"] > 0


def test_reschedule_attack_erases_unforced_evidence(case):
    result = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="reschedule", strength=1.0, seed=5,
    )
    # A fresh schedule keeps only precedence-forced mark edges, and
    # those carry ~zero evidence each.
    assert result["satisfied"] < result["total"]
    assert not result["detected"]


def test_adaptive_cut_beats_reorder_at_equal_strength(case):
    # At low strength the Kerckhoffs adversary aims every move at a
    # watermark-candidate pair; the blind reorderer mostly misses.
    adaptive = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="adaptive_cut", strength=0.25, seed=5,
    )
    blind = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="reorder", strength=0.25, seed=5,
    )
    assert adaptive["satisfied"] < blind["satisfied"]
    assert adaptive["log10_pc"] > blind["log10_pc"]  # less evidence left
    assert adaptive["damage"] == 0.0  # ...at no quality cost


def test_attack_once_is_deterministic_in_seed(case):
    a = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="edge_rewire", strength=0.5, seed=9,
        fault_rate=0.2, fault_kinds=("delete_edges",),
    )
    b = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="edge_rewire", strength=0.5, seed=9,
        fault_rate=0.2, fault_kinds=("delete_edges",),
    )
    c = attack_once(
        case.suspect, case.schedule, case.marks,
        attack="edge_rewire", strength=0.5, seed=10,
        fault_rate=0.2, fault_kinds=("delete_edges",),
    )
    assert a == b
    assert a != c


def test_unknown_attack_raises(case):
    with pytest.raises(ReproError, match="unknown"):
        attack_once(
            case.suspect, case.schedule, case.marks,
            attack="nope", strength=1.0, seed=1,
        )


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def test_record_round_trip():
    spec = plan_arena_trials(manifest())[0]
    record = zero_arena_record(spec, "crashed", "boom", retries=2)
    assert record.outcome == "crashed"
    assert record.error == "boom"
    assert record_from_json(record_to_json(record)) == record


def test_record_rejects_unknown_outcome():
    spec = plan_arena_trials(manifest())[0]
    payload = record_to_json(zero_arena_record(spec, "error", "x"))
    payload["outcome"] = "mystery"
    with pytest.raises(ReproError):
        record_from_json(payload)


# ----------------------------------------------------------------------
# aggregation, ROC, gate
# ----------------------------------------------------------------------
def _fake_records(log10_pc=-8.0, damage=0.05, attack="reorder", k=32,
                  fault_rate=0.0, n=4, start_index=0):
    rows = []
    for i in range(n):
        record = zero_arena_record(
            plan_arena_trials(
                manifest(k_values=(k,), attacks=(attack,),
                         strengths=(0.5,), fault_rates=(fault_rate,),
                         fault_kinds=("delete_edges",) if fault_rate else (),
                         trials=n)
            )[i],
            "error", "placeholder",
        )
        row = dataclasses.replace(
            record,
            index=start_index + i,
            outcome="completed",
            satisfied=30, total=32, fraction=30 / 32,
            confidence=0.999, log10_pc=log10_pc, detected=False,
            damage=damage, alterations=10, error=None,
        )
        rows.append(record_to_json(row))
    return rows


def test_aggregate_and_roc_group_by_cell():
    records = _fake_records() + _fake_records(
        attack="rename", damage=0.0, start_index=10
    )
    points = aggregate_arena(records)
    assert len(points) == 2
    assert points[0].completed == 4
    assert points[0].mean_damage == pytest.approx(0.05)
    curves = build_roc(records)
    assert {c["attack"] for c in curves} == {"reorder", "rename"}
    by_attack = {c["attack"]: c for c in curves}
    assert by_attack["reorder"]["gated"] is True
    assert by_attack["rename"]["gated"] is False
    assert len(by_attack["reorder"]["points"]) == 1


def test_gate_holds_on_strong_detection():
    assert check_gate(_fake_records(log10_pc=-9.0, damage=0.05)) == []


def test_gate_flags_weak_detection_under_the_damage_floor():
    violations = check_gate(_fake_records(log10_pc=-3.0, damage=0.05))
    assert len(violations) == 1
    assert "reorder" in violations[0]
    assert "-6.0" in violations[0]


def test_gate_ignores_ineligible_cells_but_rejects_vacuity():
    # High damage, low K, faulty extraction, ungated attacks: all
    # skipped — and a sweep with *only* those cells cannot claim the
    # gate holds.
    records = (
        _fake_records(log10_pc=-1.0, damage=0.5)
        + _fake_records(log10_pc=-1.0, k=8, start_index=10)
        + _fake_records(log10_pc=-1.0, fault_rate=0.2, start_index=20)
        + _fake_records(log10_pc=-1.0, attack="adaptive_cut",
                        start_index=30)
    )
    violations = check_gate(records)
    assert len(violations) == 1
    assert "vacuous" in violations[0]


def test_roc_artifact_shape():
    m = manifest(k_values=(32,), attacks=("reorder",), strengths=(0.5,))
    artifact = roc_artifact(m.to_dict(), _fake_records())
    assert artifact["schema"] == 1
    assert artifact["totals"]["trials"] == 4
    assert artifact["totals"]["completed"] == 4
    assert artifact["gate"]["holds"] is True
    assert artifact["gate"]["max_log10_pc"] == GATE_MAX_LOG10_PC
    assert artifact["gate"]["attacks"] == sorted(gate_attack_names())
    assert artifact["curves"][0]["points"][0]["trials"] == 4
    assert artifact["manifest"]["tau"] == ARENA_TAU
