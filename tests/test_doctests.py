"""Docstring examples must stay executable (they are the API's shopfront).

Modules are auto-collected by walking the ``repro`` package, so a new
module (``timing.kernel``, ``resilience.runner``, ``verify.*``, …) is
covered the day it lands — no hand-maintained list to forget to update.
Modules listed in :data:`MUST_HAVE_EXAMPLES` are additionally required
to *have* doctests: they are the documented entry points.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _walk_modules() -> list:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _walk_modules()

#: Entry-point modules whose examples are part of the documented API;
#: losing their doctests entirely would be a regression.
MUST_HAVE_EXAMPLES = {
    "repro",
    "repro.cdfg.builder",
    "repro.cdfg.graph",
    "repro.crypto.rc4",
    "repro.crypto.signature",
    "repro.scheduling.resources",
    "repro.rtl.emit",
    "repro.rtl.extract",
}


def test_discovery_covers_new_subsystems():
    for expected in (
        "repro.timing.kernel",
        "repro.resilience.runner",
        "repro.verify.suites",
        "repro.verify.differential",
        "repro.verify.metamorphic",
        "repro.verify.fuzz",
        "repro.rtl.emit",
        "repro.rtl.extract",
    ):
        assert expected in ALL_MODULES


@pytest.mark.parametrize("name", ALL_MODULES)
def test_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{name}: {results.failed} failures"
    if name in MUST_HAVE_EXAMPLES:
        assert results.attempted > 0, f"{name} has no examples"
