"""Docstring examples must stay executable (they are the API's shopfront)."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.cdfg.builder
import repro.cdfg.graph
import repro.crypto.rc4
import repro.crypto.signature
import repro.scheduling.resources

MODULES = [
    repro,
    repro.cdfg.builder,
    repro.cdfg.graph,
    repro.crypto.rc4,
    repro.crypto.signature,
    repro.scheduling.resources,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} has no examples"
