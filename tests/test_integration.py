"""Cross-module integration: the full protocol flows of Fig. 1.

These tests exercise the *pipelines* the paper describes, end to end:
embed → synthesize → strip → distribute → recover → detect, for both
behavioral-synthesis tasks, plus the adversarial scenarios of §I.
"""

from __future__ import annotations

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir, hyper_design
from repro.cdfg.generators import embed_in_host, random_layered_cdfg
from repro.core.attacks import apply_renaming, rename_attack
from repro.core.coincidence import approx_log10_pc, exact_pc
from repro.core.detector import scan_for_watermark, verify_by_record
from repro.core.domain import DomainParams
from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.templates.covering import cover_and_allocate
from repro.templates.library import default_library
from repro.timing.windows import critical_path_length
from repro.vliw.compiler import compile_block, realize_watermark_as_code
from repro.vliw.machine import paper_machine


PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=5, min_domain_size=8), k=6
)


def test_full_scheduling_flow_fig1(alice):
    """Fig. 1: preprocess → synthesize → remove constraints → detect."""
    original = random_layered_cdfg(100, seed=5)
    marker = SchedulingWatermarker(alice, PARAMS)

    # Synthesis preprocessing: augment user-specific constraints.
    marked, watermark = marker.embed(original)
    # Off-the-shelf tool: any constraint-respecting scheduler.
    schedule = list_schedule(marked)
    # Constraints removed: the shipped design is `original` + schedule.
    shipped = marked.without_temporal_edges()
    assert shipped.temporal_edges == []
    # Detection from the shipped artifacts.
    result = verify_by_record(shipped, schedule, watermark, alice)
    assert result.detected
    assert result.confidence > 0.9


def test_two_schedulers_both_carry_watermark(alice):
    original = random_layered_cdfg(120, seed=6)
    marker = SchedulingWatermarker(alice, PARAMS)
    marked, watermark = marker.embed(original)
    horizon = critical_path_length(marked)
    for schedule in (
        list_schedule(marked),
        force_directed_schedule(marked, horizon),
    ):
        result = marker.verify(original, schedule, watermark)
        assert result.fraction == 1.0


def test_embedded_ip_scenario(alice):
    """§I: the misappropriated core is augmented into a larger system."""
    core = random_layered_cdfg(80, seed=8)
    marker = SchedulingWatermarker(alice, PARAMS)
    marked_core, watermark = marker.embed(core)
    system = embed_in_host(marked_core, host_ops=240, seed=13, prefix="ip/")
    system_schedule = list_schedule(system)
    hits = scan_for_watermark(
        system, system_schedule, watermark, alice, PARAMS.domain
    )
    assert hits
    assert hits[0].result.fraction == 1.0


def test_renamed_and_embedded(alice):
    core = random_layered_cdfg(80, seed=9)
    marker = SchedulingWatermarker(alice, PARAMS)
    marked_core, watermark = marker.embed(core)
    renamed_core, mapping = rename_attack(marked_core, seed=21)
    system = embed_in_host(renamed_core, host_ops=160, seed=22, prefix="")
    schedule = list_schedule(system)
    hits = scan_for_watermark(
        system, schedule, watermark, alice, PARAMS.domain
    )
    assert hits


def test_exact_and_approx_pc_agree_in_shape(alice, iir4):
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=5)
    )
    marker = SchedulingWatermarker(alice, params)
    _, wm = marker.embed(iir4)
    exact = marker.exact_coincidence(iir4, wm)
    approx = approx_log10_pc(iir4, wm.temporal_edges, model="uniform")
    assert exact.log10_pc < 0 and approx < 0
    assert abs(exact.log10_pc - approx) < 1.5


def test_matching_flow_on_suite_design(alice):
    design = hyper_design("Wavelet Filter")
    c = critical_path_length(design)
    params = MatchingWMParams(z=2, horizon=2 * c)
    marker = MatchingWatermarker(alice, params=params)
    marked, watermark = marker.embed(design)
    covering, allocation = cover_and_allocate(
        marked, default_library(), steps=2 * c, forced=watermark.enforced
    )
    covering.verify(marked)
    verification = marker.verify(covering, watermark)
    assert verification.detected
    assert allocation.module_count >= 1


def test_scheduling_watermark_realized_in_code(alice, iir4):
    """§V: temporal edges become unit ops; the VLIW compilation still
    executes sources before destinations, at near-zero cycle cost."""
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=5)
    )
    marker = SchedulingWatermarker(alice, params)
    _, watermark = marker.embed(iir4)
    machine = paper_machine()
    base = compile_block(iir4, machine)
    realized = realize_watermark_as_code(
        iir4, list(watermark.temporal_edges)
    )
    result = compile_block(realized, machine)
    for src, dst in watermark.temporal_edges:
        assert result.start_cycles[src] < result.start_cycles[dst]
    assert result.cycles <= base.cycles + len(watermark.temporal_edges)


def test_both_watermarks_coexist(alice, iir4):
    """One author can mark scheduling AND matching on the same design."""
    c = critical_path_length(iir4)
    sched_marker = SchedulingWatermarker(
        alice,
        SchedulingWMParams(domain=DomainParams(tau=4, min_domain_size=5)),
    )
    match_marker = MatchingWatermarker(
        alice, params=MatchingWMParams(z=2, horizon=2 * c)
    )
    step1, sched_wm = sched_marker.embed(iir4)
    step2, match_wm = match_marker.embed(step1)
    schedule = list_schedule(step2, horizon=2 * c)
    assert sched_marker.verify(iir4, schedule, sched_wm).detected
    covering, _ = cover_and_allocate(
        step2.without_temporal_edges(),
        default_library(),
        steps=2 * c,
        forced=match_wm.enforced,
    )
    assert match_marker.verify(covering, match_wm).detected


def test_distinct_authors_distinct_evidence(iir4):
    params = SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=5)
    )
    alice_wm = SchedulingWatermarker(
        AuthorSignature("alice"), params
    ).embed(iir4)[1]
    bob_wm = SchedulingWatermarker(AuthorSignature("bob"), params).embed(
        iir4
    )[1]
    assert alice_wm.temporal_edges != bob_wm.temporal_edges


def test_serialization_roundtrip_preserves_watermark(alice, tmp_path):
    from repro.cdfg.io import load, save

    original = random_layered_cdfg(60, seed=30)
    marker = SchedulingWatermarker(alice, PARAMS)
    marked, watermark = marker.embed(original)
    path = tmp_path / "marked.json"
    save(marked, path)
    restored = load(path)
    schedule = list_schedule(restored)
    result = marker.verify(original, schedule, watermark)
    assert result.detected
