"""Timing analysis: ASAP/ALAP, windows, critical paths, laxity, levels."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.ops import OpType
from repro.errors import InfeasibleScheduleError, UnknownNodeError
from repro.timing.paths import critical_path, laxity, levels_from_root, slack
from repro.timing.windows import (
    alap_schedule,
    asap_schedule,
    critical_path_length,
    makespan,
    mobility,
    scheduling_windows,
    windows_overlap,
)


class TestAsapAlap:
    def test_chain_asap(self, chain5):
        asap = asap_schedule(chain5)
        assert asap == {"x": 0, "n0": 0, "n1": 1, "n2": 2, "n3": 3, "n4": 4}

    def test_chain_critical_path(self, chain5):
        assert critical_path_length(chain5) == 5

    def test_chain_alap_at_cp_equals_asap(self, chain5):
        assert alap_schedule(chain5, 5) == asap_schedule(chain5)

    def test_alap_with_slack(self, chain5):
        alap = alap_schedule(chain5, 7)
        assert alap["n0"] == 2
        assert alap["n4"] == 6

    def test_alap_below_cp_rejected(self, chain5):
        with pytest.raises(InfeasibleScheduleError):
            alap_schedule(chain5, 4)

    def test_diamond_windows(self, diamond):
        windows = scheduling_windows(diamond, 3)
        assert windows["a"] == (0, 1)
        assert windows["c"] == (0, 1)
        assert windows["out"] == (1, 2)

    def test_mobility(self, diamond):
        mob = mobility(diamond, 3)
        assert mob["a"] == 1
        assert mob["out"] == 1
        mob_tight = mobility(diamond, 2)
        assert mob_tight == {n: 0 for n in diamond.operations}

    def test_multicycle_latency(self):
        b = CDFGBuilder()
        x = b.input("x")
        m = b.op("m", OpType.MUL, x, latency=3)
        b.op("a", OpType.ADD, m)
        g = b.build()
        assert critical_path_length(g) == 4
        asap = asap_schedule(g)
        assert asap["a"] == 3

    def test_makespan_empty(self):
        from repro.cdfg.graph import CDFG

        assert makespan(CDFG(), {}) == 0

    def test_temporal_edges_tighten_windows(self, two_independent_pairs):
        g = two_independent_pairs
        before = scheduling_windows(g, 4)
        g.add_temporal_edge("a2", "b1")
        after = scheduling_windows(g, 4)
        assert after["b1"][0] > before["b1"][0]
        assert after["a2"][1] < before["a2"][1]


class TestWindowsOverlap:
    def test_identical_windows(self):
        assert windows_overlap((0, 2), (0, 2))

    def test_touching_windows(self):
        assert windows_overlap((0, 2), (2, 4))

    def test_disjoint_windows(self):
        assert not windows_overlap((0, 1), (2, 4))
        assert not windows_overlap((2, 4), (0, 1))

    def test_nested_windows(self):
        assert windows_overlap((0, 9), (3, 4))


class TestPaths:
    def test_critical_path_nodes(self, chain5):
        assert critical_path(chain5) == ["x", "n0", "n1", "n2", "n3", "n4"]

    def test_critical_path_length_consistency(self, iir4):
        path = critical_path(iir4)
        # The path's schedulable ops sum to the critical path length.
        total = sum(iir4.latency(n) for n in path)
        assert total == critical_path_length(iir4)

    def test_laxity_on_chain_all_critical(self, chain5):
        lax = laxity(chain5)
        for node in chain5.schedulable_operations:
            assert lax[node] == 5

    def test_laxity_iir(self, iir4):
        lax = laxity(iir4)
        assert lax["A1"] == 6  # on a longest path
        assert lax["C4"] == 3  # C4 -> A4 -> A9
        assert lax["C2"] == 5  # C2 -> A2 -> A3 -> A4 -> A9

    def test_slack_complements_laxity(self, iir4):
        lax = laxity(iir4)
        slk = slack(iir4)
        c = critical_path_length(iir4)
        for node in iir4.operations:
            assert lax[node] + slk[node] == c

    def test_levels_from_root_chain(self, chain5):
        levels = levels_from_root(chain5, "n4")
        assert levels == {"n4": 0, "n3": 1, "n2": 2, "n1": 3, "n0": 4, "x": 5}

    def test_levels_from_root_takes_longest_path(self):
        # x feeds both a short and a long path into the root.
        b = CDFGBuilder()
        x = b.input("x")
        m1 = b.const_mul(x, "m1")
        m2 = b.const_mul(m1, "m2")
        b.op("root", OpType.ADD, m2, x)
        g = b.build()
        levels = levels_from_root(g, "root")
        assert levels["x"] == 3  # via m1, m2 — not the direct edge

    def test_levels_only_fanin(self, iir4):
        levels = levels_from_root(iir4, "A4")
        assert "A9" not in levels  # A9 is downstream of A4
        assert "C7" not in levels  # other biquad

    def test_levels_unknown_root(self, iir4):
        with pytest.raises(UnknownNodeError):
            levels_from_root(iir4, "ghost")


@given(st.integers(2, 60), st.integers(0, 5000), st.integers(0, 6))
@settings(max_examples=30, deadline=None)
def test_window_invariants_property(num_ops, seed, extra):
    g = random_layered_cdfg(num_ops, seed)
    c = critical_path_length(g)
    windows = scheduling_windows(g, c + extra)
    asap = asap_schedule(g)
    for node, (lo, hi) in windows.items():
        assert lo == asap[node]
        assert lo <= hi
        assert hi <= c + extra
    # Laxity never exceeds the critical path.
    for node, lax in laxity(g).items():
        assert 0 <= lax <= c
