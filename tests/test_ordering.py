"""Canonical node identification: criteria C1–C3, rename invariance."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.ops import OpType
from repro.core.ordering import (
    criterion_c2,
    criterion_c3,
    fanin_tree_within,
    order_nodes,
    structural_hashes,
)
from repro.errors import WatermarkError


def asymmetric() -> "CDFG":  # noqa: F821 - test helper
    # root consumes a deep chain and a shallow mul: no symmetry.
    b = CDFGBuilder("asym")
    x = b.input("x")
    y = b.input("y")
    c1 = b.const_mul(x, "c1")
    a1 = b.add(c1, x, "a1")
    m1 = b.mul(x, y, "m1")
    b.add(a1, m1, "root")
    return b.build()


class TestCriteria:
    def test_fanin_tree_within_clips(self, iir4):
        universe = {"A9", "A4", "A8"}
        tree = fanin_tree_within(iir4, "A9", 3, universe)
        assert tree == {"A9", "A4", "A8"}

    def test_c2_grows_with_distance(self, iir4):
        universe = set(iir4.schedulable_operations)
        k1 = criterion_c2(iir4, "A9", 1, universe)
        k2 = criterion_c2(iir4, "A9", 2, universe)
        assert k1 < k2

    def test_c2_known_values(self, iir4):
        universe = set(iir4.schedulable_operations)
        assert criterion_c2(iir4, "A9", 1, universe) == 3  # A9, A4, A8

    def test_c3_uses_functionality_ids(self, iir4):
        universe = set(iir4.schedulable_operations)
        # A9's distance-1 fanin tree is {A9, A4, A8}: 3 additions = 3.
        assert criterion_c3(iir4, "A9", 1, universe) == 3
        # Distance 2 adds A3, A7 (adds) and C4, C8 (const-muls, id 4).
        assert criterion_c3(iir4, "A9", 2, universe) == 3 + 2 * 1 + 2 * 4


class TestStructuralHashes:
    def test_rename_invariance(self):
        g = asymmetric()
        renamed = g.renamed(
            {n: f"z{i}" for i, n in enumerate(g.operations)}
        )
        h1 = structural_hashes(g, set(g.operations))
        h2 = structural_hashes(renamed, set(renamed.operations))
        assert sorted(h1.values()) == sorted(h2.values())

    def test_distinguishes_asymmetric_nodes(self):
        g = asymmetric()
        hashes = structural_hashes(g, set(g.operations))
        assert len(set(hashes.values())) == len(hashes)

    def test_symmetric_nodes_collide(self, diamond):
        # a and c are automorphic: identical hashes, by design.
        hashes = structural_hashes(diamond, set(diamond.operations))
        assert hashes["a"] == hashes["c"]


class TestOrderNodes:
    def test_root_must_be_in_universe(self, iir4):
        with pytest.raises(WatermarkError):
            order_nodes(iir4, "A9", ["A4", "A8"])

    def test_universe_must_be_fanin(self, iir4):
        with pytest.raises(WatermarkError):
            order_nodes(iir4, "A4", ["A4", "A9"])  # A9 is downstream

    def test_assigns_all_identifiers(self, iir4):
        cone = sorted(iir4.fanin_tree("A9", 3) & set(iir4.schedulable_operations))
        ordering = order_nodes(iir4, "A9", cone)
        assert sorted(ordering.identifier.values()) == list(range(len(cone)))
        assert set(ordering.nodes) == set(cone)

    def test_node_for_inverse(self, iir4):
        cone = sorted(iir4.fanin_tree("A9", 2) & set(iir4.schedulable_operations))
        ordering = order_nodes(iir4, "A9", cone)
        for node in cone:
            assert ordering.node_for(ordering.identifier[node]) == node
        with pytest.raises(WatermarkError):
            ordering.node_for(999)

    def test_c1_dominates(self, iir4):
        # Levels from A9: A9=0 < A4/A8=1 < A3/A7=2 ... sorting is by
        # descending key, so deeper (higher-level) nodes come first.
        cone = sorted(iir4.fanin_tree("A9", 2) & set(iir4.schedulable_operations))
        ordering = order_nodes(iir4, "A9", cone)
        assert ordering.nodes[-1] == "A9"  # level 0 sorts last

    def test_deterministic(self, iir4):
        cone = sorted(iir4.fanin_tree("A9", 4) & set(iir4.schedulable_operations))
        a = order_nodes(iir4, "A9", cone)
        b = order_nodes(fourth_order_parallel_iir(), "A9", cone)
        assert a.nodes == b.nodes

    def test_rename_invariant_on_asymmetric_graph(self):
        g = asymmetric()
        mapping = {n: f"q{i}" for i, n in enumerate(sorted(g.operations))}
        renamed = g.renamed(mapping)
        sched = [n for n in g.schedulable_operations]
        ordering = order_nodes(g, "root", sched)
        renamed_ordering = order_nodes(
            renamed, mapping["root"], [mapping[n] for n in sched]
        )
        assert tuple(mapping[n] for n in ordering.nodes) == renamed_ordering.nodes
        assert ordering.unambiguous
        assert renamed_ordering.unambiguous

    def test_ambiguity_flag_on_symmetric_graph(self, iir4):
        # The two IIR biquads are automorphic: C1..C3 + hash cannot
        # separate e.g. A4 from A8 below the output adder.
        cone = sorted(iir4.fanin_tree("A9", 4) & set(iir4.schedulable_operations))
        ordering = order_nodes(iir4, "A9", cone)
        assert not ordering.unambiguous
