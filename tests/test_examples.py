"""Every example script must run cleanly end to end."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5  # quickstart plus domain-specific scenarios


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_detects(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "detection:" in out


def test_fingerprinting_traces_leak(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "fingerprinting_demo.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "the leak traces to 'globex'" in out
