"""``localmark verify --suite``: exit codes, reports, and the help table."""

from __future__ import annotations

import json

import pytest

from repro.cli import (
    EXIT_BUDGET_EXCEEDED,
    EXIT_ERROR,
    EXIT_NOT_DETECTED,
    EXIT_OK,
    build_parser,
    main,
)
from repro.verify.report import Divergence


class TestSuiteExitCodes:
    def test_clean_suite_exits_0_and_writes_report(self, tmp_path, capsys):
        report_path = str(tmp_path / "verify.json")
        code = main([
            "verify", "--suite", "fuzz", "--trials", "2", "--seed", "3",
            "--report", report_path,
        ])
        assert code == EXIT_OK == 0
        out = capsys.readouterr().out
        assert "result: CLEAN" in out
        payload = json.loads(open(report_path, encoding="utf-8").read())
        assert payload["clean"] is True
        assert payload["suite"] == "fuzz"
        assert sum(
            oracle["metrics"].get("mutation_steps", 0)
            for oracle in payload["oracles"]
        ) > 0

    def test_divergence_exits_1(self, monkeypatch, tmp_path, capsys):
        import repro.verify.fuzz as fuzz_mod

        planted = Divergence(
            oracle="view_cache", design="d", seed=1, detail="planted"
        )
        monkeypatch.setattr(
            fuzz_mod,
            "oracle_view_cache",
            lambda base_seed, trial, steps=25: ([planted], steps),
        )
        report_path = str(tmp_path / "verify.json")
        code = main([
            "verify", "--suite", "fuzz", "--trials", "1",
            "--report", report_path,
        ])
        assert code == EXIT_NOT_DETECTED == 1
        out = capsys.readouterr().out
        assert "result: DIVERGENT" in out
        assert "planted" in out
        payload = json.loads(open(report_path, encoding="utf-8").read())
        assert payload["clean"] is False
        assert payload["oracles"][0]["divergences"][0]["detail"] == "planted"

    def test_budget_exhaustion_exits_3(self, capsys):
        code = main([
            "verify", "--suite", "all", "--trials", "50",
            "--budget-ms", "0.0001",
        ])
        assert code == EXIT_BUDGET_EXCEEDED == 3
        assert "error:" in capsys.readouterr().err

    def test_bad_usage_exits_2(self, capsys):
        assert main(["verify"]) == EXIT_ERROR == 2
        assert "--suite" in capsys.readouterr().err
        assert main(["verify", "--suite", "fuzz", "--trials", "0"]) == 2

    def test_unknown_suite_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--suite", "bogus"])


class TestHelp:
    def test_epilog_documents_divergence_exit(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "divergence" in out
        assert "verification suite" in out
