"""Operation types: functionality ids, resource classes, latencies."""

from __future__ import annotations

from repro.cdfg.ops import (
    FUNCTIONALITY_TABLE,
    OpType,
    ResourceClass,
    functionality_id,
)


def test_functionality_ids_unique():
    ids = [op.functionality_id for op in OpType]
    assert len(ids) == len(set(ids))


def test_paper_examples():
    # "addition is identified with 1, multiplication with 2, etc."
    assert functionality_id(OpType.ADD) == 1
    assert functionality_id(OpType.MUL) == 2


def test_functionality_table_inverse():
    for op in OpType:
        assert FUNCTIONALITY_TABLE[op.functionality_id] is op


def test_io_ops():
    assert OpType.INPUT.is_io
    assert OpType.OUTPUT.is_io
    assert not OpType.ADD.is_io
    assert not OpType.INPUT.is_schedulable
    assert OpType.ADD.is_schedulable


def test_io_latency_zero():
    assert OpType.INPUT.latency == 0
    assert OpType.OUTPUT.latency == 0


def test_resource_classes():
    assert OpType.ADD.resource_class is ResourceClass.ALU
    assert OpType.MUL.resource_class is ResourceClass.MULTIPLIER
    assert OpType.LOAD.resource_class is ResourceClass.MEMORY
    assert OpType.BRANCH.resource_class is ResourceClass.BRANCH
    assert OpType.INPUT.resource_class is ResourceClass.IO


def test_unit_op_is_alu():
    # The watermark-realization op must look like ordinary ALU code.
    assert OpType.UNIT.resource_class is ResourceClass.ALU
    assert OpType.UNIT.latency == 1


def test_schedulable_ops_have_positive_latency():
    for op in OpType:
        if op.is_schedulable:
            assert op.latency >= 1
