"""Seeded generators: determinism, size/shape guarantees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.generators import (
    backbone_design,
    embed_in_host,
    random_layered_cdfg,
)
from repro.cdfg.io import to_json
from repro.cdfg.ops import OpType
from repro.errors import CDFGError
from repro.timing.windows import critical_path_length


class TestRandomLayered:
    def test_op_count(self):
        g = random_layered_cdfg(50, seed=1)
        assert len(g.schedulable_operations) == 50

    def test_deterministic(self):
        a = random_layered_cdfg(40, seed=7)
        b = random_layered_cdfg(40, seed=7)
        assert to_json(a) == to_json(b)

    def test_seed_changes_graph(self):
        a = random_layered_cdfg(40, seed=7)
        b = random_layered_cdfg(40, seed=8)
        assert to_json(a) != to_json(b)

    def test_validates(self):
        random_layered_cdfg(100, seed=3).validate()

    def test_every_op_has_an_operand(self):
        g = random_layered_cdfg(60, seed=5)
        for node in g.schedulable_operations:
            assert g.data_predecessors(node), f"{node} has no operand"

    def test_zero_ops_rejected(self):
        with pytest.raises(CDFGError):
            random_layered_cdfg(0, seed=1)

    def test_single_op(self):
        g = random_layered_cdfg(1, seed=1)
        assert len(g.schedulable_operations) == 1

    def test_custom_inputs_and_layers(self):
        g = random_layered_cdfg(30, seed=2, num_inputs=5, num_layers=6)
        assert len(g.primary_inputs) == 5

    @given(st.integers(1, 120), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_size_property(self, num_ops, seed):
        g = random_layered_cdfg(num_ops, seed)
        assert len(g.schedulable_operations) == num_ops
        g.validate()


class TestBackboneDesign:
    def test_exact_critical_path_and_values(self):
        g = backbone_design("d", num_values=40, critical_path=12, seed=1)
        assert critical_path_length(g) == 12
        assert g.num_variables == 40

    def test_deterministic(self):
        a = backbone_design("d", 35, 10, seed=4)
        b = backbone_design("d", 35, 10, seed=4)
        assert to_json(a) == to_json(b)

    def test_minimum_feasible(self):
        g = backbone_design("d", num_values=6, critical_path=5, seed=1)
        assert critical_path_length(g) == 5

    def test_infeasible_rejected(self):
        with pytest.raises(CDFGError):
            backbone_design("d", num_values=5, critical_path=5, seed=1)
        with pytest.raises(CDFGError):
            backbone_design("d", num_values=5, critical_path=0, seed=1)

    def test_op_cycle_respected(self):
        g = backbone_design(
            "d", 20, 6, seed=2, op_cycle=(OpType.MUL, OpType.SUB)
        )
        assert g.op("b0") is OpType.MUL
        assert g.op("b1") is OpType.SUB

    def test_has_output(self):
        g = backbone_design("d", 25, 8, seed=3)
        assert "y" in g
        assert g.op("y") is OpType.OUTPUT

    @given(
        st.integers(2, 40),
        st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_cp_and_values(self, critical_path, seed):
        num_values = critical_path + 1 + (seed % 20)
        g = backbone_design("p", num_values, critical_path, seed)
        assert critical_path_length(g) == critical_path
        assert g.num_variables == num_values


class TestEmbedInHost:
    def test_core_preserved(self):
        core = backbone_design("core", 20, 6, seed=1)
        merged = embed_in_host(core, host_ops=60, seed=9)
        for node in core.operations:
            assert f"core/{node}" in merged
            assert merged.op(f"core/{node}") is core.op(node)

    def test_core_edges_preserved(self):
        core = backbone_design("core", 20, 6, seed=1)
        merged = embed_in_host(core, host_ops=60, seed=9)
        for src, dst in core.edges():
            assert (f"core/{src}", f"core/{dst}") in merged.edges()

    def test_host_consumes_core_outputs(self):
        core = backbone_design("core", 20, 6, seed=1)
        merged = embed_in_host(core, host_ops=60, seed=9, attach_outputs=2)
        cross = [
            (u, v)
            for u, v in merged.edges()
            if u.startswith("core/") and not v.startswith("core/")
        ]
        assert cross, "host should consume at least one core output"

    def test_core_fanin_untouched(self):
        # The watermark locality lives in the core's fanin structure;
        # embedding must not add edges INTO the core.
        core = backbone_design("core", 20, 6, seed=1)
        merged = embed_in_host(core, host_ops=60, seed=9)
        into_core = [
            (u, v)
            for u, v in merged.edges()
            if v.startswith("core/") and not u.startswith("core/")
        ]
        assert into_core == []

    def test_deterministic(self):
        core = backbone_design("core", 20, 6, seed=1)
        a = embed_in_host(core, 60, seed=9)
        b = embed_in_host(core, 60, seed=9)
        assert to_json(a) == to_json(b)
