"""Periodic (modulo-II) timing kernel: properties, teeth, hygiene.

The modulo kernel claims its steady-state windows are *bit-identical*
to an honest iteration-unrolling recompute at every feasible II.  These
tests pin that claim with hypothesis properties over random cyclic
CDFGs, regression-test the O(1) cycle check for positive-distance
edges, prove the ``periodic_windows`` oracle has teeth with a planted
off-by-one in the ``II*distance`` fold, and check the pickle/cache
hygiene of cyclic designs.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.designs import PERIODIC_SUITE, cyclic_iir_biquad
from repro.cdfg.generators import random_cyclic_cdfg
from repro.errors import CDFGError, CycleError, InfeasibleScheduleError
from repro.timing.unrolled import unrolled_min_ii, unrolled_reference_windows
from repro.timing.windows import (
    periodic_critical_path_length,
    periodic_scheduling_windows,
)
from repro.verify import differential
from repro.verify.differential import periodic_windows_trial


class TestModuloEqualsUnrolled:
    """The tentpole equivalence, as a hypothesis property."""

    @given(st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_windows_match_at_three_iis(self, seed):
        design = random_cyclic_cdfg(24 + seed % 25, seed=seed)
        mii = design.view().min_ii()
        for ii in (mii, mii + 1, mii + 4):
            horizon = periodic_critical_path_length(design, ii) + seed % 3
            kernel = periodic_scheduling_windows(design, horizon, ii)
            reference = unrolled_reference_windows(design, horizon, ii)
            assert kernel == reference

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_min_ii_matches_linear_scan(self, seed):
        design = random_cyclic_cdfg(20 + seed % 12, seed=seed)
        assert design.view().min_ii() == unrolled_min_ii(design)

    def test_suite_designs_match(self):
        for spec in PERIODIC_SUITE:
            design = spec.factory()
            mii = design.view().min_ii()
            horizon = periodic_critical_path_length(design, mii)
            assert periodic_scheduling_windows(
                design, horizon, mii
            ) == unrolled_reference_windows(design, horizon, mii)

    def test_below_min_ii_both_refuse(self):
        design = cyclic_iir_biquad()
        mii = design.view().min_ii()
        assert mii == 3
        horizon = periodic_critical_path_length(design, mii) + 4
        with pytest.raises(InfeasibleScheduleError):
            periodic_scheduling_windows(design, horizon, mii - 1)
        with pytest.raises(InfeasibleScheduleError):
            unrolled_reference_windows(design, horizon, mii - 1)


class TestCycleCheck:
    """Positive-distance edges skip the DFS; distance-0 stays guarded."""

    def _chain(self):
        b = CDFGBuilder("chain")
        x = b.input("x")
        a = b.const_mul(x, "a")
        c = b.const_mul(a, "c")
        b.output(c, "y")
        return b.build()

    def test_distance0_cycle_still_raises(self):
        g = self._chain()
        with pytest.raises(CycleError):
            g.add_data_edge("c", "a")

    def test_distance0_self_loop_raises(self):
        g = self._chain()
        with pytest.raises(CDFGError):
            g.add_data_edge("a", "a")

    def test_distance1_self_loop_accepted(self):
        g = self._chain()
        g.add_data_edge("a", "a", distance=1)
        g.validate()
        assert g.has_back_edges
        assert g.view().min_ii() == 1

    def test_positive_distance_back_edge_accepted(self):
        g = self._chain()
        g.add_data_edge("c", "a", distance=2)
        g.validate()
        assert ("c", "a", 2) in g.back_edges
        # cycle a -> c -> a: 2 unit latencies over distance 2 => MII 1
        assert g.view().min_ii() == 1

    def test_acyclic_fast_path_unchanged(self):
        # Forward distance-0 edges still pass, duplicates still raise,
        # and a graph that never saw a positive distance stays acyclic
        # through the plain DFS check.
        g = self._chain()
        g.add_control_edge("x", "c")
        with pytest.raises(CDFGError):
            g.add_data_edge("a", "c")  # duplicate pair
        assert not g.has_back_edges
        g.validate()

    def test_distance0_cycle_raises_even_when_cyclic(self):
        # The skeleton DAG guard holds after back edges exist.
        g = self._chain()
        g.add_data_edge("c", "a", distance=1)
        with pytest.raises(CycleError):
            g.add_control_edge("c", "x")


class TestOracle:
    def test_trials_clean(self):
        for trial in range(10):
            seed = differential.derive_seed(7, trial, "periodic")
            assert periodic_windows_trial(seed) == []

    def test_teeth_off_by_one_distance(self, monkeypatch):
        # Plant an off-by-one into the kernel side of the oracle only:
        # every back edge folds as II*(d+1) instead of II*d.  The
        # unrolled reference is untouched, so the oracle must notice.
        def buggy_kernel_windows(design, horizon, ii):
            copy = design.copy()
            view = copy.view()
            succs, preds = view._back_adj()

            def skew(adj):
                return {
                    i: [(j, d + 1) for j, d in pairs]
                    for i, pairs in adj.items()
                }

            # Overwrite the memoized adjacency the modulo sweeps fold.
            view._back_succs = skew(succs)
            view._back_preds = skew(preds)
            return periodic_scheduling_windows(copy, horizon, ii)

        monkeypatch.setattr(
            differential, "periodic_scheduling_windows", buggy_kernel_windows
        )
        divergences = []
        for trial in range(10):
            seed = differential.derive_seed(7, trial, "periodic")
            try:
                divergences += periodic_windows_trial(seed)
            except InfeasibleScheduleError:
                # Also teeth: the skewed fold can push a feasible II
                # into (apparent) infeasibility on the kernel side.
                divergences.append("kernel-side infeasibility")
        assert divergences, "planted II*distance off-by-one went unnoticed"


class TestPickleHygiene:
    """Periodic caches are dropped on pickle and rebuilt identically."""

    def test_roundtrip_drops_and_rebuilds_caches(self):
        design = cyclic_iir_biquad()
        mii = design.view().min_ii()
        horizon = periodic_critical_path_length(design, mii)
        before = periodic_scheduling_windows(design, horizon, mii)
        # Populate every lazy cache: the view's modulo memos and the
        # graph's back-edge memo.
        assert design.view()._modulo_asap_memo
        assert design.has_back_edges
        assert design._periodic_cache is not None

        state = design.__getstate__()
        assert state["_view"] is None
        assert state["_periodic_cache"] is None
        assert "_rtl_names" not in state

        clone = pickle.loads(pickle.dumps(design))
        assert clone._view is None
        assert clone._periodic_cache is None
        # Rebuilt caches reproduce the exact same analysis results.
        assert clone.view().min_ii() == mii
        assert clone.view().back_edges == design.view().back_edges
        assert periodic_scheduling_windows(clone, horizon, mii) == before

    def test_mutation_invalidates_periodic_cache(self):
        design = cyclic_iir_biquad()
        edges_before = design.back_edges
        design.add_data_edge("Ay", "Cb0", distance=3)
        assert len(design.back_edges) == len(edges_before) + 1
        assert ("Ay", "Cb0", 3) in design.back_edges
