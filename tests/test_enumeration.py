"""Exhaustive schedule enumeration: hand-verified counts, ψ ratios."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.ops import OpType
from repro.scheduling.enumeration import (
    EnumerationLimitError,
    count_schedules,
    count_schedules_satisfying,
    enumerate_as_schedules,
    iter_schedules,
    pairwise_distances,
    pairwise_psi,
)
from repro.timing.windows import critical_path_length


def test_chain_has_single_schedule(chain5):
    assert count_schedules(chain5, 5) == 1


def test_chain_with_one_slack_step(chain5):
    # 5 ops in 6 steps: the chain slides as a block or leaves one gap —
    # choose which of the 6 "slots" is empty: C(6,1) = 6 placements.
    assert count_schedules(chain5, 6) == 6


def test_two_independent_ops_all_orders():
    b = CDFGBuilder()
    x = b.input("x")
    b.const_mul(x, "a")
    b.const_mul(x, "c")
    g = b.build()
    # Each op picks a step in {0,1}: 4 assignments.
    assert count_schedules(g, 2) == 4


def test_diamond_count(diamond):
    # a and c in {0,1}, out >= max(a,c)+1, out <= 2.
    # (a,c) = (0,0): out in {1,2} -> 2;  (0,1),(1,0),(1,1): out=2 -> 3.
    assert count_schedules(diamond, 3) == 5


def test_subset_enumeration(diamond):
    # Enumerate only {a, c}: windows are (0,1) each -> 4 assignments.
    assert count_schedules(diamond, 3, nodes=["a", "c"]) == 4


def test_transitive_constraint_through_excluded_node():
    # x -> p -> q -> r; enumerate {p, r} only: r >= p + 2 must hold.
    b = CDFGBuilder()
    x = b.input("x")
    p = b.const_mul(x, "p")
    q = b.const_mul(p, "q")
    b.const_mul(q, "r")
    g = b.build()
    # horizon 4: p in {0,1}, r in {2,3}, r - p >= 2.
    # (0,2),(0,3),(1,3) -> 3.
    assert count_schedules(g, 4, nodes=["p", "r"]) == 3


def test_pairwise_distances():
    b = CDFGBuilder()
    x = b.input("x")
    p = b.const_mul(x, "p")
    q = b.const_mul(p, "q")
    b.const_mul(q, "r")
    g = b.build()
    d = pairwise_distances(g, ["p", "r"])
    assert d[("p", "r")] == 2
    assert ("r", "p") not in d


def test_count_satisfying_order(two_independent_pairs):
    g = two_independent_pairs
    nodes = ["a1", "a2", "b1", "b2"]
    total = count_schedules(g, 3, nodes=nodes)
    before = count_schedules_satisfying(
        g, 3, [("a1", "b1")], nodes=nodes
    )
    after = count_schedules_satisfying(g, 3, [("b1", "a1")], nodes=nodes)
    ties = total - before - after
    assert before == after  # symmetric graph
    assert ties > 0  # same-step assignments satisfy neither
    assert before + after + ties == total


def test_psi_matches_counts(two_independent_pairs):
    g = two_independent_pairs
    nodes = ["a1", "a2", "b1", "b2"]
    psi_w, psi_n = pairwise_psi(g, 3, "a1", "b1", nodes=nodes)
    assert psi_n == count_schedules(g, 3, nodes=nodes)
    assert psi_w == count_schedules_satisfying(
        g, 3, [("a1", "b1")], nodes=nodes
    )
    assert 0 < psi_w < psi_n


def test_temporal_edges_reduce_count(iir4):
    c = critical_path_length(iir4)
    base = count_schedules(iir4, c)
    marked = iir4.copy()
    marked.add_temporal_edge("C6", "C3")
    constrained = count_schedules(marked, c)
    assert constrained < base
    # The constrained count equals the satisfying-count on the original.
    assert constrained == count_schedules_satisfying(
        iir4, c, [("C6", "C3")]
    )


def test_iir_count_is_stable(iir4):
    # Regression pin: 17 movable ops at C=6 admit exactly 576 schedules.
    assert count_schedules(iir4, critical_path_length(iir4)) == 576


def test_enumerate_as_schedules_are_valid(diamond):
    schedules = enumerate_as_schedules(diamond, 3)
    assert len(schedules) == 5
    for schedule in schedules:
        # IO nodes excluded from enumeration; fill them for verify.
        schedule.start_times.setdefault("x", 0)
        schedule.verify(diamond, horizon=3)


def test_enumeration_limit(iir4):
    with pytest.raises(EnumerationLimitError):
        count_schedules(iir4, critical_path_length(iir4) + 3, limit=100)


def test_iter_schedules_yields_dicts(diamond):
    first = next(iter_schedules(diamond, 3))
    assert set(first) == {"a", "c", "out"}
