"""Shared fixtures: canonical designs, signatures, small graphs.

Also registers the hypothesis test profiles: ``dev`` (the default —
fast, few examples, suited to the edit/test loop) and ``ci`` (more
examples, no deadline so a cold-cache first run can't flake).  Select
one with ``HYPOTHESIS_PROFILE=ci pytest ...``; CI sets it globally.
"""

from __future__ import annotations

import os

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType
from repro.crypto.signature import AuthorSignature

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    settings = None

if settings is not None:
    settings.register_profile("dev", max_examples=25)
    settings.register_profile("ci", max_examples=200, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def iir4() -> CDFG:
    """The paper's motivational design."""
    return fourth_order_parallel_iir()


@pytest.fixture
def alice() -> AuthorSignature:
    return AuthorSignature("alice-designs-inc")


@pytest.fixture
def mallory() -> AuthorSignature:
    return AuthorSignature("mallory-the-adversary")


@pytest.fixture
def diamond() -> CDFG:
    """Four-node diamond: in -> (a, b) -> out-add.

    The smallest graph with real scheduling freedom.
    """
    b = CDFGBuilder("diamond")
    x = b.input("x")
    a = b.const_mul(x, "a")
    c = b.const_mul(x, "c")
    b.add(a, c, "out")
    return b.build()


@pytest.fixture
def chain5() -> CDFG:
    """A pure 5-op chain: zero mobility everywhere."""
    b = CDFGBuilder("chain5")
    current = b.input("x")
    for index in range(5):
        current = b.op(f"n{index}", OpType.ADD, current)
    return b.build()


@pytest.fixture
def two_independent_pairs() -> CDFG:
    """Two independent 2-op chains; used for window/overlap tests."""
    b = CDFGBuilder("pairs")
    x = b.input("x")
    y = b.input("y")
    a1 = b.const_mul(x, "a1")
    b.op("a2", OpType.ADD, a1)
    b1 = b.const_mul(y, "b1")
    b.op("b2", OpType.ADD, b1)
    return b.build()
