"""PerfRegistry lifecycle: snapshots, deltas, and CLI reset isolation.

Regression coverage for the process-wide ``PERF`` singleton: counters
from one ``cli.main`` invocation must never leak into the next one in
the same process (back-to-back service jobs, tests calling ``main``
twice), and long-lived engines must be able to report what happened
since their start without resetting the shared registry.
"""

from __future__ import annotations

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import save
from repro.cli import main
from repro.util.perf import PERF, PerfRegistry


def test_delta_reports_only_movement_since_baseline():
    registry = PerfRegistry()
    registry.add("a", 2)
    with registry.phase("p"):
        pass
    baseline = registry.snapshot()
    registry.add("a", 3)
    registry.add("b")
    delta = registry.delta(baseline)
    assert delta["counters"] == {"a": 3, "b": 1}
    assert "p" not in delta["phase_calls"]  # did not move since baseline
    with registry.phase("p"):
        pass
    assert registry.delta(baseline)["phase_calls"] == {"p": 1}


def test_reset_returns_the_discarded_snapshot():
    registry = PerfRegistry()
    registry.add("x", 5)
    snap = registry.reset()
    assert snap["counters"] == {"x": 5}
    assert registry.counters == {}
    assert registry.reset()["counters"] == {}


def test_cli_invocations_do_not_leak_perf_state(tmp_path):
    """``main()`` resets PERF per invocation: the registry reflects the
    last command only, not an accumulation across calls."""
    design = tmp_path / "design.json"
    save(fourth_order_parallel_iir(), design)
    argv = [
        "embed",
        "--design", str(design),
        "--author", "Perf Author",
        "--out", str(tmp_path / "marked.json"),
        "--record", str(tmp_path / "wm.json"),
        "--k", "2", "--tau", "4",
    ]
    assert main(argv) == 0
    first = PERF.snapshot()
    assert first["phase_calls"].get("embed") == 1
    assert main(argv) == 0
    second = PERF.snapshot()
    # Leak would show as 2 embed phases after the second invocation.
    assert second["phase_calls"].get("embed") == 1
    assert second["counters"].get("embed.edges_added") == first[
        "counters"
    ].get("embed.edges_added")
