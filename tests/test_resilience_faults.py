"""Fault injection: determinism, reports, DAG preservation, composition."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.resilience.faults import (
    FaultInjectionError,
    apply_faults,
    delete_edges,
    drop_nodes,
    duplicate_nodes,
    flip_record_bits,
    jitter_schedule,
    retype_ops,
    rewire_edges,
)
from repro.scheduling.list_scheduler import list_schedule


@pytest.fixture
def design():
    return random_layered_cdfg(60, seed=7)


ALL_CDFG_FAULTS = [
    drop_nodes,
    duplicate_nodes,
    delete_edges,
    rewire_edges,
    retype_ops,
]


class TestDeterminism:
    @pytest.mark.parametrize("fault", ALL_CDFG_FAULTS)
    def test_same_seed_identical_graph(self, design, fault):
        a, report_a = fault(design, seed=123, rate=0.2)
        b, report_b = fault(design, seed=123, rate=0.2)
        assert report_a == report_b
        assert sorted(a.operations) == sorted(b.operations)
        assert sorted(a.edges()) == sorted(b.edges())
        assert {n: a.op(n) for n in a.operations} == {
            n: b.op(n) for n in b.operations
        }

    @pytest.mark.parametrize("fault", ALL_CDFG_FAULTS)
    def test_different_seed_differs(self, design, fault):
        _, report_a = fault(design, seed=1, rate=0.2)
        _, report_b = fault(design, seed=2, rate=0.2)
        assert report_a.details != report_b.details

    def test_jitter_deterministic(self, design):
        schedule = list_schedule(design)
        a, _ = jitter_schedule(schedule, seed=5, rate=0.3)
        b, _ = jitter_schedule(schedule, seed=5, rate=0.3)
        assert a.start_times == b.start_times

    def test_original_untouched(self, design):
        before_edges = sorted(design.edges())
        before_nodes = sorted(design.operations)
        for fault in ALL_CDFG_FAULTS:
            fault(design, seed=9, rate=0.3)
        assert sorted(design.edges()) == before_edges
        assert sorted(design.operations) == before_nodes


class TestReportsAndInvariants:
    @pytest.mark.parametrize("fault", ALL_CDFG_FAULTS)
    def test_still_a_dag_with_report(self, design, fault):
        corrupted, report = fault(design, seed=3, rate=0.25)
        corrupted.validate()  # must stay a legal CDFG
        assert report.applied == len(report.details)
        assert report.kind

    def test_rate_scales_applied(self, design):
        _, low = delete_edges(design, seed=4, rate=0.05)
        _, high = delete_edges(design, seed=4, rate=0.5)
        assert high.applied > low.applied

    def test_count_form(self, design):
        corrupted, report = drop_nodes(design, seed=1, count=3)
        assert report.applied == 3
        assert len(corrupted.schedulable_operations) == (
            len(design.schedulable_operations) - 3
        )

    def test_rate_and_count_mutually_exclusive(self, design):
        with pytest.raises(FaultInjectionError):
            drop_nodes(design, seed=1, rate=0.1, count=2)
        with pytest.raises(FaultInjectionError):
            drop_nodes(design, seed=1)

    def test_duplicate_adds_parallel_copies(self, design):
        corrupted, report = duplicate_nodes(design, seed=6, count=4)
        assert corrupted.num_operations == design.num_operations + 4
        assert report.applied == 4

    def test_retype_changes_ops_not_latency(self, design):
        corrupted, report = retype_ops(design, seed=8, count=5)
        changed = 0
        for node in design.schedulable_operations:
            assert corrupted.latency(node) == design.latency(node)
            if corrupted.op(node) is not design.op(node):
                changed += 1
        assert changed == report.applied == 5


class TestRecordFaults:
    def test_flip_record_bits(self, alice, iir4):
        from repro.core.scheduling_wm import SchedulingWatermarker

        _, watermark = SchedulingWatermarker(alice).embed(iir4)
        corrupted, report = flip_record_bits(watermark, seed=2, count=2)
        assert report.applied == 2
        assert (
            corrupted.temporal_edge_ids != watermark.temporal_edge_ids
            or corrupted.temporal_edges != watermark.temporal_edges
        )
        # Untouched channels survive intact.
        assert corrupted.root == watermark.root
        assert corrupted.cone == watermark.cone

    def test_flip_is_deterministic(self, alice, iir4):
        from repro.core.scheduling_wm import SchedulingWatermarker

        _, watermark = SchedulingWatermarker(alice).embed(iir4)
        a, _ = flip_record_bits(watermark, seed=11, count=3)
        b, _ = flip_record_bits(watermark, seed=11, count=3)
        assert a == b


class TestComposition:
    def test_apply_faults_pipeline(self, design):
        specs = [
            {"kind": "delete_edges", "rate": 0.1},
            {"kind": "drop_nodes", "rate": 0.1},
            {"kind": "retype_ops", "rate": 0.1},
        ]
        corrupted, reports = apply_faults(design, specs, seed=42)
        corrupted.validate()
        assert [r.kind for r in reports] == [
            "delete_edges", "drop_nodes", "retype_ops",
        ]
        again, reports2 = apply_faults(design, specs, seed=42)
        assert sorted(again.edges()) == sorted(corrupted.edges())
        assert reports == reports2

    def test_unknown_kind_rejected(self, design):
        with pytest.raises(FaultInjectionError):
            apply_faults(design, [{"kind": "melt"}], seed=0)
