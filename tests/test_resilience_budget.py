"""Budget enforcement across the search surfaces, incl. the acceptance
criterion: a 200 ms budget on a dense 40-op CDFG terminates within 2×
the deadline with BudgetExceededError — never InfeasibleScheduleError.
"""

from __future__ import annotations

import time

import pytest

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType, ResourceClass
from repro.errors import BudgetExceededError, InfeasibleScheduleError
from repro.resilience.budget import Budget
from repro.resilience.pipeline import robust_schedule
from repro.scheduling.exact import exact_schedule
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.resources import UNLIMITED, ResourceSet


def dense_cdfg(num_ops: int = 40) -> CDFG:
    """Independent ops: the search tree is ~horizon**num_ops wide."""
    g = CDFG("dense")
    g.add_operation("x", OpType.INPUT)
    for i in range(num_ops):
        g.add_operation(f"a{i}", OpType.ADD)
        g.add_data_edge("x", f"a{i}")
    return g


class TestBudgetPrimitive:
    def test_node_cap_trips(self):
        budget = Budget(node_limit=10)
        for _ in range(10):
            budget.charge()
        with pytest.raises(BudgetExceededError, match="node budget"):
            budget.charge()

    def test_wall_deadline_trips(self):
        budget = Budget(wall_ms=1.0, check_stride=1)
        time.sleep(0.01)
        with pytest.raises(BudgetExceededError, match="deadline"):
            budget.charge()

    def test_stride_defers_deadline_sampling(self):
        budget = Budget(wall_ms=1.0, check_stride=1000)
        time.sleep(0.01)
        # 999 charges stay under the stride: the deadline is never
        # sampled even though it has long passed.
        for _ in range(999):
            budget.charge()
        assert budget.exhausted
        with pytest.raises(BudgetExceededError):
            budget.check_deadline()

    def test_restart_resets(self):
        budget = Budget(node_limit=5)
        for _ in range(5):
            budget.charge()
        budget.restart()
        assert budget.nodes == 0
        budget.charge(5)  # does not raise: cap is > again afterwards

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(wall_ms=0)
        with pytest.raises(ValueError):
            Budget(node_limit=0)
        with pytest.raises(ValueError):
            Budget(check_stride=0)

    def test_remaining_ms(self):
        assert Budget().remaining_ms is None
        budget = Budget(wall_ms=10_000)
        assert 0 < budget.remaining_ms <= 10_000


class TestAcceptanceCriterion:
    """ISSUE acceptance: dense 40-op CDFG, 200 ms budget."""

    def test_exact_terminates_within_twice_budget(self):
        g = dense_cdfg(40)
        # 13 steps x 3 ALUs = 39 slots < 40 ops: infeasible, but the
        # proof would enumerate ~13**40 placements. Only the budget
        # can end this search.
        resources = ResourceSet({ResourceClass.ALU: 3})
        budget = Budget(wall_ms=200.0)
        started = time.monotonic()
        with pytest.raises(BudgetExceededError):
            exact_schedule(
                g, horizon=13, resources=resources,
                node_limit=10**9, budget=budget,
            )
        elapsed_ms = (time.monotonic() - started) * 1000.0
        assert elapsed_ms < 2 * 200.0

    def test_fallback_still_returns_legal_schedule(self):
        g = dense_cdfg(40)
        resources = ResourceSet({ResourceClass.ALU: 3})
        result = robust_schedule(
            g, horizon=13, resources=resources, budget=Budget(wall_ms=200.0)
        )
        assert result.degraded
        assert result.scheduler in ("force-directed", "list")
        assert not result.attempts[0].succeeded
        assert "BudgetExceededError" in result.attempts[0].error
        result.schedule.verify(g, resources=resources)  # legal

    def test_budget_error_is_not_infeasibility(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            exact_schedule(
                dense_cdfg(40),
                horizon=13,
                resources=ResourceSet({ResourceClass.ALU: 3}),
                node_limit=10**9,
                budget=Budget(wall_ms=50.0),
            )
        assert not isinstance(excinfo.value, InfeasibleScheduleError)


class TestBudgetedSurfaces:
    def test_force_directed_charges(self, iir4):
        with pytest.raises(BudgetExceededError):
            force_directed_schedule(iir4, horizon=8, budget=Budget(node_limit=3))

    def test_select_domain_charges(self, iir4, alice):
        from repro.core.domain import DomainParams, select_root_and_domain
        from repro.crypto.bitstream import BitStream

        with pytest.raises(BudgetExceededError):
            select_root_and_domain(
                iir4,
                BitStream(alice, "t"),
                DomainParams(),
                budget=Budget(node_limit=1),
            )

    def test_shared_budget_drains_across_stages(self, iir4):
        budget = Budget(node_limit=100_000)
        exact_schedule(iir4, horizon=10, resources=UNLIMITED, budget=budget)
        spent = budget.nodes
        assert spent > 0
        force_directed_schedule(iir4, horizon=10, budget=budget)
        assert budget.nodes > spent  # same pool, still draining

    def test_unbudgeted_calls_unchanged(self, iir4):
        a = exact_schedule(iir4, horizon=10, resources=UNLIMITED)
        b = exact_schedule(
            iir4, horizon=10, resources=UNLIMITED, budget=Budget(wall_ms=60_000)
        )
        assert a.start_times == b.start_times
