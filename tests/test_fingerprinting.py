"""Fingerprinting: per-customer marks and leak tracing."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.core.domain import DomainParams
from repro.core.fingerprinting import Fingerprinter
from repro.core.scheduling_wm import SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import WatermarkError
from repro.scheduling.list_scheduler import list_schedule

PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=5, min_domain_size=8), k=6
)


@pytest.fixture
def vendor():
    return AuthorSignature("vendor-corp")


@pytest.fixture
def master():
    # Deep enough that every derived customer signature finds a locality
    # with unrelated eligible pairs.
    return random_layered_cdfg(150, seed=31, num_layers=25)


@pytest.fixture
def fingerprinter(vendor):
    return Fingerprinter(vendor, PARAMS)


class TestSignatureDerivation:
    def test_per_customer_keys_differ(self, fingerprinter):
        a = fingerprinter.signature_for("acme")
        b = fingerprinter.signature_for("globex")
        assert a.derive_key() != b.derive_key()

    def test_deterministic(self, fingerprinter):
        assert fingerprinter.signature_for("acme") == fingerprinter.signature_for(
            "acme"
        )

    def test_differs_from_vendor_key(self, fingerprinter, vendor):
        assert (
            fingerprinter.signature_for("acme").derive_key()
            != vendor.derive_key()
        )

    def test_empty_customer_rejected(self, fingerprinter):
        with pytest.raises(WatermarkError):
            fingerprinter.signature_for("")


class TestIssueCopies:
    def test_each_copy_carries_its_mark(self, fingerprinter, master):
        copies = fingerprinter.issue_copies(master, ["acme", "globex"])
        assert set(copies) == {"acme", "globex"}
        for customer, (marked, record) in copies.items():
            assert record.customer == customer
            schedule = list_schedule(marked)
            result = fingerprinter.verify_customer(master, schedule, record)
            assert result.detected

    def test_copies_differ(self, fingerprinter, master):
        copies = fingerprinter.issue_copies(master, ["acme", "globex"])
        edges_a = set(copies["acme"][0].temporal_edges)
        edges_b = set(copies["globex"][0].temporal_edges)
        assert edges_a != edges_b

    def test_duplicate_customers_rejected(self, fingerprinter, master):
        with pytest.raises(WatermarkError):
            fingerprinter.issue_copies(master, ["acme", "acme"])


class TestIdentify:
    def test_leaker_ranked_first(self, fingerprinter, master):
        customers = ["acme", "globex", "initech"]
        copies = fingerprinter.issue_copies(master, customers)
        records = [copies[c][1] for c in customers]

        # globex's copy leaks (its schedule surfaces on the market).
        leaked_design, _ = copies["globex"]
        leaked_schedule = list_schedule(leaked_design)

        matches = fingerprinter.identify(master, leaked_schedule, records)
        assert matches[0].customer == "globex"
        assert matches[0].result.detected
        # The leaker's evidence strictly dominates the others'.
        for other in matches[1:]:
            assert (
                other.result.fraction < 1.0
                or other.result.log10_pc > matches[0].result.log10_pc
            )

    def test_identify_is_ranked(self, fingerprinter, master):
        customers = ["a", "b", "c", "d"]
        copies = fingerprinter.issue_copies(master, customers)
        records = [copies[c][1] for c in customers]
        leaked_schedule = list_schedule(copies["c"][0])
        matches = fingerprinter.identify(master, leaked_schedule, records)
        fractions = [m.result.fraction for m in matches]
        assert fractions == sorted(fractions, reverse=True)
