"""Binding, FSM controllers, and the §II reverse-engineering loop."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.ops import OpType, ResourceClass
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.errors import SchedulingError
from repro.rtl import (
    Controller,
    ControllerError,
    bind,
    datapath_summary,
    left_edge_registers,
    recover_schedule,
    recovered_schedule_for,
    synthesize_controller,
    variable_lifetimes,
)
from repro.rtl.binding import Lifetime
from repro.scheduling.list_scheduler import list_schedule
from repro.timing.windows import critical_path_length


class TestLifetimes:
    def test_simple_chain(self, chain5):
        schedule = list_schedule(chain5)
        lifetimes = {
            lt.variable: lt for lt in variable_lifetimes(chain5, schedule)
        }
        # x is born at 0 (latency-0 input) and consumed by n0 at step 0.
        assert lifetimes["x"].birth == 0
        # n0's value is live until n1 starts.
        assert lifetimes["n0"].birth == 1
        assert lifetimes["n0"].death == 2

    def test_output_lives_one_step(self, iir4):
        schedule = list_schedule(iir4)
        lifetimes = {
            lt.variable: lt for lt in variable_lifetimes(iir4, schedule)
        }
        a9 = lifetimes["A9"]
        # A9 feeds only the OUTPUT placeholder at the same step it is born.
        assert a9.death >= a9.birth + 1

    def test_overlap_predicate(self):
        a = Lifetime("a", 0, 3)
        b = Lifetime("b", 2, 5)
        c = Lifetime("c", 3, 4)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)


class TestLeftEdge:
    def test_disjoint_intervals_share_register(self):
        assignment = left_edge_registers(
            [Lifetime("a", 0, 2), Lifetime("b", 2, 4), Lifetime("c", 4, 6)]
        )
        assert len(set(assignment.values())) == 1

    def test_overlapping_intervals_split(self):
        assignment = left_edge_registers(
            [Lifetime("a", 0, 4), Lifetime("b", 1, 5), Lifetime("c", 2, 6)]
        )
        assert len(set(assignment.values())) == 3

    def test_optimal_count_equals_max_overlap(self):
        lifetimes = [
            Lifetime("a", 0, 3),
            Lifetime("b", 1, 4),
            Lifetime("c", 3, 6),
            Lifetime("d", 4, 7),
        ]
        assignment = left_edge_registers(lifetimes)
        assert len(set(assignment.values())) == 2  # max concurrent = 2


class TestBinding:
    def test_binding_verifies(self, iir4):
        schedule = list_schedule(iir4)
        binding = bind(iir4, schedule)
        binding.verify(iir4, schedule)

    def test_units_match_schedule_concurrency(self, iir4):
        schedule = list_schedule(iir4)
        binding = bind(iir4, schedule)
        implied = schedule.implied_units(iir4)
        for cls, count in binding.units_per_class().items():
            assert count == implied[cls]

    def test_registers_positive(self, iir4):
        binding = bind(iir4, list_schedule(iir4))
        assert binding.num_registers >= 1

    def test_verify_catches_unit_conflict(self, diamond):
        schedule = list_schedule(diamond)
        binding = bind(diamond, schedule)
        # Force both const-muls onto one unit at the same step.
        binding.unit_of["a"] = (ResourceClass.MULTIPLIER, 0)
        binding.unit_of["c"] = (ResourceClass.MULTIPLIER, 0)
        if schedule.start("a") == schedule.start("c"):
            with pytest.raises(SchedulingError, match="unit conflict"):
                binding.verify(diamond, schedule)

    def test_verify_catches_register_conflict(self, diamond):
        schedule = list_schedule(diamond)
        binding = bind(diamond, schedule)
        binding.register_of["a"] = 0
        binding.register_of["c"] = 0
        if schedule.start("a") == schedule.start("c"):
            with pytest.raises(SchedulingError, match="register conflict"):
                binding.verify(diamond, schedule)

    def test_random_graphs_bind(self):
        for seed in range(4):
            g = random_layered_cdfg(40, seed=seed)
            schedule = list_schedule(g)
            bind(g, schedule).verify(g, schedule)


class TestController:
    def test_one_word_per_step(self, iir4):
        schedule = list_schedule(iir4)
        controller = synthesize_controller(iir4, schedule)
        assert controller.num_steps == schedule.makespan(iir4)
        assert controller.num_microops == len(iir4.schedulable_operations)

    def test_microops_reference_bound_resources(self, iir4):
        schedule = list_schedule(iir4)
        binding = bind(iir4, schedule)
        controller = synthesize_controller(iir4, schedule, binding)
        for step, word in enumerate(controller.steps):
            for micro in word:
                assert schedule.start(micro.operation) == step
                cls, index = binding.unit_of[micro.operation]
                assert micro.unit == (cls.value, index)

    def test_control_word_bounds(self, iir4):
        controller = synthesize_controller(iir4, list_schedule(iir4))
        with pytest.raises(ControllerError):
            controller.control_word(999)

    def test_datapath_summary(self, iir4):
        schedule = list_schedule(iir4)
        binding = bind(iir4, schedule)
        summary = datapath_summary(binding)
        assert summary["registers"] == binding.num_registers
        assert "units_alu" in summary


class TestRecovery:
    def test_exact_recovery(self, iir4):
        schedule = list_schedule(iir4)
        controller = synthesize_controller(iir4, schedule)
        recovered = recover_schedule(controller)
        for node in iir4.schedulable_operations:
            assert recovered.start(node) == schedule.start(node)

    def test_completed_schedule_verifies(self, iir4):
        schedule = list_schedule(iir4)
        controller = synthesize_controller(iir4, schedule)
        completed = recovered_schedule_for(
            iir4, recover_schedule(controller)
        )
        completed.verify(iir4)

    def test_double_issue_rejected(self):
        from repro.rtl.controller import MicroOp

        duplicated = Controller(
            steps=[
                [MicroOp("a", "ADD", ("alu", 0), (), 0)],
                [MicroOp("a", "ADD", ("alu", 0), (), 0)],
            ]
        )
        with pytest.raises(ControllerError, match="twice"):
            recover_schedule(duplicated)

    def test_empty_controller_rejected(self):
        with pytest.raises(ControllerError):
            recover_schedule(Controller(steps=[[]]))


class TestSection2Loop:
    """The paper's §II story, end to end: the watermark survives
    synthesis into an FSM+datapath and is detected from the recovered
    schedule alone."""

    def test_watermark_detected_from_recovered_schedule(self, alice):
        design = random_layered_cdfg(90, seed=42)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=6
        )
        marker = SchedulingWatermarker(alice, params)
        marked, watermark = marker.embed(design)

        # Synthesis: schedule, bind, emit the FSM; ship the "IC".
        schedule = list_schedule(marked)
        binding = bind(marked, schedule)
        controller = synthesize_controller(marked, schedule, binding)

        # Reverse engineering (the detector's §II step): the control
        # logic yields the schedule; the watermark is then checked on it.
        recovered = recovered_schedule_for(
            design, recover_schedule(controller)
        )
        result = marker.verify(design, recovered, watermark)
        assert result.detected
