"""VLIW machine, compiler, and synthetic applications."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.ops import OpType, ResourceClass
from repro.errors import VLIWError
from repro.vliw.apps import APP_SPECS, all_apps, app_by_name, build_app
from repro.vliw.compiler import (
    compile_block,
    overhead_percent,
    realize_watermark_as_code,
)
from repro.vliw.machine import VLIWMachine, machine_summary, paper_machine


class TestMachine:
    def test_paper_configuration(self):
        machine = paper_machine()
        assert machine.issue_width == 4
        assert machine.unit_count(ResourceClass.BRANCH) == 2
        assert machine.unit_count(ResourceClass.MEMORY) == 2
        assert machine.unit_count(ResourceClass.ALU) == 4

    def test_latencies(self):
        machine = paper_machine()
        assert machine.latency(OpType.ADD) == 1
        assert machine.latency(OpType.MUL) == 3
        assert machine.latency(OpType.LOAD) == 2
        assert machine.latency(OpType.INPUT) == 0

    def test_validation(self):
        with pytest.raises(VLIWError):
            VLIWMachine(issue_width=0)
        with pytest.raises(VLIWError):
            VLIWMachine(units={ResourceClass.ALU: 0})

    def test_unknown_class_raises(self):
        machine = VLIWMachine(units={ResourceClass.ALU: 2})
        with pytest.raises(VLIWError):
            machine.unit_count(ResourceClass.MEMORY)

    def test_summary(self):
        summary = machine_summary(paper_machine())
        assert summary["issue_width"] == 4
        assert summary["units_branch"] == 2


class TestCompiler:
    def test_serial_chain_cycles(self):
        b = CDFGBuilder()
        current = b.input("x")
        for i in range(4):
            current = b.op(f"a{i}", OpType.ADD, current)
        g = b.build()
        result = compile_block(g, paper_machine())
        assert result.cycles == 4  # fully serial adds

    def test_parallel_ops_share_cycle(self):
        b = CDFGBuilder()
        x = b.input("x")
        for i in range(4):
            b.op(f"a{i}", OpType.ADD, x)
        g = b.build()
        result = compile_block(g, paper_machine())
        assert result.cycles == 1  # 4 adds fit the 4-wide issue

    def test_issue_width_limits(self):
        b = CDFGBuilder()
        x = b.input("x")
        for i in range(8):
            b.op(f"a{i}", OpType.ADD, x)
        g = b.build()
        result = compile_block(g, paper_machine())
        assert result.cycles == 2  # 8 adds over a 4-wide machine

    def test_unit_limits(self):
        b = CDFGBuilder()
        x = b.input("x")
        for i in range(4):
            b.op(f"l{i}", OpType.LOAD, x)
        g = b.build()
        # 2 memory units, latency-2 loads: pairs at cycles 0 and 2.
        result = compile_block(g, paper_machine())
        assert result.cycles == 4

    def test_multicycle_dependence(self):
        b = CDFGBuilder()
        x = b.input("x")
        m = b.op("m", OpType.MUL, x)
        b.op("a", OpType.ADD, m)
        g = b.build()
        result = compile_block(g, paper_machine())
        assert result.start_cycles["a"] >= 3
        assert result.cycles == 4

    def test_ilp_metric(self):
        b = CDFGBuilder()
        x = b.input("x")
        for i in range(4):
            b.op(f"a{i}", OpType.ADD, x)
        g = b.build()
        result = compile_block(g, paper_machine())
        assert result.ilp == 4.0

    def test_start_cycles_respect_dependences(self):
        app = build_app(APP_SPECS[0])
        result = compile_block(app, paper_machine())
        for src, dst in app.edges():
            machine = paper_machine()
            assert (
                result.start_cycles[dst]
                >= result.start_cycles[src] + machine.latency(app.op(src))
            )


class TestWatermarkRealization:
    def test_unit_ops_inserted(self, iir4):
        realized = realize_watermark_as_code(iir4, [("C6", "C3")])
        assert "__wm_unit_0" in realized
        assert realized.op("__wm_unit_0") is OpType.UNIT
        assert ("C6", "__wm_unit_0") in realized.edges()
        assert ("__wm_unit_0", "C3") in realized.edges()

    def test_temporal_edges_stripped(self, iir4):
        marked = iir4.copy()
        marked.add_temporal_edge("C6", "C3")
        realized = realize_watermark_as_code(marked, [("C6", "C3")])
        assert realized.temporal_edges == []

    def test_compiled_order_enforced(self, iir4):
        realized = realize_watermark_as_code(iir4, [("C6", "C3")])
        result = compile_block(realized, paper_machine())
        assert result.start_cycles["C6"] < result.start_cycles["C3"]

    def test_overhead_small_on_wide_machine(self, iir4):
        base = compile_block(iir4, paper_machine())
        realized = realize_watermark_as_code(
            iir4, [("C6", "C3"), ("C2", "C7")]
        )
        marked = compile_block(realized, paper_machine())
        overhead = overhead_percent(base.cycles, marked.cycles)
        assert 0.0 <= overhead < 50.0

    def test_overhead_percent_validation(self):
        with pytest.raises(VLIWError):
            overhead_percent(0, 10)


class TestApps:
    def test_op_counts_match_table1(self):
        for spec in APP_SPECS:
            app = build_app(spec)
            assert len(app.schedulable_operations) == spec.operations

    def test_eight_apps(self):
        apps = all_apps()
        assert len(apps) == 8
        assert "PGP" in apps

    def test_lookup(self):
        app = app_by_name("GSM")
        assert len(app.schedulable_operations) == 802
        with pytest.raises(KeyError):
            app_by_name("quake3")

    def test_deterministic(self):
        from repro.cdfg.io import to_json

        assert to_json(app_by_name("epic")) == to_json(app_by_name("epic"))

    def test_apps_compile_with_plausible_ilp(self):
        app = app_by_name("D/A Cnv.")
        result = compile_block(app, paper_machine())
        assert 1.0 < result.ilp <= 4.0
