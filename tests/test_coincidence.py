"""Coincidence probability: exact counts, approximations, agreement."""

from __future__ import annotations

import math

import pytest

from repro.core.coincidence import (
    MIN_EDGE_PROBABILITY,
    ExactPc,
    approx_edge_log10,
    approx_log10_pc,
    authorship_from_log10,
    exact_pc,
    format_pc_power,
)
from repro.errors import WatermarkError
from repro.timing.windows import critical_path_length, scheduling_windows


class TestExactPc:
    def test_single_edge_on_iir(self, iir4):
        result = exact_pc(iir4, [("C6", "C3")])
        assert result.without_constraints == 576
        assert 0 < result.with_constraints < 576
        assert math.isclose(
            result.pc, result.with_constraints / 576
        )

    def test_more_edges_smaller_pc(self, iir4):
        one = exact_pc(iir4, [("C6", "C3")])
        two = exact_pc(iir4, [("C6", "C3"), ("C2", "C7")])
        assert two.pc <= one.pc

    def test_no_edges_pc_is_one(self, iir4):
        result = exact_pc(iir4, [])
        assert result.pc == 1.0
        assert result.log10_pc == 0.0

    def test_impossible_constraint(self, iir4):
        # A9 is last; nothing can be scheduled after it at horizon C.
        result = exact_pc(iir4, [("A9", "C1")])
        assert result.with_constraints == 0
        assert result.pc == 0.0
        assert result.log10_pc == float("-inf")

    def test_authorship_proof(self):
        result = ExactPc(with_constraints=15, without_constraints=166)
        assert math.isclose(result.pc, 15 / 166)
        assert math.isclose(result.authorship_proof, 1 - 15 / 166)

    def test_zero_total_raises(self):
        with pytest.raises(WatermarkError):
            ExactPc(0, 0).pc

    def test_subset_enumeration(self, iir4):
        cone = sorted(
            iir4.fanin_tree("A9", 3) & set(iir4.schedulable_operations)
        )
        result = exact_pc(iir4, [("C4", "C8")], nodes=cone)
        assert result.without_constraints > result.with_constraints > 0

    def test_constraint_outside_subset_raises(self, iir4):
        from repro.errors import SchedulingError

        cone = sorted(
            iir4.fanin_tree("A9", 3) & set(iir4.schedulable_operations)
        )
        assert "C6" not in cone  # distance 4 from A9
        with pytest.raises(SchedulingError):
            exact_pc(iir4, [("C6", "C3")], nodes=cone)


class TestApproxPc:
    def test_edge_log10_negative(self, iir4):
        windows = scheduling_windows(iir4, critical_path_length(iir4))
        value = approx_edge_log10(windows, "C6", "C3")
        assert value < 0

    def test_unknown_edge_raises(self, iir4):
        windows = scheduling_windows(iir4, critical_path_length(iir4))
        with pytest.raises(WatermarkError):
            approx_edge_log10(windows, "ghost", "C3")

    def test_impossible_order_floored(self, iir4):
        windows = scheduling_windows(iir4, critical_path_length(iir4))
        value = approx_edge_log10(windows, "A9", "C1")
        assert value == math.log10(MIN_EDGE_PROBABILITY)

    def test_sums_over_edges(self, iir4):
        single = approx_log10_pc(iir4, [("C6", "C3")])
        double = approx_log10_pc(iir4, [("C6", "C3"), ("C2", "C7")])
        assert double < single < 0

    def test_uniform_vs_poisson_models(self, iir4):
        edges = [("C6", "C3")]
        uniform = approx_log10_pc(iir4, edges, model="uniform")
        poisson = approx_log10_pc(iir4, edges, model="poisson")
        assert uniform < 0 and poisson < 0
        assert uniform != poisson

    def test_tracks_exact_within_order_of_magnitude(self, iir4):
        # The Poisson approximation should land within ~1 decade of the
        # exact ratio for single-edge constraints at horizon C.
        for edge in [("C6", "C3"), ("C2", "C7"), ("C4", "C8")]:
            exact = exact_pc(iir4, [edge]).log10_pc
            approx = approx_log10_pc(iir4, [edge], model="uniform")
            assert abs(exact - approx) < 1.0, edge


class TestHelpers:
    def test_authorship_from_log10(self):
        assert authorship_from_log10(-20) == 1.0
        assert math.isclose(authorship_from_log10(-1), 0.9)
        assert authorship_from_log10(0.0) == 0.0

    def test_format_pc_power(self):
        assert format_pc_power(-26.2) == "10^-26"
        assert format_pc_power(float("-inf")) == "0"
