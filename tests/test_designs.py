"""Benchmark designs: the motivational IIR and the Table II suite."""

from __future__ import annotations

import pytest

from repro.cdfg.designs import (
    HYPER_SUITE,
    IIR4_ADDERS,
    IIR4_CONST_MULS,
    fourth_order_parallel_iir,
    hyper_design,
    iir4_biquad_membership,
    long_echo_canceler,
    suite_statistics,
)
from repro.cdfg.ops import OpType
from repro.timing.windows import critical_path_length


class TestIIR4:
    def test_node_census(self, iir4):
        # Exactly the paper's 9 additions and 8 constant multiplications.
        adds = [n for n in iir4.operations if iir4.op(n) is OpType.ADD]
        cmuls = [
            n for n in iir4.operations if iir4.op(n) is OpType.CONST_MUL
        ]
        assert sorted(adds) == sorted(IIR4_ADDERS)
        assert sorted(cmuls) == sorted(IIR4_CONST_MULS)

    def test_inputs(self, iir4):
        assert set(iir4.primary_inputs) == {"x", "s11", "s12", "s21", "s22"}

    def test_validates(self, iir4):
        iir4.validate()

    def test_critical_path(self, iir4):
        # x -> A1 -> A2 -> A3 -> A4 -> A9 is six operations... the input
        # is latency-0, so the chain C1/A1..A9 gives C = 6.
        assert critical_path_length(iir4) == 6

    def test_output_adder_sums_both_sections(self, iir4):
        assert set(iir4.data_predecessors("A9")) == {"A4", "A8"}

    def test_biquads_are_symmetric(self, iir4):
        membership = iir4_biquad_membership()
        ops_1 = sorted(
            iir4.op(n).name for n, s in membership.items() if s == 1
        )
        ops_2 = sorted(
            iir4.op(n).name for n, s in membership.items() if s == 2
        )
        assert ops_1 == ops_2

    def test_membership_covers_all_schedulable(self, iir4):
        assert set(iir4_biquad_membership()) == set(
            iir4.schedulable_operations
        )

    def test_deterministic_construction(self):
        a = fourth_order_parallel_iir()
        b = fourth_order_parallel_iir()
        assert a.structure_signature() == b.structure_signature()
        assert set(a.operations) == set(b.operations)


class TestHyperSuite:
    @pytest.mark.parametrize(
        "spec", HYPER_SUITE, ids=[s.name for s in HYPER_SUITE]
    )
    def test_critical_path_matches_table2(self, spec):
        design = spec.factory()
        assert critical_path_length(design) == spec.critical_path

    @pytest.mark.parametrize(
        "spec",
        [s for s in HYPER_SUITE if s.name != "Long Echo Canceler"],
        ids=[s.name for s in HYPER_SUITE if s.name != "Long Echo Canceler"],
    )
    def test_variables_match_table2(self, spec):
        design = spec.factory()
        assert design.num_variables == spec.variables

    def test_echo_canceler_documented_deviation(self):
        # Table II's published variables (1082) are below its critical
        # path (2566), which a unit-latency DFG cannot satisfy; the
        # reconstruction keeps the critical path and documents the
        # variable-count deviation.
        design = long_echo_canceler()
        assert critical_path_length(design) == 2566
        assert design.num_variables > 1082

    def test_lookup_by_name(self):
        design = hyper_design("Modem Filter")
        assert design.name == "modem_filter"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            hyper_design("No Such Design")

    def test_all_validate(self):
        for spec in HYPER_SUITE:
            spec.factory().validate()

    def test_statistics_report(self):
        stats = suite_statistics()
        assert len(stats) == len(HYPER_SUITE)
        row = stats["Wavelet Filter"]
        assert row["published_variables"] == 31
        assert row["variables"] == 31
