"""RC4 stream cipher: published vectors, determinism, error paths."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.rc4 import RC4, drop_n, keystream_bits

# Published RC4 test vectors (key, plaintext, ciphertext hex).
VECTORS = [
    (b"Key", b"Plaintext", "bbf316e8d940af0ad3"),
    (b"Wiki", b"pedia", "1021bf0420"),
    (b"Secret", b"Attack at dawn", "45a01f645fc35b383552544b9bf5"),
]


@pytest.mark.parametrize("key,plaintext,expected", VECTORS)
def test_published_vectors(key, plaintext, expected):
    assert RC4(key).encrypt(plaintext).hex() == expected


def test_keystream_vector_key():
    # Keystream = ciphertext XOR plaintext for the "Key" vector.
    expected = bytes(
        c ^ p for c, p in zip(bytes.fromhex("bbf316e8d940af0ad3"), b"Plaintext")
    )
    assert RC4(b"Key").keystream(9) == expected


def test_keystream_deterministic():
    assert RC4(b"abc").keystream(64) == RC4(b"abc").keystream(64)


def test_different_keys_differ():
    assert RC4(b"abc").keystream(64) != RC4(b"abd").keystream(64)


def test_keystream_is_stateful():
    cipher = RC4(b"abc")
    first = cipher.keystream(8)
    second = cipher.keystream(8)
    assert first != second  # overwhelmingly likely, and true for this key
    assert RC4(b"abc").keystream(16) == first + second


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        RC4(b"")


def test_oversized_key_rejected():
    with pytest.raises(ValueError):
        RC4(b"x" * 257)


def test_max_size_key_accepted():
    assert len(RC4(b"x" * 256).keystream(4)) == 4


def test_negative_keystream_rejected():
    with pytest.raises(ValueError):
        RC4(b"k").keystream(-1)


def test_zero_keystream():
    assert RC4(b"k").keystream(0) == b""


def test_drop_n_advances_stream():
    base = RC4(b"key")
    base.keystream(16)
    rest = base.keystream(8)
    dropped = drop_n(RC4(b"key"), 16)
    assert dropped.keystream(8) == rest


def test_drop_n_negative_rejected():
    with pytest.raises(ValueError):
        drop_n(RC4(b"key"), -1)


def test_iterator_protocol():
    cipher = RC4(b"key")
    taken = [b for _, b in zip(range(10), iter(RC4(b"key")))]
    assert bytes(taken) == cipher.keystream(10)


def test_encrypt_roundtrip():
    message = b"the quick brown fox"
    ciphertext = RC4(b"k1").encrypt(message)
    assert RC4(b"k1").encrypt(ciphertext) == message


def test_keystream_bits_count_and_values():
    bits = list(keystream_bits(b"Key", 24))
    assert len(bits) == 24
    assert set(bits) <= {0, 1}
    # First three bytes of the "Key" keystream are EB 9F 77.
    first_byte = int("".join(map(str, bits[:8])), 2)
    assert first_byte == 0xEB


@given(st.binary(min_size=1, max_size=256), st.integers(0, 128))
def test_keystream_length_property(key, n):
    assert len(RC4(key).keystream(n)) == n


@given(st.binary(min_size=1, max_size=64), st.binary(max_size=64))
def test_encrypt_involution_property(key, message):
    assert RC4(key).encrypt(RC4(key).encrypt(message)) == message


def test_byte_distribution_is_plausible():
    # Crude sanity check: over 64 KiB, every byte value should appear.
    counts = [0] * 256
    cipher = RC4(b"distribution-check")
    for _ in range(65536):
        counts[cipher.next_byte()] += 1
    assert min(counts) > 0
    assert max(counts) < 65536 // 32
