"""Synthetic large-tier generators: determinism, structure, registry."""

import networkx as nx
import pytest

from repro.cdfg.designs.synthetic import (
    STITCH_MEMBERS,
    SYNTHETIC_TIERS,
    scaled_echo_canceler,
    stitched_hyper_composite,
    synthetic_design,
)
from repro.cdfg.ops import OpType
from repro.timing.kernel import CDFGView
from repro.timing.windows import critical_path_length, scheduling_windows


def _signature(design):
    return (
        sorted(design.graph.nodes),
        sorted((u, v, d["kind"].value) for u, v, d in design.graph.edges(data=True)),
    )


class TestScaledEchoCanceler:
    def test_structure_and_scale(self):
        design = scaled_echo_canceler(taps=20, lanes=6)
        n = design.graph.number_of_nodes()
        # ~5 nodes per (lane, tap): 1 input + 2 muls + 1 add, plus the
        # decimated LMS side chain amortizing to ~1.25 more.
        assert 5 * 20 * 6 * 0.9 <= n <= 5 * 20 * 6 * 1.2
        design.validate()
        # Depth tracks 2*taps (mul+add per stage), not lanes.
        assert critical_path_length(design) < 3 * 20 + 10

    def test_deterministic(self):
        a = scaled_echo_canceler(taps=8, lanes=3)
        b = scaled_echo_canceler(taps=8, lanes=3)
        assert _signature(a) == _signature(b)

    def test_windows_computable(self):
        design = scaled_echo_canceler(taps=8, lanes=3)
        horizon = critical_path_length(design)
        windows = scheduling_windows(design, horizon)
        assert all(lo <= hi for lo, hi in windows.values())


class TestStitchedComposite:
    def test_reaches_target_and_validates(self):
        design = stitched_hyper_composite(3000, seed=4)
        n = design.graph.number_of_nodes()
        assert n >= 3000
        # Overshoot is at most one member copy plus the adder tree.
        assert n <= 3000 + 1500

    def test_connected_single_sink(self):
        design = stitched_hyper_composite(2000, seed=1)
        assert nx.is_weakly_connected(design.graph)
        sinks = [
            v
            for v in design.graph.nodes
            if design.graph.out_degree(v) == 0
            and design.graph.nodes[v]["op"] is OpType.OUTPUT
        ]
        assert "stitch/y" in sinks

    def test_deterministic_per_seed(self):
        a = stitched_hyper_composite(2000, seed=9)
        b = stitched_hyper_composite(2000, seed=9)
        assert _signature(a) == _signature(b)

    def test_wide_not_deep(self):
        design = stitched_hyper_composite(4000, seed=2)
        view = CDFGView(design)
        view._ensure_levels()
        width = design.graph.number_of_nodes() / view._num_levels
        # The whole point of the tier: lots of nodes per level so the
        # level-batched sweeps have populations to amortize over.
        assert width > 16


class TestTierRegistry:
    def test_registry_names_unique_and_resolvable(self):
        names = [spec.name for spec in SYNTHETIC_TIERS]
        assert len(names) == len(set(names))
        assert "composite-50k" in names
        assert any(spec.target_nodes >= 100_000 for spec in SYNTHETIC_TIERS)

    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError):
            synthetic_design("composite-3b")

    def test_stitch_members_exclude_long_echo(self):
        assert "Long Echo Canceler" not in STITCH_MEMBERS
