"""Second integration layer: tight budgets, partial detection, FDS guts."""

from __future__ import annotations

import pytest

from repro.cdfg.designs import HYPER_SUITE, hyper_design
from repro.cdfg.generators import embed_in_host, random_layered_cdfg
from repro.core.domain import DomainParams
from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import InfeasibleScheduleError
from repro.scheduling.force_directed import _tighten
from repro.scheduling.list_scheduler import list_schedule
from repro.templates.covering import cover_and_allocate, greedy_cover
from repro.templates.library import default_library
from repro.timing.windows import critical_path_length, scheduling_windows


class TestTightBudgetMatching:
    @pytest.mark.parametrize(
        "name",
        ["8th Order CF IIR", "Linear GE Cntrlr", "Modem Filter"],
    )
    def test_tight_budget_embeds_and_survives(self, alice, name):
        design = hyper_design(name)
        c = critical_path_length(design)
        marker = MatchingWatermarker(
            alice, params=MatchingWMParams(z=1, horizon=c)
        )
        marked, wm = marker.embed(design)
        covering, allocation = cover_and_allocate(
            marked, default_library(), steps=c, forced=wm.enforced
        )
        covering.verify(marked)
        assert marker.verify(covering, wm).detected
        assert allocation.module_count >= 1

    def test_enforced_matchings_off_critical(self, alice):
        design = hyper_design("Linear GE Cntrlr")
        c = critical_path_length(design)
        marker = MatchingWatermarker(
            alice, params=MatchingWMParams(z=2, horizon=c)
        )
        _, wm = marker.embed(design)
        from repro.timing.paths import laxity

        lax = laxity(design)
        for matching in wm.enforced:
            for node in matching.assignment:
                assert lax[node] <= c * (1 - 0.15) + 1e-9


class TestPartialDetection:
    def test_min_fraction_surfaces_partial_hits(self, alice):
        from repro.core.detector import scan_for_watermark

        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=6
        )
        design = random_layered_cdfg(90, seed=42)
        marker = SchedulingWatermarker(alice, params)
        marked, wm = marker.embed(design)
        schedule = list_schedule(marked)
        # Break one constraint by hand: move a source after its target
        # if legality allows; otherwise perturb via a legal re-schedule.
        from repro.core.attacks import reorder_attack

        outcome = reorder_attack(
            design, schedule, wm, alice, attempts=3000, seed=5
        )
        if outcome.verification.fraction == 1.0:
            pytest.skip("attack did not dent the mark for this seed")
        full = scan_for_watermark(
            design, outcome.schedule, wm, alice, params.domain,
            min_fraction=1.0,
        )
        partial = scan_for_watermark(
            design, outcome.schedule, wm, alice, params.domain,
            min_fraction=0.5,
        )
        assert len(partial) >= len(full)
        assert any(h.result.fraction < 1.0 for h in partial) or full


class TestForceDirectedInternals:
    def test_tighten_propagates_both_ways(self, iir4):
        c = critical_path_length(iir4)
        windows = dict(scheduling_windows(iir4, c + 2))
        pinned = _tighten(iir4, windows, "A3", (4, 4))
        # Predecessor A2 must finish before step 4.
        assert pinned["A2"][1] <= 3
        # Successor A4 cannot start before 5.
        assert pinned["A4"][0] >= 5

    def test_tighten_detects_emptied_window(self, chain5):
        windows = dict(scheduling_windows(chain5, 5))
        with pytest.raises(InfeasibleScheduleError):
            _tighten(chain5, windows, "n4", (0, 0))  # n4 needs step 4


class TestHostEmbedding:
    def test_attach_outputs_zero(self):
        core = random_layered_cdfg(30, seed=1)
        merged = embed_in_host(core, host_ops=60, seed=2, attach_outputs=0)
        cross = [
            (u, v)
            for u, v in merged.edges()
            if u.startswith("core/") != v.startswith("core/")
        ]
        assert cross == []

    def test_host_is_schedulable(self):
        core = random_layered_cdfg(30, seed=1)
        merged = embed_in_host(core, host_ops=60, seed=2)
        list_schedule(merged).verify(merged)


class TestSuiteCoverings:
    @pytest.mark.parametrize(
        "spec",
        [s for s in HYPER_SUITE if s.critical_path <= 140],
        ids=[s.name for s in HYPER_SUITE if s.critical_path <= 140],
    )
    def test_every_design_coverable_at_tight_budget(self, spec):
        design = spec.factory()
        covering = greedy_cover(design, default_library())
        covering.verify(design)
        c = critical_path_length(design)
        from repro.templates.covering import allocate

        allocation = allocate(design, covering, steps=c)
        assert allocation.module_count >= 1
