"""Kill-and-resume determinism, end to end through the CLI.

The acceptance bar for the crash-safe runner: SIGKILL a stress campaign
at an arbitrary trial boundary, resume it, and get a final table
byte-identical to an uninterrupted run with the same seed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import save
from repro.cli import main

#: Compound faults + jitter keep each trial expensive enough that the
#: campaign spans a few hundred milliseconds — a wide window for the
#: SIGKILL to land at a genuine mid-run trial boundary.
SWEEP = [
    "--rates", "0,0.05,0.1,0.2", "--trials", "10", "--seed", "3",
    "--faults", "delete_edges,drop_nodes", "--jitter",
]


@pytest.fixture(scope="module")
def cli_artifacts(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("kill_resume")
    design = str(tmp_path / "design.json")
    marked = str(tmp_path / "marked.json")
    record = str(tmp_path / "wm.json")
    schedule = str(tmp_path / "sched.json")
    save(fourth_order_parallel_iir(), design)
    assert main([
        "embed", "--design", design, "--author", "Alice Inc.",
        "--out", marked, "--record", record, "--k", "3", "--tau", "4",
    ]) == 0
    assert main(["schedule", "--design", marked, "--out", schedule]) == 0
    return marked, record, schedule


def stress_args(marked, record, schedule, run_dir):
    return [
        "stress", "--design", marked, "--record", record,
        "--schedule", schedule, "--run-dir", str(run_dir), *SWEEP,
    ]


def test_sigkill_then_resume_reproduces_uninterrupted_table(
    cli_artifacts, tmp_path
):
    marked, record, schedule = cli_artifacts

    # Reference: an uninterrupted crash-safe run.
    reference_dir = tmp_path / "reference"
    assert main(stress_args(marked, record, schedule, reference_dir)) == 0

    # Victim: the same campaign as a subprocess, SIGKILLed once its
    # journal shows progress (an arbitrary trial boundary).
    victim_dir = tmp_path / "victim"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli",
         *stress_args(marked, record, schedule, victim_dir)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = victim_dir / "journal.jsonl"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break  # finished before we could kill it: still valid
            if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
                process.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        else:
            pytest.fail("victim campaign never made journal progress")
    finally:
        process.wait(timeout=60)

    # Resume from the run directory alone (no sweep flags needed) and
    # compare the checkpointed tables byte for byte.
    assert main(["stress", "--resume", str(victim_dir)]) == 0
    assert (victim_dir / "table.txt").read_bytes() == (
        reference_dir / "table.txt"
    ).read_bytes()


def test_run_dir_table_matches_plain_in_process_sweep(
    cli_artifacts, tmp_path, capsys
):
    marked, record, schedule = cli_artifacts
    plain = [
        "stress", "--design", marked, "--record", record,
        "--schedule", schedule, "--rates", "0,0.1", "--trials", "2",
    ]
    assert main(plain) == 0
    plain_out = capsys.readouterr().out
    assert main(plain + ["--run-dir", str(tmp_path / "run")]) == 0
    runner_out = capsys.readouterr().out
    # Identical table; the runner adds only the accounting line.
    assert plain_out.strip() in runner_out
    assert "accounting:" in runner_out
