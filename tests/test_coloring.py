"""Graph-coloring substrate and the generic local-watermark example."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    ColoringError,
    ColoringWatermarker,
    ColoringWMParams,
    dsatur_coloring,
    greedy_coloring,
    is_proper,
    num_colors,
    undirected_structural_hashes,
    verify_coloring,
)
from repro.crypto.signature import AuthorSignature
from repro.errors import DomainSelectionError


def sample_graph(seed: int = 1, n: int = 40, p: float = 0.15) -> nx.Graph:
    return nx.gnp_random_graph(n, p, seed=seed)


class TestColoringSubstrate:
    def test_greedy_is_proper(self):
        g = sample_graph()
        colors = greedy_coloring(g)
        verify_coloring(g, colors)

    def test_dsatur_is_proper(self):
        g = sample_graph()
        verify_coloring(g, dsatur_coloring(g))

    def test_dsatur_no_worse_than_greedy_on_crown(self):
        # DSATUR colors crown graphs optimally; naive greedy can need
        # more colors on adversarial orders.
        g = sample_graph(seed=5, n=50, p=0.2)
        assert num_colors(dsatur_coloring(g)) <= num_colors(
            greedy_coloring(g, order=sorted(g.nodes))
        ) + 1

    def test_complete_graph_needs_n_colors(self):
        g = nx.complete_graph(6)
        assert num_colors(dsatur_coloring(g)) == 6

    def test_bipartite_two_colors(self):
        g = nx.complete_bipartite_graph(4, 5)
        assert num_colors(dsatur_coloring(g)) == 2

    def test_verify_catches_monochrome_edge(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringError, match="monochromatic"):
            verify_coloring(g, {0: 0, 1: 0, 2: 1})

    def test_verify_catches_missing_vertex(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringError, match="uncolored"):
            verify_coloring(g, {0: 0, 1: 1})

    def test_is_proper(self):
        g = nx.path_graph(3)
        assert is_proper(g, {0: 0, 1: 1, 2: 0})
        assert not is_proper(g, {0: 0, 1: 0, 2: 0})

    def test_empty_graph(self):
        assert greedy_coloring(nx.Graph()) == {}
        assert num_colors({}) == 0

    @given(st.integers(2, 30), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_proper(self, n, seed):
        g = nx.gnp_random_graph(n, 0.3, seed=seed)
        verify_coloring(g, dsatur_coloring(g))
        verify_coloring(g, greedy_coloring(g))


class TestStructuralHashes:
    def test_rename_invariant_multiset(self):
        g = sample_graph(seed=3)
        relabeled = nx.relabel_nodes(g, {n: f"v{n}" for n in g.nodes})
        h1 = undirected_structural_hashes(g)
        h2 = undirected_structural_hashes(relabeled)
        assert sorted(h1.values()) == sorted(h2.values())


class TestColoringWatermark:
    def test_embed_and_detect(self):
        g = sample_graph(seed=7)
        marker = ColoringWatermarker(AuthorSignature("alice"))
        augmented, wm = marker.embed(g)
        colors = dsatur_coloring(augmented)
        verify_coloring(augmented, colors)
        result = marker.verify(colors, wm)
        assert result.detected
        assert result.log10_pc < 0

    def test_watermark_edges_between_locality_members(self):
        g = sample_graph(seed=7)
        marker = ColoringWatermarker(AuthorSignature("alice"))
        _, wm = marker.embed(g)
        locality = set(wm.locality)
        for u, v in wm.pairs:
            assert u in locality and v in locality
            assert not g.has_edge(u, v)  # originally non-adjacent

    def test_strip_restores_original(self):
        g = sample_graph(seed=7)
        marker = ColoringWatermarker(AuthorSignature("alice"))
        augmented, _ = marker.embed(g)
        stripped = ColoringWatermarker.strip(augmented)
        assert set(stripped.edges) == set(g.edges)

    def test_deterministic_per_signature(self):
        g = sample_graph(seed=7)
        wm1 = ColoringWatermarker(AuthorSignature("alice")).embed(g)[1]
        wm2 = ColoringWatermarker(AuthorSignature("alice")).embed(g)[1]
        assert wm1.pairs == wm2.pairs

    def test_signature_specific(self):
        g = sample_graph(seed=7)
        marks = {
            ColoringWatermarker(AuthorSignature(f"a{i}")).embed(g)[1].pairs
            for i in range(6)
        }
        assert len(marks) > 1

    def test_unconstrained_coloring_partial_match(self):
        g = sample_graph(seed=7)
        marker = ColoringWatermarker(
            AuthorSignature("alice"), ColoringWMParams(k=6, radius=3)
        )
        _, wm = marker.embed(g)
        clean_colors = dsatur_coloring(g)
        result = marker.verify(clean_colors, wm)
        # Coincidence per pair ~ (1 - 1/chi): usually some pairs hold,
        # full satisfaction of 6 pairs is not guaranteed evidence.
        assert 0.0 <= result.fraction <= 1.0

    def test_too_small_graph_rejected(self):
        g = nx.path_graph(3)
        marker = ColoringWatermarker(AuthorSignature("alice"))
        with pytest.raises(DomainSelectionError):
            marker.embed(g)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ColoringWMParams(radius=0)
        with pytest.raises(ValueError):
            ColoringWMParams(k=0)
        with pytest.raises(ValueError):
            ColoringWMParams(min_locality=1)

    def test_survives_renaming(self):
        # The record stores vertex names, but identification of the
        # locality is structural; verifying after renaming needs the
        # mapping (record replay) — check the mapped pairs still differ.
        g = sample_graph(seed=9)
        marker = ColoringWatermarker(AuthorSignature("alice"))
        augmented, wm = marker.embed(g)
        mapping = {n: f"x{n}" for n in augmented.nodes}
        renamed = nx.relabel_nodes(augmented, mapping)
        colors = dsatur_coloring(renamed)
        mapped_colors = {n: colors[mapping[n]] for n in augmented.nodes}
        assert marker.verify(mapped_colors, wm).detected
