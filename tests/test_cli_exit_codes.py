"""Documented CLI exit codes: 3 for budgets, 4 for trial timeouts."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.io import save
from repro.cli import (
    EXIT_BUDGET_EXCEEDED,
    EXIT_ERROR,
    EXIT_TRIAL_TIMEOUT,
    build_parser,
    main,
)
from repro.errors import TrialTimeoutError


@pytest.fixture
def big_design(tmp_path):
    path = str(tmp_path / "big.json")
    save(random_layered_cdfg(100, seed=4242, name="big"), path)
    return path


class TestExitCodes:
    def test_budget_exhaustion_exits_3(self, big_design, tmp_path, capsys):
        code = main([
            "schedule", "--design", big_design,
            "--out", str(tmp_path / "s.json"),
            "--scheduler", "exact", "--budget-ms", "0.001",
        ])
        assert code == EXIT_BUDGET_EXCEEDED == 3
        assert "error:" in capsys.readouterr().err

    def test_trial_timeout_exits_4(self, monkeypatch, tmp_path, capsys):
        # The all-trials-timed-out condition is exercised at library
        # level (test_runner.py); here we pin the CLI mapping.
        import repro.cli as cli_mod

        class Hung:
            def __init__(self, *args, **kwargs):
                pass

            def resume(self):
                raise TrialTimeoutError("every trial overran 0.5s")

        monkeypatch.setattr(cli_mod, "CampaignRunner", Hung)
        code = main(["stress", "--resume", str(tmp_path)])
        assert code == EXIT_TRIAL_TIMEOUT == 4
        assert "overran" in capsys.readouterr().err

    def test_plain_errors_still_exit_2(self, tmp_path, capsys):
        assert main(["info", "--design", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestHelpEpilog:
    def test_exit_code_table_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "BudgetExceededError" in out
        assert "TrialTimeoutError" in out


class TestRunnerFlagValidation:
    def test_runner_flags_require_run_dir(self, big_design, capsys):
        for extra in (
            ["--jobs", "2"],
            ["--trial-timeout", "5"],
            ["--retries", "0"],
        ):
            code = main([
                "stress", "--design", big_design, "--record", big_design,
                *extra,
            ])
            assert code == EXIT_ERROR
            assert "requires the crash-safe runner" in (
                capsys.readouterr().err
            )

    def test_resume_and_run_dir_are_exclusive(self, tmp_path, capsys):
        code = main([
            "stress", "--resume", str(tmp_path),
            "--run-dir", str(tmp_path),
        ])
        assert code == EXIT_ERROR
        assert "mutually exclusive" in capsys.readouterr().err

    def test_stress_without_design_or_resume_is_an_error(self, capsys):
        assert main(["stress"]) == EXIT_ERROR
        assert "requires --design and --record" in capsys.readouterr().err
