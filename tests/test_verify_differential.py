"""Differential oracles: clean on the real code, divergent on planted bugs."""

from __future__ import annotations

import random

import pytest

from repro.core.coincidence import monte_carlo_pc
from repro.errors import WatermarkError
from repro.scheduling.enumeration import (
    sample_schedule_boxes,
    window_box_volume,
)
from repro.timing.kernel import IncrementalWindows
from repro.timing.windows import critical_path_length
from repro.verify.differential import (
    coincidence_trial,
    derive_seed,
    embed_paths_trial,
    schedulers_trial,
    trial_design,
    try_embed,
    windows_kernel_trial,
)
from repro.verify.report import Divergence
from repro.verify.suites import run_differential_suite


class TestHelpers:
    def test_derive_seed_is_deterministic_and_distinct(self):
        assert derive_seed(7, 3, "x") == derive_seed(7, 3, "x")
        seeds = {
            derive_seed(base, trial, salt)
            for base in (0, 7)
            for trial in range(10)
            for salt in ("embed", "windows")
        }
        assert len(seeds) == 40

    def test_trial_design_is_reproducible(self):
        a = trial_design(123, num_ops=24)
        b = trial_design(123, num_ops=24)
        assert a.edges() == b.edges()
        assert list(a.operations) == list(b.operations)

    def test_try_embed_returns_marked_pair_or_none(self):
        outcome = try_embed(trial_design(5, num_ops=60), 5)
        if outcome is not None:
            marked, watermark = outcome
            assert watermark.k >= 1
            assert len(marked.temporal_edges) >= watermark.k


class TestOraclesClean:
    @pytest.mark.parametrize("trial", range(3))
    def test_schedulers(self, trial):
        assert schedulers_trial(derive_seed(2, trial, "sched")) == []

    @pytest.mark.parametrize("trial", range(3))
    def test_embed_paths(self, trial):
        assert embed_paths_trial(derive_seed(2, trial, "embed")) == []

    @pytest.mark.parametrize("trial", range(3))
    def test_windows_kernel(self, trial):
        assert windows_kernel_trial(derive_seed(2, trial, "windows")) == []

    def test_coincidence(self):
        divergences, _skipped = coincidence_trial(
            derive_seed(2, 0, "pc"), samples=4000
        )
        assert divergences == []

    def test_suite_clean_and_accounted(self):
        report = run_differential_suite(seed=2, trials=2)
        assert report.clean
        names = [outcome.name for outcome in report.outcomes]
        assert names == [
            "schedulers",
            "embed_paths",
            "windows_kernel",
            "periodic_windows",
            "kernel_vectorized",
            "rtl_roundtrip",
            "coincidence_mc",
            "attack_service",
            "embed_paths_hyper",
            "rtl_roundtrip_hyper",
        ]
        # Randomized oracles ran exactly the requested trial count.
        assert all(
            outcome.trials == 2
            for outcome in report.outcomes
            if not outcome.name.endswith("_hyper")
        )


class TestMonteCarloEstimator:
    def test_box_volume_matches_window_product(self, diamond):
        horizon = critical_path_length(diamond) + 1
        from repro.timing.windows import scheduling_windows

        windows = scheduling_windows(diamond, horizon)
        expected = 1
        for node in diamond.schedulable_operations:
            lo, hi = windows[node]
            expected *= hi - lo + 1
        assert window_box_volume(diamond, horizon) == expected

    def test_sampler_accepts_only_feasible_points(self, diamond):
        horizon = critical_path_length(diamond) + 1
        rng = random.Random(0)
        schedulable = set(diamond.schedulable_operations)
        accepted = 0
        for assignment, feasible in sample_schedule_boxes(
            diamond, horizon, samples=200, rng=rng
        ):
            assert set(assignment) == schedulable
            if not feasible:
                continue
            accepted += 1
            for src, dst in diamond.edges():
                if src in assignment and dst in assignment:
                    assert (
                        assignment[src] + diamond.latency(src)
                        <= assignment[dst]
                    )
        assert accepted > 0

    def test_monte_carlo_pc_exactness_on_forced_edge(self, diamond):
        # Constraint a -> c on the diamond: enumerable by hand, the
        # estimate must converge to the exact ratio.
        horizon = critical_path_length(diamond) + 1
        rng = random.Random(1)
        estimate = monte_carlo_pc(
            diamond, [("a", "c")], rng, horizon=horizon, samples=20000
        )
        from repro.core.coincidence import exact_pc

        exact = exact_pc(diamond, [("a", "c")], horizon=horizon)
        assert abs(estimate.pc - exact.pc) < 6 * estimate.standard_error()

    def test_monte_carlo_pc_empty_feasible_raises(self, diamond):
        rng = random.Random(2)
        with pytest.raises(WatermarkError):
            monte_carlo_pc(
                diamond, [("a", "c")], rng, samples=0
            ).pc  # no draws -> no feasible points -> undefined pc


class TestTeeth:
    """A planted off-by-one in the kernel must be caught."""

    def test_windows_oracle_catches_propagation_bug(self, monkeypatch):
        original = IncrementalWindows._propagate_edge

        def buggy(self, i, j):
            delta = original(self, i, j)
            return {
                x: (lo + 1 if x != i else lo, hi)
                for x, (lo, hi) in delta.items()
            }

        monkeypatch.setattr(IncrementalWindows, "_propagate_edge", buggy)
        divergences = []
        for trial in range(30):
            divergences += windows_kernel_trial(
                derive_seed(7, trial, "windows")
            )
        assert divergences, "off-by-one in delta propagation went unnoticed"
        assert all(isinstance(d, Divergence) for d in divergences)
        assert all(d.oracle == "windows_kernel" for d in divergences)

    def test_divergence_is_replayable_from_its_seed(self, monkeypatch):
        original = IncrementalWindows._propagate_edge

        def buggy(self, i, j):
            delta = original(self, i, j)
            return {
                x: (lo + 1 if x != i else lo, hi)
                for x, (lo, hi) in delta.items()
            }

        monkeypatch.setattr(IncrementalWindows, "_propagate_edge", buggy)
        found = None
        for trial in range(30):
            hits = windows_kernel_trial(derive_seed(7, trial, "windows"))
            if hits:
                found = hits[0]
                break
        assert found is not None
        replayed = windows_kernel_trial(found.seed)
        assert replayed and replayed[0].detail == found.detail
