"""Diagnostics lists: validate_cdfg / validate_schedule never raise."""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType, ResourceClass
from repro.resilience.faults import jitter_schedule
from repro.resilience.validate import (
    Diagnostic,
    errors_in,
    is_clean,
    summarize,
    validate_cdfg,
    validate_schedule,
)
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule


def codes(diags):
    return [d.code for d in diags]


class TestValidateCDFG:
    def test_clean_design(self, iir4):
        diags = validate_cdfg(iir4)
        assert is_clean(diags)
        assert errors_in(diags) == []

    def test_empty_graph_warns(self):
        diags = validate_cdfg(CDFG("void"))
        assert codes(diags) == ["empty"]
        assert is_clean(diags)  # a warning, not an error

    def test_cycle_is_error(self):
        g = CDFG()
        g.add_operation("a", OpType.ADD)
        g.add_operation("b", OpType.ADD)
        g.add_data_edge("a", "b")
        # add_data_edge refuses cycles, so go behind its back:
        from repro.cdfg.graph import EdgeKind

        g.graph.add_edge("b", "a", kind=EdgeKind.DATA)
        diags = validate_cdfg(g)
        assert "cycle" in codes(diags)
        assert not is_clean(diags)

    def test_isolated_node_warns(self, iir4):
        iir4.add_operation("floating", OpType.ADD)
        diags = validate_cdfg(iir4)
        assert "isolated-node" in codes(diags)
        assert is_clean(diags)

    def test_temporal_edges_reported_as_info(self, alice, iir4):
        from repro.core.scheduling_wm import SchedulingWatermarker

        marked, _ = SchedulingWatermarker(alice).embed(iir4)
        diags = validate_cdfg(marked)
        infos = [d for d in diags if d.severity == "info"]
        assert codes(infos) == ["temporal-edges"]

    def test_summarize_counts(self):
        diags = [
            Diagnostic("error", "x", ""),
            Diagnostic("warning", "y", ""),
            Diagnostic("warning", "z", ""),
            Diagnostic("info", "w", ""),
        ]
        assert summarize(diags) == (1, 2, 1)


class TestValidateSchedule:
    def test_clean_schedule(self, iir4):
        schedule = list_schedule(iir4)
        assert validate_schedule(iir4, schedule) == []

    def test_missing_node_is_error(self, iir4):
        schedule = list_schedule(iir4)
        starts = dict(schedule.start_times)
        dropped = sorted(starts)[0]
        del starts[dropped]
        diags = validate_schedule(iir4, Schedule(starts))
        assert "missing-node" in codes(diags)
        assert not is_clean(diags)

    def test_unknown_node_is_warning(self, iir4):
        schedule = list_schedule(iir4)
        starts = dict(schedule.start_times)
        starts["ghost"] = 0
        diags = validate_schedule(iir4, Schedule(starts))
        assert codes(diags) == ["unknown-node"]
        assert is_clean(diags)

    def test_jitter_produces_precedence_findings(self, iir4):
        schedule = list_schedule(iir4)
        jittered, report = jitter_schedule(schedule, seed=3, rate=0.5)
        assert report.applied > 0
        diags = validate_schedule(iir4, jittered)
        # Unlike Schedule.verify, every violation is listed, not just
        # the first, and nothing is raised.
        precedence = [d for d in diags if d.code == "precedence"]
        assert precedence
        assert all(d.subject for d in precedence)

    def test_temporal_violation_is_warning_only(self, alice, iir4):
        from repro.core.scheduling_wm import SchedulingWatermarker

        marked, wm = SchedulingWatermarker(alice).embed(iir4)
        schedule = list_schedule(marked)
        src, dst = wm.temporal_edges[0]
        # Swap the constrained pair's ordering without breaking any
        # real dependence between them (temporal edges are extra).
        starts = dict(schedule.start_times)
        starts[dst] = 0
        diags = validate_schedule(marked, Schedule(starts))
        temporal = [
            d
            for d in diags
            if d.code == "precedence" and d.subject == f"{src}->{dst}"
        ]
        assert temporal and temporal[0].severity == "warning"

    def test_horizon_and_resources(self, iir4):
        schedule = list_schedule(iir4)
        diags = validate_schedule(
            iir4,
            schedule,
            horizon=1,
            resources=ResourceSet({ResourceClass.ALU: 1}),
        )
        assert "horizon" in codes(diags)
        assert "resources" in codes(diags)
        errors, _, _ = summarize(diags)
        assert errors == len(diags)
