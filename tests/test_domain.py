"""Domain selection: cones, signature-carved subtrees, retries."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.core.domain import (
    DomainParams,
    candidate_roots,
    select_domain,
    select_root_and_domain,
)
from repro.crypto.bitstream import BitStream
from repro.crypto.signature import AuthorSignature
from repro.errors import DomainSelectionError


def stream(identity: str = "alice") -> BitStream:
    return BitStream(AuthorSignature(identity), "domain-test")


class TestDomainParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DomainParams(tau=0)
        with pytest.raises(ValueError):
            DomainParams(include_probability=1.5)
        with pytest.raises(ValueError):
            DomainParams(min_domain_size=0)


class TestCandidateRoots:
    def test_roots_have_large_cones(self, iir4):
        params = DomainParams(tau=3, min_domain_size=5)
        roots = candidate_roots(iir4, params)
        for root in roots:
            cone = iir4.fanin_tree(root, 3) & set(
                iir4.schedulable_operations
            )
            assert len(cone) >= 5

    def test_no_candidates_raises(self, diamond):
        with pytest.raises(DomainSelectionError):
            candidate_roots(diamond, DomainParams(tau=1, min_domain_size=10))

    def test_order_is_name_independent(self, iir4):
        params = DomainParams(tau=3, min_domain_size=5)
        mapping = {n: f"r{i}" for i, n in enumerate(sorted(iir4.operations))}
        renamed = iir4.renamed(mapping)
        roots = candidate_roots(iir4, params)
        renamed_roots = candidate_roots(renamed, params)
        # Up to automorphism the sequences correspond; compare cone sizes.
        assert len(roots) == len(renamed_roots)


class TestSelectDomain:
    def test_contains_root(self, iir4):
        domain = select_domain(iir4, "A9", stream(), DomainParams(tau=4))
        assert domain.root == "A9"
        assert "A9" in domain.nodes

    def test_subtree_within_cone(self, iir4):
        params = DomainParams(tau=3)
        domain = select_domain(iir4, "A9", stream(), params)
        assert set(domain.nodes) <= set(domain.cone)
        cone = iir4.fanin_tree("A9", 3) & set(iir4.schedulable_operations)
        assert set(domain.cone) == cone

    def test_deterministic_per_signature(self, iir4):
        params = DomainParams(tau=4)
        a = select_domain(iir4, "A9", stream("alice"), params)
        b = select_domain(iir4, "A9", stream("alice"), params)
        assert a.nodes == b.nodes

    def test_signatures_carve_different_subtrees(self, iir4):
        params = DomainParams(tau=4, include_probability=0.4)
        carved = {
            select_domain(iir4, "A9", stream(f"author-{i}"), params).nodes
            for i in range(12)
        }
        assert len(carved) > 1

    def test_include_probability_one_takes_whole_cone(self, iir4):
        params = DomainParams(tau=4, include_probability=1.0)
        domain = select_domain(iir4, "A9", stream(), params)
        assert set(domain.nodes) == set(domain.cone)

    def test_connected_to_root(self, iir4):
        # Every selected node must reach the root inside the selection
        # (the carve walks the tree from the root).
        params = DomainParams(tau=4, include_probability=0.3)
        domain = select_domain(iir4, "A9", stream(), params)
        selected = set(domain.nodes)
        reached = {"A9"}
        frontier = ["A9"]
        while frontier:
            current = frontier.pop()
            for pred in iir4.data_predecessors(current):
                if pred in selected and pred not in reached:
                    reached.add(pred)
                    frontier.append(pred)
        assert reached == selected

    def test_io_root_rejected(self, iir4):
        with pytest.raises(DomainSelectionError):
            select_domain(iir4, "x", stream(), DomainParams(tau=2))


class TestSelectRootAndDomain:
    def test_selects_valid_domain(self, iir4):
        params = DomainParams(tau=3, min_domain_size=4)
        domain = select_root_and_domain(iir4, stream(), params)
        assert domain.size >= 4

    def test_forced_root(self, iir4):
        params = DomainParams(tau=4, min_domain_size=3)
        domain = select_root_and_domain(
            iir4, stream(), params, forced_root="A4"
        )
        assert domain.root == "A4"

    def test_forced_root_too_small(self, iir4):
        params = DomainParams(tau=1, min_domain_size=5)
        with pytest.raises(DomainSelectionError):
            select_root_and_domain(iir4, stream(), params, forced_root="A1")

    def test_works_on_random_graphs(self):
        params = DomainParams(tau=4, min_domain_size=4)
        for seed in range(5):
            g = random_layered_cdfg(60, seed=seed)
            domain = select_root_and_domain(g, stream(f"s{seed}"), params)
            assert domain.size >= 4
