"""Schedulers: list, force-directed, exact — legality and quality."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.ops import OpType, ResourceClass
from repro.errors import InfeasibleScheduleError
from repro.scheduling.exact import exact_schedule, minimum_cost_schedule
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import UNLIMITED, ResourceSet
from repro.timing.windows import critical_path_length


class TestListScheduler:
    def test_unlimited_achieves_critical_path(self, iir4):
        s = list_schedule(iir4)
        s.verify(iir4)
        assert s.makespan(iir4) == critical_path_length(iir4)

    def test_resource_constrained_legal(self, iir4):
        rs = ResourceSet(
            {ResourceClass.ALU: 1, ResourceClass.MULTIPLIER: 1}
        )
        s = list_schedule(iir4, resources=rs)
        s.verify(iir4, resources=rs)

    def test_serialization_under_single_unit(self, diamond):
        rs = ResourceSet({ResourceClass.MULTIPLIER: 1})
        s = list_schedule(diamond, resources=rs)
        s.verify(diamond, resources=rs)
        assert s.makespan(diamond) == 3  # a, c serialized, then out

    def test_horizon_enforced(self, diamond):
        rs = ResourceSet({ResourceClass.MULTIPLIER: 1})
        with pytest.raises(InfeasibleScheduleError):
            list_schedule(diamond, resources=rs, horizon=2)

    def test_honors_temporal_edges(self, iir4):
        marked = iir4.copy()
        marked.add_temporal_edge("C6", "C3")
        s = list_schedule(marked)
        s.verify(marked)
        assert s.start("C6") < s.start("C3")

    def test_multicycle_ops(self):
        b = CDFGBuilder()
        x = b.input("x")
        m = b.op("m", OpType.MUL, x, latency=3)
        b.op("a", OpType.ADD, m)
        g = b.build()
        s = list_schedule(g)
        s.verify(g)
        assert s.start("a") >= 3

    def test_multicycle_unit_held(self):
        # Two 2-cycle muls on one multiplier cannot overlap.
        b = CDFGBuilder()
        x = b.input("x")
        b.op("m1", OpType.MUL, x, latency=2)
        b.op("m2", OpType.MUL, x, latency=2)
        g = b.build()
        rs = ResourceSet({ResourceClass.MULTIPLIER: 1})
        s = list_schedule(g, resources=rs)
        s.verify(g, resources=rs)
        assert abs(s.start("m1") - s.start("m2")) >= 2

    @given(st.integers(1, 50), st.integers(0, 3000))
    @settings(max_examples=25, deadline=None)
    def test_property_always_legal(self, num_ops, seed):
        g = random_layered_cdfg(num_ops, seed)
        s = list_schedule(g)
        s.verify(g)
        assert s.makespan(g) == critical_path_length(g)

    @given(st.integers(2, 40), st.integers(0, 1000), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_resource_legal(self, num_ops, seed, units):
        g = random_layered_cdfg(num_ops, seed)
        rs = ResourceSet(
            {
                ResourceClass.ALU: units,
                ResourceClass.MULTIPLIER: units,
                ResourceClass.MEMORY: units,
                ResourceClass.BRANCH: units,
            }
        )
        s = list_schedule(g, resources=rs)
        s.verify(g, resources=rs)


class TestForceDirected:
    def test_legal_at_critical_path(self, iir4):
        c = critical_path_length(iir4)
        s = force_directed_schedule(iir4, c)
        s.verify(iir4, horizon=c)

    def test_balances_with_slack(self, iir4):
        c = critical_path_length(iir4)
        tight = force_directed_schedule(iir4, c)
        relaxed = force_directed_schedule(iir4, c + 4)
        # Extra steps should never increase the implied unit count.
        for cls, count in relaxed.implied_units(iir4).items():
            assert count <= tight.implied_units(iir4).get(cls, 0)

    def test_beats_or_matches_asap_on_multipliers(self, iir4):
        # ASAP fires all 8 const-muls at step 0 (8 multipliers); FDS at
        # C should do strictly better.
        c = critical_path_length(iir4)
        s = force_directed_schedule(iir4, c)
        assert s.implied_units(iir4)[ResourceClass.MULTIPLIER] < 8

    def test_horizon_below_cp_rejected(self, iir4):
        with pytest.raises(InfeasibleScheduleError):
            force_directed_schedule(iir4, critical_path_length(iir4) - 1)

    def test_honors_temporal_edges(self, iir4):
        marked = iir4.copy()
        marked.add_temporal_edge("C6", "C3")
        c = critical_path_length(marked)
        s = force_directed_schedule(marked, c)
        s.verify(marked, horizon=c)
        assert s.start("C6") < s.start("C3")

    @given(st.integers(2, 25), st.integers(0, 1000), st.integers(0, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_legal(self, num_ops, seed, extra):
        g = random_layered_cdfg(num_ops, seed)
        horizon = critical_path_length(g) + extra
        s = force_directed_schedule(g, horizon)
        s.verify(g, horizon=horizon)


class TestExact:
    def test_feasible_found(self, diamond):
        rs = ResourceSet({ResourceClass.MULTIPLIER: 1})
        s = exact_schedule(diamond, horizon=3, resources=rs)
        s.verify(diamond, resources=rs, horizon=3)

    def test_infeasible_detected(self, diamond):
        rs = ResourceSet({ResourceClass.MULTIPLIER: 1})
        with pytest.raises(InfeasibleScheduleError):
            exact_schedule(diamond, horizon=2, resources=rs)

    def test_unlimited_matches_cp(self, iir4):
        c = critical_path_length(iir4)
        s = exact_schedule(iir4, horizon=c, resources=UNLIMITED)
        assert s.makespan(iir4) <= c

    def test_minimum_cost_beats_asap(self, iir4):
        c = critical_path_length(iir4)
        schedule, cost = minimum_cost_schedule(iir4, c + 2)
        schedule.verify(iir4, horizon=c + 2)
        fds = force_directed_schedule(iir4, c + 2)
        from repro.scheduling.exact import DEFAULT_UNIT_COSTS

        fds_cost = sum(
            DEFAULT_UNIT_COSTS.get(cls, 1.0) * n
            for cls, n in fds.implied_units(iir4).items()
        )
        assert cost <= fds_cost

    def test_minimum_cost_infeasible(self, chain5):
        with pytest.raises(InfeasibleScheduleError):
            minimum_cost_schedule(chain5, 4)

    def test_exact_on_diamond_minimizes_multipliers(self, diamond):
        schedule, cost = minimum_cost_schedule(diamond, 3)
        assert schedule.implied_units(diamond)[ResourceClass.MULTIPLIER] == 1
