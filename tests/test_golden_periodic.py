"""Golden battery for the periodic (streaming) pipeline.

Each golden file in ``tests/golden/periodic/`` snapshots the full
deterministic cyclic pipeline on one design: the periodic watermark
record (cross-iteration temporal edges, distances, II), the modulo
schedule of the marked design, and the verification triple
``(satisfied, total, log10_pc)``.  The pipeline is seeded entirely by
the author signature, so any drift in the modulo kernel's steady-state
windows, the periodic edge-drawing loops, the min-II search, or the
periodic coincidence model changes the snapshot — byte-pinned numbers,
not just shapes.

Regenerate after an intentional behavior change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_periodic.py

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

import pytest

from repro.cdfg.designs import periodic_design
from repro.core.domain import DomainParams
from repro.core.records import scheduling_watermark_to_dict
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.resilience.pipeline import robust_schedule
from repro.timing.windows import periodic_critical_path_length

GOLDEN_DIR = Path(__file__).parent / "golden" / "periodic"

GOLDEN_AUTHOR = "golden-author"


def _params(horizon: Optional[int] = None, **kwargs) -> SchedulingWMParams:
    return SchedulingWMParams(
        domain=DomainParams(tau=4, min_domain_size=4),
        horizon=horizon,
        **kwargs,
    )


def _pid_config():
    # The PID loop is rigid at its minimum II (the anti-windup cycle
    # pins four operations exactly), so the watermark pays one extra
    # interval and two horizon steps — the II+1 case the E15 gate
    # allows.
    design = periodic_design("pid-cyclic")
    ii = design.view().min_ii() + 1
    horizon = periodic_critical_path_length(design, ii) + 2
    return _params(
        horizon=horizon, eligibility="mobility", min_mobility=1
    ), ii


#: name -> (params, explicit ii or None for the design's minimum II).
CONFIGS = {
    "biquad_cyclic": lambda: (_params(), None),
    "pid_cyclic": _pid_config,
    "echo_cyclic_small": lambda: (
        _params(eligibility="mobility", k=3),
        None,
    ),
}

#: Golden snapshot name -> periodic suite name.
DESIGNS = {
    "biquad_cyclic": "biquad-cyclic",
    "pid_cyclic": "pid-cyclic",
    "echo_cyclic_small": "echo-cyclic-small",
}


def golden_snapshot(name: str) -> Dict[str, Any]:
    """The deterministic periodic pipeline output for one design."""
    design = periodic_design(DESIGNS[name])
    params, ii = CONFIGS[name]()
    marker = SchedulingWatermarker(AuthorSignature(GOLDEN_AUTHOR), params)
    marked, watermark = marker.embed(design, ii=ii)
    result = robust_schedule(marked, horizon=watermark.horizon, ii=watermark.ii)
    verdict = marker.verify(design, result.schedule, watermark)
    return {
        "design": design.name,
        "min_ii": design.view().min_ii(),
        "record": scheduling_watermark_to_dict(watermark),
        "schedule": {
            "scheduler": result.scheduler,
            "ii": result.ii,
            "makespan": result.makespan,
            "start_times": dict(sorted(result.schedule.start_times.items())),
        },
        "verification": {
            "satisfied": verdict.satisfied,
            "total": verdict.total,
            "log10_pc": verdict.log10_pc,
        },
    }


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_golden_periodic(name):
    snapshot = golden_snapshot(name)
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert path.exists(), (
        f"golden file {path} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert snapshot == golden, (
        f"periodic pipeline output for {name!r} drifted from {path}; if "
        f"the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1 "
        f"and review the diff"
    )


def test_golden_periodic_watermarks_meaningful():
    # Every snapshot must stay a real cross-iteration watermark: all
    # edges carry distance >= 1, the schedule satisfies every one, and
    # the achieved II never exceeds the design's minimum by more than 1
    # (the E15 gate).
    for name in DESIGNS:
        golden = json.loads(
            (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")
        )
        record = golden["record"]
        assert record["ii"] is not None
        assert record["distances"], name
        assert all(d >= 1 for d in record["distances"])
        verdict = golden["verification"]
        assert verdict["satisfied"] == verdict["total"] > 0
        assert golden["schedule"]["ii"] <= golden["min_ii"] + 1
