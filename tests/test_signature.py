"""Author signatures: key derivation, domain separation, fingerprints."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.signature import STANDARD_SEED, AuthorSignature


def test_key_is_32_bytes():
    assert len(AuthorSignature("alice").derive_key()) == 32


def test_same_identity_same_key():
    assert (
        AuthorSignature("alice").derive_key()
        == AuthorSignature("alice").derive_key()
    )


def test_different_identities_differ():
    assert (
        AuthorSignature("alice").derive_key()
        != AuthorSignature("bob").derive_key()
    )


def test_purpose_domain_separation():
    sig = AuthorSignature("alice")
    assert sig.derive_key("scheduling") != sig.derive_key("matching")
    assert sig.derive_key("scheduling") != sig.derive_key()


def test_custom_seed_changes_key():
    default = AuthorSignature("alice")
    custom = AuthorSignature("alice", seed=b"other-deployment")
    assert default.derive_key() != custom.derive_key()
    assert default.seed == STANDARD_SEED


def test_empty_identity_rejected():
    with pytest.raises(ValueError):
        AuthorSignature("")


def test_fingerprint_is_short_and_stable():
    sig = AuthorSignature("alice")
    assert sig.fingerprint() == sig.fingerprint()
    assert len(sig.fingerprint()) == 16
    int(sig.fingerprint(), 16)  # hex


def test_signature_is_hashable_value_object():
    assert AuthorSignature("a") == AuthorSignature("a")
    assert hash(AuthorSignature("a")) == hash(AuthorSignature("a"))
    assert AuthorSignature("a") != AuthorSignature("b")


@given(st.text(min_size=1, max_size=80))
def test_any_identity_derives_key(identity):
    key = AuthorSignature(identity).derive_key()
    assert len(key) == 32


@given(
    st.text(min_size=1, max_size=40),
    st.text(min_size=1, max_size=40),
)
def test_distinct_identities_distinct_keys(a, b):
    if a == b:
        return
    assert (
        AuthorSignature(a).derive_key() != AuthorSignature(b).derive_key()
    )
