"""Tamper-resistance model: the §IV-A worked example and its shape."""

from __future__ import annotations

import math

import pytest

from repro.analysis.tamper import TamperModel, paper_example


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            TamperModel(total_pairs=0, k_edges=10)
        with pytest.raises(ValueError):
            TamperModel(total_pairs=10, k_edges=0)
        with pytest.raises(ValueError):
            TamperModel(total_pairs=10, k_edges=5, mean_ratio=1.0)
        with pytest.raises(ValueError):
            TamperModel(10, 5).max_survivors_for(1.5)
        with pytest.raises(ValueError):
            TamperModel(10, 5).coincidence_after(11)


class TestExpectedValueModel:
    def test_paper_example_requires_majority_alteration(self):
        model = paper_example()
        pairs = model.pairs_to_alter(1e-6)
        fraction = model.fraction_to_alter(1e-6)
        # The paper reports 31 729 pairs = 63 %; our explicit model lands
        # in the same regime: the attacker must redo most of the design.
        assert fraction > 0.5
        assert pairs == math.ceil(fraction * 50_000)

    def test_zero_alterations_keep_full_evidence(self):
        model = paper_example()
        assert math.isclose(model.coincidence_after(0), 0.5**100)

    def test_full_alteration_destroys_evidence(self):
        model = paper_example()
        assert math.isclose(model.coincidence_after(50_000), 1.0)

    def test_coincidence_monotone_in_alterations(self):
        model = paper_example()
        values = [model.coincidence_after(m) for m in (0, 10_000, 30_000, 49_999)]
        assert values == sorted(values)

    def test_weak_target_needs_nothing(self):
        model = TamperModel(total_pairs=100, k_edges=2, mean_ratio=0.5)
        # 2 edges give coincidence 0.25 untouched: a target at or below
        # the evidence budget (>= 2 survivors allowed) needs no work...
        assert model.pairs_to_alter(0.25) == 0
        # ...while a target *above* the untouched coincidence forces the
        # attacker to destroy part of the evidence.
        assert model.pairs_to_alter(0.3) > 0

    def test_survivor_budget(self):
        model = paper_example()
        # (1/2)^s = 1e-6  ->  s = 19.93.
        assert math.isclose(
            model.max_survivors_for(1e-6), 19.93, rel_tol=1e-3
        )


class TestBinomialTail:
    def test_tail_probability_bounds(self):
        model = TamperModel(total_pairs=1000, k_edges=20)
        assert model.survivor_tail_probability(0, 1) == 1.0
        assert model.survivor_tail_probability(1000, 1) == 0.0
        mid = model.survivor_tail_probability(500, 10)
        assert 0.0 < mid < 1.0

    def test_tail_monotone_in_alterations(self):
        model = TamperModel(total_pairs=1000, k_edges=20)
        tails = [
            model.survivor_tail_probability(m, 5)
            for m in (100, 400, 700, 950)
        ]
        assert tails == sorted(tails, reverse=True)

    def test_confidence_variant_exceeds_expectation_variant(self):
        model = paper_example()
        expected = model.pairs_to_alter(1e-6)
        confident = model.pairs_to_alter_with_confidence(1e-6, 1e-3)
        assert confident is not None
        # Guaranteeing the outcome takes at least as much work as
        # achieving it in expectation.
        assert confident >= expected * 0.9

    def test_trivial_budget_returns_zero(self):
        model = TamperModel(total_pairs=100, k_edges=2, mean_ratio=0.5)
        assert model.pairs_to_alter_with_confidence(0.25) == 0
