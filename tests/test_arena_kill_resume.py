"""Arena kill-and-resume determinism, end to end through the CLI.

The acceptance bar mirrors the stress runner's
(``test_runner_kill_resume.py``): SIGKILL an arena sweep at an
arbitrary trial boundary, ``localmark arena resume`` it, and get a
``records.json`` — the canonical wall-clock-stripped artifact — byte
for byte identical to an uninterrupted run of the same manifest.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

#: A sweep wide enough (32 trials, adaptive attacks included) that the
#: SIGKILL window spans many genuine trial boundaries.
SWEEP = [
    "--designs", "Linear GE Cntrlr", "--k", "8",
    "--attacks", "reorder,rename,edge_rewire,adaptive_cut",
    "--strengths", "0.5,1.0", "--fault-rates", "0", "--trials", "4",
    "--seed", "3", "--author", "Arena Lab", "--jobs", "2",
]


def arena_args(run_dir):
    return ["arena", "run", "--run-dir", str(run_dir), *SWEEP]


def test_sigkill_then_resume_reproduces_uninterrupted_records(tmp_path):
    # Reference: an uninterrupted run.
    reference_dir = tmp_path / "reference"
    assert main(arena_args(reference_dir)) == 0

    # Victim: the same sweep as a subprocess, SIGKILLed once its
    # journal shows progress (an arbitrary trial boundary).
    victim_dir = tmp_path / "victim"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *arena_args(victim_dir)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = victim_dir / "journal.jsonl"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break  # finished before we could kill it: still valid
            if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
                process.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        else:
            pytest.fail("victim arena sweep never made journal progress")
    finally:
        process.wait(timeout=60)

    # Resume from the run directory alone (the manifest is the
    # checkpoint; no sweep flags needed).
    assert main(["arena", "resume", str(victim_dir)]) == 0
    assert (victim_dir / "records.json").read_bytes() == (
        reference_dir / "records.json"
    ).read_bytes()
    assert (victim_dir / "table.txt").read_bytes() == (
        reference_dir / "table.txt"
    ).read_bytes()

    # Resuming a complete run is idempotent: nothing recomputes, the
    # artifact does not change.
    before = (victim_dir / "records.json").read_bytes()
    assert main(["arena", "resume", str(victim_dir)]) == 0
    assert (victim_dir / "records.json").read_bytes() == before

    # Every planned trial is accounted for exactly once.
    records = json.loads(
        (victim_dir / "records.json").read_text(encoding="utf-8")
    )
    assert [r["index"] for r in records] == list(range(32))
    assert all(r["outcome"] == "completed" for r in records)
    manifest = json.loads(
        (victim_dir / "manifest.json").read_text(encoding="utf-8")
    )
    assert manifest["status"] == "complete"
