"""Property and concurrency tests for the content-addressed cache.

Covers the cache-key contract (stable under presentational reordering
and IO round-trips, sensitive to every identity-relevant field), the
LRU byte/entry caps, healing of torn on-disk entries, and the thread-
and process-safety of single-flight coalescing plus the atomic disk
tier.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.io import from_dict, to_canonical_json, to_dict, to_json
from repro.service.cache import (
    ResultCache,
    SingleFlight,
    canonical_json,
    job_key,
)


def _shuffled_payload(payload, seed):
    rng = random.Random(seed)
    nodes = list(payload["nodes"])
    edges = list(payload["edges"])
    rng.shuffle(nodes)
    rng.shuffle(edges)
    return {"name": payload["name"], "nodes": nodes, "edges": edges}


# ----------------------------------------------------------------------
# key contract
# ----------------------------------------------------------------------
@given(st.integers(0, 2**31), st.integers(0, 2**31))
@settings(max_examples=25)
def test_key_stable_under_reordering_and_roundtrip(seed, shuffle_seed):
    design = random_layered_cdfg(10 + seed % 25, seed)
    payload = to_dict(design)
    reference = job_key("schedule", {"design": payload})

    # Node/edge order in the JSON is presentational: any permutation
    # deserializes to the same graph, so it must hash to the same key.
    shuffled = _shuffled_payload(payload, shuffle_seed)
    assert job_key("schedule", {"design": shuffled}) == reference

    # A full (de)serialization round trip — including through a shuffled
    # payload, which changes insertion order — is also key-stable.
    assert (
        job_key("schedule", {"design": to_dict(from_dict(shuffled))})
        == reference
    )
    assert to_canonical_json(from_dict(shuffled)) == to_canonical_json(design)


def test_key_sensitive_to_identity_fields():
    design = to_dict(random_layered_cdfg(20, 7))
    base = job_key("schedule", {"design": design})
    assert job_key("embed", {"design": design}) != base
    assert job_key("schedule", {"design": design, "horizon": 9}) != base
    mutated = json.loads(json.dumps(design))
    mutated["nodes"][0]["latency"] += 1
    assert job_key("schedule", {"design": mutated}) != base


def test_key_ignores_execution_hooks():
    design = to_dict(random_layered_cdfg(15, 3))
    assert job_key("schedule", {"design": design}) == job_key(
        "schedule", {"design": design, "_hook": {"sleep_s": 1}}
    )


def test_key_stable_across_indent_styles(tmp_path):
    design = random_layered_cdfg(18, 5)
    pretty = json.loads(to_json(design, indent=2))
    compact = json.loads(to_canonical_json(design))
    assert job_key("verify", {"design": pretty}) == job_key(
        "verify", {"design": compact}
    )


# ----------------------------------------------------------------------
# LRU tier caps
# ----------------------------------------------------------------------
def test_lru_evicts_under_byte_cap():
    value = {"blob": "x" * 100}
    size = len(canonical_json(value).encode())
    cache = ResultCache(max_entries=100, max_bytes=3 * size + 1)
    for i in range(5):
        cache.put(f"k{i}", value)
    stats = cache.stats()
    assert stats["memory_entries"] == 3
    assert stats["memory_bytes"] <= cache.max_bytes
    assert cache.get("k0") is None and cache.get("k1") is None
    assert cache.get("k4") == value


def test_lru_evicts_under_entry_cap_and_refreshes_recency():
    cache = ResultCache(max_entries=2, max_bytes=1 << 20)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") == {"v": 1}  # refresh: now b is the LRU entry
    cache.put("c", {"v": 3})
    assert cache.get("b") is None
    assert cache.get("a") == {"v": 1}
    assert cache.get("c") == {"v": 3}


def test_oversized_value_skips_memory_but_reaches_disk(tmp_path):
    cache = ResultCache(max_entries=8, max_bytes=64, directory=tmp_path)
    big = {"blob": "y" * 1000}
    cache.put("big", big)
    assert cache.stats()["memory_entries"] == 0
    assert ResultCache(directory=tmp_path).get("big") == big


# ----------------------------------------------------------------------
# disk tier: healing and persistence
# ----------------------------------------------------------------------
def test_disk_tier_survives_process_restart(tmp_path):
    ResultCache(directory=tmp_path).put("k", {"v": 42})
    fresh = ResultCache(directory=tmp_path)
    assert fresh.get("k") == {"v": 42}
    # Promotion: the hit now also lives in the fresh memory tier.
    assert fresh.stats()["memory_entries"] == 1


def _entry_files(directory: Path):
    return sorted((directory / "objects").rglob("*.json"))


def test_torn_disk_entry_healed_on_read(tmp_path):
    cache = ResultCache(directory=tmp_path)
    cache.put("deadbeef", {"v": 1})
    (path,) = _entry_files(tmp_path)
    # Simulate a torn write from a non-atomic writer: truncate mid-byte.
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    cache.clear_memory()
    assert cache.get("deadbeef") is None  # healed: detected + deleted
    assert not path.exists()
    cache.put("deadbeef", {"v": 2})  # and the slot is usable again
    cache.clear_memory()
    assert cache.get("deadbeef") == {"v": 2}


def test_foreign_disk_entry_healed_on_read(tmp_path):
    cache = ResultCache(directory=tmp_path)
    cache.put("cafe00", {"v": 1})
    (path,) = _entry_files(tmp_path)
    path.write_text(json.dumps({"key": "someone-else", "result": {}}))
    cache.clear_memory()
    assert cache.get("cafe00") is None
    assert not path.exists()


# ----------------------------------------------------------------------
# single-flight: thread and process safety
# ----------------------------------------------------------------------
def test_single_flight_coalesces_threads():
    cache = ResultCache()
    calls = []
    gate = threading.Event()

    def supplier():
        gate.wait(5)
        calls.append(1)
        return {"v": "shared"}

    results = []
    threads = [
        threading.Thread(
            target=lambda: results.append(
                cache.get_or_compute("k", supplier)
            )
        )
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    gate.set()
    for thread in threads:
        thread.join(10)
    assert len(calls) == 1, "supplier must run exactly once"
    assert sorted(how for _, how in results) == ["coalesced"] * 7 + ["miss"]
    assert all(value == {"v": "shared"} for value, _ in results)
    # Memoized: later callers are plain hits.
    assert cache.get_or_compute("k", supplier) == ({"v": "shared"}, "hit")
    assert len(calls) == 1


def test_single_flight_propagates_errors_then_recovers():
    flight = SingleFlight()
    boom = RuntimeError("boom")

    def failing():
        raise boom

    with pytest.raises(RuntimeError):
        flight.run("k", failing)
    # The key is released: a later call computes afresh.
    assert flight.run("k", lambda: 7) == (7, True)


def _process_writer(directory: str, key: str, value: int) -> None:
    ResultCache(directory=directory).put(key, {"v": value, "pad": "z" * 512})


def test_concurrent_process_writers_leave_whole_entry(tmp_path):
    """Cross-process, the disk tier relies on atomic renames: racing
    writers of one key are benign — the survivor is one whole entry."""
    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_process_writer, args=(str(tmp_path), "k", i))
        for i in range(4)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(30)
        assert worker.exitcode == 0
    result = ResultCache(directory=tmp_path).get("k")
    assert result is not None and result["v"] in range(4)
    for path in _entry_files(tmp_path):
        payload = json.loads(path.read_text())
        assert payload["key"] == "k"
