"""Detection: record replay, signature re-derivation, embedded-IP scan."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import embed_in_host, random_layered_cdfg
from repro.core.attacks import apply_renaming, rename_attack
from repro.core.detector import (
    detect_by_rederivation,
    scan_for_watermark,
    verify_by_record,
)
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.schedule import Schedule


@pytest.fixture
def params():
    # k=6 gives enough constraints that coincidental full satisfaction
    # by a clean schedule or foreign signature is very unlikely.
    return SchedulingWMParams(
        domain=DomainParams(tau=5, min_domain_size=8), k=6
    )


@pytest.fixture
def marked_design(alice, params):
    """A watermarked random design with its schedule."""
    design = random_layered_cdfg(90, seed=42)
    marker = SchedulingWatermarker(alice, params)
    marked, wm = marker.embed(design)
    schedule = list_schedule(marked)
    return design, marked, wm, schedule


class TestVerifyByRecord:
    def test_detects_marked_schedule(self, marked_design, alice):
        design, _, wm, schedule = marked_design
        result = verify_by_record(design, schedule, wm, alice)
        assert result.detected

    def test_clean_schedule_not_fully_matched(self, marked_design, alice):
        design, _, wm, _ = marked_design
        clean = list_schedule(design)
        result = verify_by_record(design, clean, wm, alice)
        assert result.fraction < 1.0


class TestRederivation:
    def test_author_rederives(self, marked_design, alice, params):
        design, _, wm, schedule = marked_design
        result = detect_by_rederivation(design, schedule, alice, params)
        assert result.detected
        assert result.total == wm.k

    def test_foreign_signature_low_confidence(
        self, marked_design, mallory, params
    ):
        design, _, _, schedule = marked_design
        result = detect_by_rederivation(design, schedule, mallory, params)
        # Mallory's derived constraints may hold by luck, but the
        # evidence is statistically weak compared to a real mark.
        assert result.confidence < 0.999 or result.fraction < 1.0


class TestScan:
    def test_finds_root_in_original(self, marked_design, alice, params):
        design, _, wm, schedule = marked_design
        hits = scan_for_watermark(
            design, schedule, wm, alice, params.domain
        )
        assert hits
        assert hits[0].result.fraction == 1.0
        assert wm.root in [h.root for h in hits]

    def test_finds_watermark_in_embedded_core(
        self, marked_design, alice, params
    ):
        design, marked, wm, schedule = marked_design
        host = embed_in_host(marked, host_ops=200, seed=7, prefix="core/")
        # The misappropriated system is rescheduled as a whole, but the
        # thief reuses the core's relative schedule: model by shifting.
        host_schedule = list_schedule(host)
        hits = scan_for_watermark(
            host, host_schedule, wm, alice, params.domain
        )
        assert hits, "watermark must be detectable inside the host"
        assert f"core/{wm.root}" in [h.root for h in hits]

    def test_survives_renaming(self, marked_design, alice, params):
        design, marked, wm, schedule = marked_design
        renamed, mapping = rename_attack(marked, seed=3)
        renamed_schedule = apply_renaming(schedule, mapping)
        hits = scan_for_watermark(
            renamed.without_temporal_edges(),
            renamed_schedule,
            wm,
            alice,
            params.domain,
        )
        assert hits
        assert mapping[wm.root] in [h.root for h in hits]

    def test_no_hits_on_unrelated_design(self, marked_design, alice, params):
        _, _, wm, _ = marked_design
        other = random_layered_cdfg(90, seed=999)
        other_schedule = list_schedule(other)
        hits = scan_for_watermark(
            other, other_schedule, wm, alice, params.domain
        )
        # Full-satisfaction hits on an unrelated design are possible but
        # must be rare; certainly the fraction-1.0 hit count should be
        # small relative to the 90 candidate roots.
        assert len(hits) < 10

    def test_min_fraction_filter(self, marked_design, alice, params):
        design, _, wm, schedule = marked_design
        all_hits = scan_for_watermark(
            design, schedule, wm, alice, params.domain, min_fraction=0.0
        )
        strict = scan_for_watermark(
            design, schedule, wm, alice, params.domain, min_fraction=1.0
        )
        assert len(strict) <= len(all_hits)


class TestCutDesign:
    def test_partition_detection(self, alice, params):
        # Only the locality survives: detection still works because the
        # watermark is local (§III).
        design = random_layered_cdfg(90, seed=42)
        marker = SchedulingWatermarker(alice, params)
        marked, wm = marker.embed(design)
        schedule = list_schedule(marked)
        keep = set(wm.cone) | set(design.primary_inputs)
        # Close the cut under fanin so the subgraph is well-formed.
        for node in list(keep):
            keep |= design.fanin_tree(node, 99)
        cut = marked.subgraph(keep, name="stolen-partition")
        cut_schedule = Schedule(
            {n: t for n, t in schedule.start_times.items() if n in keep}
        )
        result = verify_by_record(
            cut.without_temporal_edges(), cut_schedule, wm, alice
        )
        assert result.detected
