"""Golden-file regression tests for the Table I/II benchmark paths.

Each golden file in ``tests/golden/`` snapshots the full deterministic
output of the embed → schedule → exact-``P_c`` pipeline on one small
design: the watermark record, the list schedule of the marked design,
and the exact schedule counts behind ``P_c``.  The pipeline is seeded
entirely by the author signature (RC4 keystream), so any drift in
domain selection, eligibility, edge choice, scheduling, or enumeration
changes the snapshot — these tests pin the *numbers*, not just the
shapes.

Regenerate after an intentional behavior change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.designs.hyper_suite import HYPER_SUITE
from repro.cdfg.graph import CDFG
from repro.core.domain import DomainParams
from repro.core.records import scheduling_watermark_to_dict
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.list_scheduler import list_schedule
from repro.timing.windows import critical_path_length

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The embedding configuration every snapshot uses (the Fig. 3 /
#: Table I parameterization).
GOLDEN_AUTHOR = "golden-author"
GOLDEN_PARAMS = SchedulingWMParams(
    domain=DomainParams(tau=4, min_domain_size=5, include_probability=0.9),
    k=4,
)


def _hyper(name: str) -> CDFG:
    for spec in HYPER_SUITE:
        if spec.factory().name == name:
            return spec.factory()
    raise KeyError(name)


#: Snapshotted designs: the paper's motivational example plus the
#: Table II designs small enough for exact schedule enumeration.
DESIGNS = {
    "iir4_parallel": fourth_order_parallel_iir,
    "modem_filter": lambda: _hyper("modem_filter"),
    "volterra_2": lambda: _hyper("volterra_2"),
}


def golden_snapshot(design: CDFG) -> Dict[str, Any]:
    """The full deterministic pipeline output for one design."""
    marker = SchedulingWatermarker(
        AuthorSignature(GOLDEN_AUTHOR), GOLDEN_PARAMS
    )
    marked, watermark = marker.embed(design)
    schedule = list_schedule(marked)
    exact = marker.exact_coincidence(design.without_temporal_edges(), watermark)
    result = marker.verify(design.without_temporal_edges(), schedule, watermark)
    return {
        "design": design.name,
        "critical_path": critical_path_length(design),
        "record": scheduling_watermark_to_dict(watermark),
        "schedule": dict(sorted(schedule.start_times.items())),
        "makespan": schedule.makespan(marked),
        "coincidence": {
            "without_constraints": exact.without_constraints,
            "with_constraints": exact.with_constraints,
            "pc": exact.pc,
        },
        "verification": {
            "satisfied": result.satisfied,
            "total": result.total,
            "log10_pc": result.log10_pc,
        },
    }


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_golden(name):
    snapshot = golden_snapshot(DESIGNS[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert path.exists(), (
        f"golden file {path} missing; regenerate with "
        f"REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert snapshot == golden, (
        f"pipeline output for {name!r} drifted from {path}; if the "
        f"change is intentional, regenerate with REPRO_REGEN_GOLDEN=1 "
        f"and review the diff"
    )


def test_golden_watermark_detected():
    # The snapshots must stay meaningful: every golden verification
    # verdict satisfies all constraints with a small P_c.
    for name in DESIGNS:
        golden = json.loads(
            (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")
        )
        verdict = golden["verification"]
        assert verdict["satisfied"] == verdict["total"] > 0
        assert golden["coincidence"]["pc"] < 0.1
