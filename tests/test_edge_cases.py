"""Edge cases and lesser-traveled paths across the library."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType, ResourceClass
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import (
    CDFGError,
    ConstraintEncodingError,
    InfeasibleScheduleError,
    ReproError,
    SchedulingError,
    WatermarkError,
)
from repro.scheduling.enumeration import transitive_reduction_edges
from repro.scheduling.exact import exact_schedule, minimum_cost_schedule
from repro.scheduling.resources import ResourceSet, minimum_units, usage_of
from repro.timing.windows import critical_path_length


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (
            CDFGError,
            SchedulingError,
            InfeasibleScheduleError,
            WatermarkError,
            ConstraintEncodingError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_single_catch_suffices(self, iir4):
        with pytest.raises(ReproError):
            iir4.add_operation("A1", OpType.ADD)  # duplicate


class TestResourcesHelpers:
    def test_usage_of_counts_by_class(self):
        usage = usage_of(
            {"a": OpType.ADD, "b": OpType.SUB, "m": OpType.MUL, "x": OpType.INPUT}
        )
        assert usage == {
            ResourceClass.ALU: 2,
            ResourceClass.MULTIPLIER: 1,
        }

    def test_minimum_units_takes_peaks(self):
        peaks = minimum_units(
            {
                0: {ResourceClass.ALU: 3},
                1: {ResourceClass.ALU: 1, ResourceClass.MULTIPLIER: 2},
            }
        )
        assert peaks == {ResourceClass.ALU: 3, ResourceClass.MULTIPLIER: 2}

    def test_resource_set_rejects_zero(self):
        with pytest.raises(ValueError):
            ResourceSet({ResourceClass.ALU: 0})

    def test_admits(self):
        rs = ResourceSet({ResourceClass.ALU: 2})
        assert rs.admits({ResourceClass.ALU: 2})
        assert not rs.admits({ResourceClass.ALU: 3})
        assert rs.admits({ResourceClass.MEMORY: 99})  # unconstrained


class TestTransitiveReduction:
    def test_redundant_edge_removed(self):
        g = CDFG()
        for name in ("a", "b", "c"):
            g.add_operation(name, OpType.ADD)
        g.add_data_edge("a", "b")
        g.add_data_edge("b", "c")
        g.add_control_edge("a", "c")  # implied by a->b->c
        assert set(transitive_reduction_edges(g)) == {("a", "b"), ("b", "c")}


class TestExactSchedulerEdges:
    def test_budget_exhaustion_raises(self, iir4):
        # Budget exhaustion is NOT an infeasibility verdict: it raises
        # the dedicated BudgetExceededError so callers can fall back.
        from repro.errors import BudgetExceededError

        with pytest.raises(BudgetExceededError, match="budget"):
            exact_schedule(
                iir4,
                horizon=critical_path_length(iir4) + 2,
                resources=ResourceSet({ResourceClass.MULTIPLIER: 1}),
                node_limit=3,
            )

    def test_proven_infeasibility_still_raises_infeasible(self, chain5):
        # A genuinely impossible horizon exhausts the search space and
        # keeps raising InfeasibleScheduleError (windows empty first).
        from repro.scheduling.resources import UNLIMITED

        with pytest.raises(InfeasibleScheduleError):
            exact_schedule(chain5, horizon=3, resources=UNLIMITED)

    def test_minimum_cost_anytime_fallback(self, iir4):
        # A tiny node budget forces the anytime path: the FDS incumbent
        # is returned instead of raising.
        schedule, cost = minimum_cost_schedule(
            iir4, critical_path_length(iir4) + 1, node_limit=5
        )
        schedule.verify(iir4)
        assert cost > 0


class TestEmbedUntil:
    def test_stops_at_target(self, alice):
        graph = random_layered_cdfg(150, seed=31, num_layers=25)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=4
        )
        marker = SchedulingWatermarker(alice, params)
        marked, marks = marker.embed_until(graph, target_edges=6)
        total = sum(m.k for m in marks)
        assert total >= 6
        assert len(marked.temporal_edges) == total

    def test_respects_max_marks(self, alice):
        graph = random_layered_cdfg(150, seed=31, num_layers=25)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=2
        )
        marker = SchedulingWatermarker(alice, params)
        _, marks = marker.embed_until(graph, target_edges=999, max_marks=3)
        assert len(marks) <= 3

    def test_marks_are_disjointly_keyed(self, alice):
        graph = random_layered_cdfg(150, seed=31, num_layers=25)
        params = SchedulingWMParams(
            domain=DomainParams(tau=5, min_domain_size=8), k=3
        )
        marker = SchedulingWatermarker(alice, params)
        _, marks = marker.embed_until(graph, target_edges=6)
        assert len(marks) >= 2
        edge_sets = [set(m.temporal_edges) for m in marks]
        for i, a in enumerate(edge_sets):
            for b in edge_sets[i + 1:]:
                assert a != b


class TestGracefulDegradation:
    def test_oversized_k_falls_back(self, alice, iir4):
        # K far beyond what any locality offers: embed still produces
        # some evidence instead of failing.
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=5), k=50
        )
        _, wm = SchedulingWatermarker(alice, params).embed(iir4)
        assert 1 <= wm.k < 50

    def test_solutions_count_limit(self, alice, iir4):
        from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams

        c = critical_path_length(iir4)
        marker = MatchingWatermarker(
            alice, params=MatchingWMParams(z=1, horizon=2 * c)
        )
        _, wm = marker.embed(iir4)
        with pytest.raises(ConstraintEncodingError, match="limit"):
            marker.solutions_count(iir4, wm.enforced[0], limit=1)


class TestBuilderChain:
    def test_long_chain_unique_names(self):
        b = CDFGBuilder()
        x = b.input("x")
        b.chain(x, [OpType.ADD] * 10, stem="c1")
        y = b.input("y")
        b.chain(y, [OpType.ADD] * 10, stem="c2")
        g = b.build()
        assert len(g.schedulable_operations) == 20


class TestVLIWGuards:
    def test_zero_op_program(self):
        from repro.vliw.compiler import compile_block
        from repro.vliw.machine import paper_machine

        g = CDFG("empty")
        g.add_operation("x", OpType.INPUT)
        result = compile_block(g, paper_machine())
        assert result.cycles == 0
        assert result.ilp == 0.0

    def test_single_issue_machine(self):
        from repro.vliw.compiler import compile_block
        from repro.vliw.machine import VLIWMachine

        b = CDFGBuilder()
        x = b.input("x")
        for i in range(4):
            b.op(f"a{i}", OpType.ADD, x)
        g = b.build()
        machine = VLIWMachine(
            issue_width=1, units={ResourceClass.ALU: 1}
        )
        assert compile_block(g, machine).cycles == 4
