"""CLI: the full shell workflow on JSON artifacts."""

from __future__ import annotations

import json

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.io import save
from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.json"
    save(fourth_order_parallel_iir(), path)
    return str(path)


@pytest.fixture
def workflow(tmp_path, design_file):
    """Run embed + schedule, return all artifact paths."""
    marked = str(tmp_path / "marked.json")
    record = str(tmp_path / "wm.json")
    schedule = str(tmp_path / "sched.json")
    assert (
        main(
            [
                "embed",
                "--design", design_file,
                "--author", "Alice Inc.",
                "--out", marked,
                "--record", record,
                "--k", "3",
                "--tau", "4",
            ]
        )
        == 0
    )
    assert (
        main(["schedule", "--design", marked, "--out", schedule]) == 0
    )
    return design_file, marked, record, schedule


def test_info(design_file, capsys):
    assert main(["info", "--design", design_file]) == 0
    out = capsys.readouterr().out
    assert "critical path: 6" in out
    assert "operations:    17" in out


def test_embed_produces_artifacts(workflow, tmp_path):
    _, marked, record, _ = workflow
    marked_payload = json.loads(open(marked).read())
    assert any(e["kind"] == "temporal" for e in marked_payload["edges"])
    record_payload = json.loads(open(record).read())
    assert record_payload["kind"] == "scheduling"


def test_verify_detects(workflow, capsys):
    design, _, record, schedule = workflow
    assert (
        main(
            [
                "verify",
                "--design", design,
                "--schedule", schedule,
                "--record", record,
            ]
        )
        == 0
    )
    assert "DETECTED" in capsys.readouterr().out


def test_verify_rejects_clean_schedule(workflow, tmp_path, design_file):
    design, _, record, _ = workflow
    clean_sched = str(tmp_path / "clean.json")
    assert (
        main(["schedule", "--design", design_file, "--out", clean_sched])
        == 0
    )
    assert (
        main(
            [
                "verify",
                "--design", design,
                "--schedule", clean_sched,
                "--record", record,
            ]
        )
        == 1
    )


def test_detect_finds_root(workflow, capsys):
    design, _, record, schedule = workflow
    assert (
        main(
            [
                "detect",
                "--design", design,
                "--schedule", schedule,
                "--record", record,
                "--author", "Alice Inc.",
            ]
        )
        == 0
    )
    assert "root" in capsys.readouterr().out


def test_detect_misses_unrelated_design(workflow, tmp_path, capsys):
    _, _, record, schedule = workflow
    other = tmp_path / "other.json"
    save(random_layered_cdfg(40, seed=77), other)
    other_sched = str(tmp_path / "osched.json")
    main(["schedule", "--design", str(other), "--out", other_sched])
    code = main(
        [
            "detect",
            "--design", str(other),
            "--schedule", other_sched,
            "--record", record,
            "--author", "Alice Inc.",
        ]
    )
    assert code in (0, 1)  # tiny marks can coincide; must not crash


def test_force_directed_scheduler_option(workflow, tmp_path):
    _, marked, _, _ = workflow
    out = str(tmp_path / "fds.json")
    assert (
        main(
            [
                "schedule",
                "--design", marked,
                "--out", out,
                "--scheduler", "force-directed",
            ]
        )
        == 0
    )
    payload = json.loads(open(out).read())
    assert payload["start_times"]


def test_missing_file_is_usage_error(capsys):
    assert main(["info", "--design", "/nonexistent/x.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_bad_record_kind(workflow, tmp_path, capsys):
    design, _, _, schedule = workflow
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"kind": "alien"}))
    assert (
        main(
            [
                "verify",
                "--design", design,
                "--schedule", schedule,
                "--record", str(bad),
            ]
        )
        == 2
    )
