"""Scheduling watermark: Fig. 2 protocol end to end."""

from __future__ import annotations

import pytest

from repro.cdfg.generators import random_layered_cdfg
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import (
    SchedulingWatermarker,
    SchedulingWMParams,
)
from repro.crypto.signature import AuthorSignature
from repro.errors import DomainSelectionError
from repro.scheduling.list_scheduler import list_schedule
from repro.timing.paths import laxity
from repro.timing.windows import critical_path_length, scheduling_windows


@pytest.fixture
def marker(alice):
    return SchedulingWatermarker(
        alice,
        SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=5),
            epsilon=0.15,
        ),
    )


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulingWMParams(k_fraction=0.0)
        with pytest.raises(ValueError):
            SchedulingWMParams(k=0)
        with pytest.raises(ValueError):
            SchedulingWMParams(epsilon=1.0)
        with pytest.raises(ValueError):
            SchedulingWMParams(tau_prime_min=1)


class TestEmbed:
    def test_embeds_temporal_edges(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        assert wm.k >= 1
        assert set(marked.temporal_edges) == set(wm.temporal_edges)
        assert iir4.temporal_edges == []  # original untouched

    def test_edges_inside_domain(self, iir4, marker):
        _, wm = marker.embed(iir4)
        for src, dst in wm.temporal_edges:
            assert src in wm.selected_nodes
            assert dst in wm.selected_nodes

    def test_critical_path_unchanged(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        assert critical_path_length(marked) == critical_path_length(iir4)
        assert wm.critical_path == critical_path_length(iir4)

    def test_eligible_nodes_have_slack(self, iir4, marker):
        _, wm = marker.embed(iir4)
        lax = laxity(iir4)
        c = critical_path_length(iir4)
        threshold = c * (1 - marker.params.epsilon)
        for node in wm.eligible_nodes:
            assert lax[node] <= threshold

    def test_eligible_windows_overlap(self, iir4, marker):
        _, wm = marker.embed(iir4)
        windows = scheduling_windows(iir4, wm.horizon)
        from repro.timing.windows import windows_overlap

        for node in wm.eligible_nodes:
            assert any(
                windows_overlap(windows[node], windows[other])
                for other in wm.eligible_nodes
                if other != node
            )

    def test_deterministic(self, iir4, alice):
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=5)
        )
        wm1 = SchedulingWatermarker(alice, params).embed(iir4)[1]
        wm2 = SchedulingWatermarker(alice, params).embed(iir4)[1]
        assert wm1.temporal_edges == wm2.temporal_edges
        assert wm1.root == wm2.root

    def test_signature_specific(self, iir4):
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=5)
        )
        marks = {
            SchedulingWatermarker(
                AuthorSignature(f"author-{i}"), params
            ).embed(iir4)[1].temporal_edges
            for i in range(8)
        }
        assert len(marks) > 1

    def test_edge_ids_match_cone_positions(self, iir4, marker):
        _, wm = marker.embed(iir4)
        for (src, dst), (src_id, dst_id) in zip(
            wm.temporal_edges, wm.temporal_edge_ids
        ):
            assert wm.cone[src_id] == src
            assert wm.cone[dst_id] == dst

    def test_k_override(self, iir4, alice):
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=5), k=1
        )
        _, wm = SchedulingWatermarker(alice, params).embed(iir4)
        assert wm.k == 1

    def test_forced_root(self, iir4, alice):
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=4)
        )
        _, wm = SchedulingWatermarker(alice, params).embed(
            iir4, forced_root="A9"
        )
        assert wm.root == "A9"

    def test_impossible_domain_raises(self, chain5, alice):
        # A pure chain has zero scheduling freedom: nothing is eligible.
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=3)
        )
        with pytest.raises(DomainSelectionError):
            SchedulingWatermarker(alice, params).embed(chain5)

    def test_marked_schedulable(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        schedule = list_schedule(marked, horizon=wm.horizon)
        schedule.verify(marked, horizon=wm.horizon)


class TestVerify:
    def test_own_schedule_detected(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        schedule = list_schedule(marked)
        result = marker.verify(iir4, schedule, wm)
        assert result.detected
        assert result.fraction == 1.0
        assert result.log10_pc < 0

    def test_clean_schedule_mostly_unsatisfied(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        clean = list_schedule(iir4)
        result = marker.verify(iir4, clean, wm)
        assert result.fraction < 1.0

    def test_confidence_monotone_in_satisfied(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        schedule = list_schedule(marked)
        full = marker.verify(iir4, schedule, wm)
        assert 0.0 < full.confidence <= 1.0

    def test_missing_nodes_tolerated(self, iir4, marker):
        # Verification against a cut design: nodes outside the cut
        # simply cannot contribute evidence.
        marked, wm = marker.embed(iir4)
        schedule = list_schedule(marked)
        cut = iir4.subgraph(
            [n for n in iir4.operations if n not in ("C1", "C2")]
        )
        result = marker.verify(cut, schedule, wm)
        assert result.total == wm.k

    def test_detected_at_threshold(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        schedule = list_schedule(marked)
        result = marker.verify(iir4, schedule, wm)
        assert result.detected_at(0.0)
        assert not result.detected_at(1.1)


class TestExactCoincidence:
    def test_counts_shrink_with_constraints(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        exact = marker.exact_coincidence(iir4, wm)
        assert 0 < exact.with_constraints < exact.without_constraints
        assert 0.0 < exact.pc < 1.0
        assert exact.authorship_proof == 1.0 - exact.pc


class TestEmbedMany:
    def test_multiple_independent_marks(self, alice):
        g = random_layered_cdfg(80, seed=11)
        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=4)
        )
        marker = SchedulingWatermarker(alice, params)
        marked, marks = marker.embed_many(g, 3)
        assert len(marks) >= 2
        assert len(marked.temporal_edges) == sum(m.k for m in marks)
        # Each mark is verifiable on the final design.
        schedule = list_schedule(marked)
        for mark in marks:
            result = marker.verify(g, schedule, mark)
            assert result.fraction == 1.0
