"""Keyed bitstream: determinism, bounds, selection primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bitstream import BitStream
from repro.crypto.signature import AuthorSignature


def fresh(identity: str = "alice", purpose: str = "t") -> BitStream:
    return BitStream(AuthorSignature(identity), purpose)


def test_bits_are_binary():
    bs = fresh()
    assert set(bs.bit() for _ in range(256)) == {0, 1}


def test_deterministic_across_instances():
    stream_a, stream_b = fresh(), fresh()
    a = [stream_a.bit() for _ in range(128)]
    b = [stream_b.bit() for _ in range(128)]
    assert a == b


def test_purpose_separates_streams():
    stream_a = BitStream(AuthorSignature("x"), "p1")
    stream_b = BitStream(AuthorSignature("x"), "p2")
    a = [stream_a.bit() for _ in range(64)]
    b = [stream_b.bit() for _ in range(64)]
    assert a != b


def test_identity_separates_streams():
    stream_a, stream_b = fresh("alice"), fresh("bob")
    a = [stream_a.bit() for _ in range(64)]
    b = [stream_b.bit() for _ in range(64)]
    assert a != b


def test_bits_msb_first():
    bs1 = fresh()
    value = bs1.bits(8)
    bs2 = fresh()
    expected = 0
    for _ in range(8):
        expected = (expected << 1) | bs2.bit()
    assert value == expected


def test_bits_zero():
    assert fresh().bits(0) == 0


def test_bits_negative_rejected():
    with pytest.raises(ValueError):
        fresh().bits(-1)


def test_bits_consumed_counter():
    bs = fresh()
    bs.bits(13)
    assert bs.bits_consumed == 13


def test_randint_bounds():
    bs = fresh()
    for bound in (1, 2, 3, 7, 10, 100):
        for _ in range(50):
            assert 0 <= bs.randint(bound) < bound


def test_randint_one_consumes_nothing():
    bs = fresh()
    assert bs.randint(1) == 0
    assert bs.bits_consumed == 0


def test_randint_invalid_bound():
    with pytest.raises(ValueError):
        fresh().randint(0)


def test_randint_covers_all_values():
    bs = fresh()
    seen = {bs.randint(5) for _ in range(300)}
    assert seen == {0, 1, 2, 3, 4}


def test_randint_roughly_uniform():
    bs = fresh()
    counts = [0] * 4
    for _ in range(4000):
        counts[bs.randint(4)] += 1
    assert min(counts) > 800  # expectation 1000, generous slack


def test_bernoulli_extremes():
    bs = fresh()
    assert not any(bs.bernoulli(0.0) for _ in range(50))
    assert all(bs.bernoulli(1.0) for _ in range(50))


def test_bernoulli_rate():
    bs = fresh()
    hits = sum(bs.bernoulli(0.25) for _ in range(4000))
    assert 800 < hits < 1200


def test_bernoulli_out_of_range():
    with pytest.raises(ValueError):
        fresh().bernoulli(1.5)
    with pytest.raises(ValueError):
        fresh().bernoulli(-0.1)


def test_choice_single():
    assert fresh().choice(["only"]) == "only"


def test_choice_empty_rejected():
    with pytest.raises(ValueError):
        fresh().choice([])


def test_choice_deterministic():
    items = list("abcdefgh")
    a = [fresh().choice(items) for _ in range(1)]
    b = [fresh().choice(items) for _ in range(1)]
    assert a == b


def test_ordered_selection_distinct_and_subset():
    items = list(range(20))
    picked = fresh().ordered_selection(items, 7)
    assert len(picked) == 7
    assert len(set(picked)) == 7
    assert set(picked) <= set(items)


def test_ordered_selection_full_is_permutation():
    items = list(range(10))
    perm = fresh().shuffle(items)
    assert sorted(perm) == items


def test_ordered_selection_too_many_rejected():
    with pytest.raises(ValueError):
        fresh().ordered_selection([1, 2], 3)


def test_ordered_selection_negative_rejected():
    with pytest.raises(ValueError):
        fresh().ordered_selection([1, 2], -1)


def test_ordered_selection_deterministic():
    items = list(range(30))
    assert fresh().ordered_selection(items, 10) == fresh().ordered_selection(
        items, 10
    )


def test_ordered_selection_order_sensitive_to_identity():
    items = list(range(30))
    a = fresh("alice").ordered_selection(items, 10)
    b = fresh("bob").ordered_selection(items, 10)
    assert a != b


@given(st.integers(2, 64))
@settings(max_examples=30)
def test_randint_property(bound):
    bs = fresh("prop")
    assert all(0 <= bs.randint(bound) < bound for _ in range(20))


@given(st.lists(st.integers(), min_size=1, max_size=30, unique=True))
@settings(max_examples=30)
def test_selection_property(items):
    bs = fresh("prop2")
    k = bs.randint(len(items) + 1)
    picked = bs.ordered_selection(items, k)
    assert len(picked) == k
    assert len(set(picked)) == k
