"""CDFG builder: fluent construction and validation."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.ops import OpType
from repro.errors import CDFGError


def test_value_flow():
    b = CDFGBuilder("t")
    x = b.input("x")
    y = b.input("y")
    s = b.add(x, y, "s")
    p = b.mul(s, y, "p")
    out = b.output(p, "out")
    g = b.build()
    assert g.op("s") is OpType.ADD
    assert g.op("p") is OpType.MUL
    assert g.op(out) is OpType.OUTPUT
    assert set(g.data_edges) == {
        ("x", "s"),
        ("y", "s"),
        ("s", "p"),
        ("y", "p"),
        ("p", "out"),
    }


def test_auto_names_are_unique():
    b = CDFGBuilder()
    names = {b.input() for _ in range(10)}
    assert len(names) == 10


def test_convenience_ops():
    b = CDFGBuilder()
    x = b.input("x")
    c = b.const_mul(x)
    d = b.sub(c, x)
    g = b.build()
    assert g.op(c) is OpType.CONST_MUL
    assert g.op(d) is OpType.SUB


def test_chain_helper():
    b = CDFGBuilder()
    x = b.input("x")
    tail = b.chain(x, [OpType.ADD, OpType.CONST_MUL, OpType.ADD])
    g = b.build()
    # Three chained ops after the input.
    assert g.num_operations == 4
    assert g.primary_outputs == [tail]


def test_custom_latency():
    b = CDFGBuilder()
    x = b.input("x")
    m = b.op("m", OpType.MUL, x, latency=3)
    g = b.build()
    assert g.latency(m) == 3


def test_control_edge():
    b = CDFGBuilder()
    x = b.input("x")
    a = b.const_mul(x, "a")
    c = b.const_mul(x, "c")
    b.control_edge(a, c)
    g = b.build()
    assert (a, c) in g.edges()


def test_builder_single_use():
    b = CDFGBuilder()
    b.input("x")
    b.build()
    with pytest.raises(CDFGError):
        b.build()


def test_build_validates():
    b = CDFGBuilder()
    x = b.input("x")
    b.const_mul(x, "m")
    g = b.build()
    g.validate()
