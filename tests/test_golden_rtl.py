"""Golden-RTL regression tests: emitted Verilog pinned byte for byte.

Companion to ``test_golden.py``: the same embed configuration
(``GOLDEN_AUTHOR`` / ``GOLDEN_PARAMS``) drives embed → list schedule →
:func:`repro.rtl.emit.emit_verilog`, and the emitted module is compared
byte-identically against the committed ``tests/golden/rtl/<name>.v``.
The cross-level detection claim is pinned too: re-extracting the
watermark from the *committed text* must reproduce the behavioral
verification triple (satisfied, total, log10 P_c) snapshotted in
``tests/golden/<name>.json``.

Regenerate after an intentional emission change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_rtl.py

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.detector import detect_from_recovered_schedule
from repro.rtl.controller import recover_schedule, recovered_schedule_for
from repro.rtl.emit import emit_verilog
from repro.rtl.extract import extract_verilog
from repro.scheduling.list_scheduler import list_schedule
from test_golden import DESIGNS, GOLDEN_AUTHOR, GOLDEN_DIR, GOLDEN_PARAMS
from repro.core.scheduling_wm import SchedulingWatermarker
from repro.crypto.signature import AuthorSignature

RTL_GOLDEN_DIR = GOLDEN_DIR / "rtl"


def _emit_marked(name: str):
    """Embed with the golden configuration, schedule, and emit."""
    marker = SchedulingWatermarker(
        AuthorSignature(GOLDEN_AUTHOR), GOLDEN_PARAMS
    )
    marked, watermark = marker.embed(DESIGNS[name]())
    schedule = list_schedule(marked)
    return marked, watermark, schedule, emit_verilog(marked, schedule)


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_golden_rtl(name):
    _, _, _, rtl = _emit_marked(name)
    path = RTL_GOLDEN_DIR / f"{name}.v"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        RTL_GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rtl.text, encoding="utf-8")
    assert path.exists(), (
        f"golden RTL {path} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    assert rtl.text == path.read_text(encoding="utf-8"), (
        f"emitted Verilog for {name!r} drifted from {path}; if the change "
        f"is intentional, regenerate with REPRO_REGEN_GOLDEN=1 and review "
        f"the diff"
    )


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_golden_rtl_reextraction_matches_behavioral_verdict(name):
    """Detection from the committed text == the pinned behavioral triple."""
    marked, watermark, schedule, _ = _emit_marked(name)
    suspect = marked.without_temporal_edges()
    text = (RTL_GOLDEN_DIR / f"{name}.v").read_text(encoding="utf-8")
    recovered = recovered_schedule_for(
        suspect, recover_schedule(extract_verilog(text).controller)
    )
    hit = detect_from_recovered_schedule(suspect, recovered, watermark)
    golden = json.loads(
        (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8")
    )
    verdict = golden["verification"]
    assert hit.result.satisfied == verdict["satisfied"]
    assert hit.result.total == verdict["total"]
    assert hit.result.log10_pc == verdict["log10_pc"]
    assert hit.result.detected
    assert all(e.present and e.satisfied for e in hit.evidence)
    # The committed text also pins the schedule itself: what the
    # extractor recovers is exactly the golden snapshot's schedule.
    assert dict(recovered.start_times) == {
        node: step for node, step in golden["schedule"].items()
    }
