"""Schedule object: verification, resource usage, ordering predicates."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.ops import OpType, ResourceClass
from repro.errors import SchedulingError
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule


def test_start_and_missing_node(diamond):
    s = Schedule({"x": 0, "a": 0, "c": 0, "out": 1})
    assert s.start("a") == 0
    with pytest.raises(SchedulingError):
        s.start("ghost")


def test_makespan(diamond):
    s = Schedule({"x": 0, "a": 0, "c": 0, "out": 1})
    assert s.makespan(diamond) == 2


def test_verify_valid(diamond):
    Schedule({"x": 0, "a": 0, "c": 0, "out": 1}).verify(diamond)


def test_verify_missing_node(diamond):
    with pytest.raises(SchedulingError, match="missing"):
        Schedule({"x": 0, "a": 0, "c": 0}).verify(diamond)


def test_verify_negative_start(diamond):
    with pytest.raises(SchedulingError, match="negative"):
        Schedule({"x": 0, "a": -1, "c": 0, "out": 1}).verify(diamond)


def test_verify_precedence_violation(diamond):
    with pytest.raises(SchedulingError, match="precedence"):
        Schedule({"x": 0, "a": 1, "c": 0, "out": 1}).verify(diamond)


def test_verify_horizon(diamond):
    s = Schedule({"x": 0, "a": 0, "c": 1, "out": 2})
    s.verify(diamond, horizon=3)
    with pytest.raises(SchedulingError, match="horizon"):
        s.verify(diamond, horizon=2)


def test_verify_temporal_edges_enforced(diamond):
    diamond.add_temporal_edge("c", "a")
    good = Schedule({"x": 0, "a": 1, "c": 0, "out": 2})
    good.verify(diamond)
    bad = Schedule({"x": 0, "a": 0, "c": 0, "out": 1})
    with pytest.raises(SchedulingError, match="temporal"):
        bad.verify(diamond)


def test_verify_resources(diamond):
    tight = ResourceSet({ResourceClass.MULTIPLIER: 1})
    concurrent = Schedule({"x": 0, "a": 0, "c": 0, "out": 1})
    with pytest.raises(SchedulingError, match="resource"):
        concurrent.verify(diamond, resources=tight)
    serial = Schedule({"x": 0, "a": 0, "c": 1, "out": 2})
    serial.verify(diamond, resources=tight)


def test_is_valid_boolean(diamond):
    assert Schedule({"x": 0, "a": 0, "c": 0, "out": 1}).is_valid(diamond)
    assert not Schedule({"x": 0}).is_valid(diamond)


def test_step_usage_multicycle():
    b = CDFGBuilder()
    x = b.input("x")
    b.op("m", OpType.MUL, x, latency=3)
    g = b.build()
    usage = Schedule({"x": 0, "m": 1}).step_usage(g)
    assert usage == {
        1: {ResourceClass.MULTIPLIER: 1},
        2: {ResourceClass.MULTIPLIER: 1},
        3: {ResourceClass.MULTIPLIER: 1},
    }


def test_io_never_uses_units(diamond):
    usage = Schedule({"x": 0, "a": 0, "c": 0, "out": 1}).step_usage(diamond)
    for per_step in usage.values():
        assert ResourceClass.IO not in per_step


def test_implied_units(diamond):
    s = Schedule({"x": 0, "a": 0, "c": 0, "out": 1})
    assert s.implied_units(diamond) == {
        ResourceClass.MULTIPLIER: 2,
        ResourceClass.ALU: 1,
    }


def test_satisfies_order():
    s = Schedule({"a": 1, "b": 3})
    assert s.satisfies_order("a", "b")
    assert not s.satisfies_order("b", "a")
    assert not s.satisfies_order("a", "a")


def test_copy_and_from_mapping():
    s = Schedule.from_mapping({"a": 1})
    clone = s.copy()
    clone.start_times["a"] = 9
    assert s.start("a") == 1


def test_ignores_foreign_nodes_in_makespan(diamond):
    # Schedules may cover a larger design than the CDFG being queried.
    s = Schedule({"x": 0, "a": 0, "c": 0, "out": 1, "foreign": 99})
    assert s.makespan(diamond) == 2
