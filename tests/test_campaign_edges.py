"""Campaign edge cases: total corruption, bad trial counts, dup rates."""

from __future__ import annotations

import pytest

from repro.core.domain import DomainParams
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import ReproError
from repro.resilience.campaign import (
    dedupe_rates,
    derive_trial_seed,
    plan_trials,
    stress_campaign,
)
from repro.scheduling.list_scheduler import list_schedule


@pytest.fixture(scope="module")
def campaign_artifacts():
    from repro.cdfg.designs import fourth_order_parallel_iir

    marker = SchedulingWatermarker(
        AuthorSignature("alice-designs-inc"),
        SchedulingWMParams(domain=DomainParams(tau=4), k=3),
    )
    marked, watermark = marker.embed(fourth_order_parallel_iir())
    schedule = list_schedule(marked)
    return marked.without_temporal_edges(), schedule, watermark


class TestTotalCorruption:
    def test_rate_one_grades_without_crashing(self, campaign_artifacts):
        design, schedule, watermark = campaign_artifacts
        points = stress_campaign(
            design,
            schedule,
            watermark,
            rates=[1.0],
            trials=2,
            fault_kinds=("delete_edges", "drop_nodes"),
            jitter=True,
        )
        assert len(points) == 1
        point = points[0]
        assert point.rate == 1.0
        assert point.trials == 2
        # Total corruption must not abort: every trial is graded, and
        # whatever evidence remains is a number, not an exception.
        assert 0.0 <= point.mean_confidence <= 1.0
        assert 0.0 <= point.mean_fraction <= 1.0
        assert point.faults_applied > 0


class TestBadTrials:
    @pytest.mark.parametrize("trials", [0, -1])
    def test_nonpositive_trials_rejected(self, campaign_artifacts, trials):
        design, schedule, watermark = campaign_artifacts
        with pytest.raises(ReproError, match="trials must be >= 1"):
            stress_campaign(
                design, schedule, watermark, rates=[0.1], trials=trials
            )

    def test_empty_rates_rejected(self, campaign_artifacts):
        design, schedule, watermark = campaign_artifacts
        with pytest.raises(ReproError, match="non-empty"):
            stress_campaign(design, schedule, watermark, rates=[])


class TestDuplicateRates:
    def test_dedupe_preserves_first_occurrence_order(self):
        assert dedupe_rates([0.2, 0.0, 0.2, 0.1, 0.0]) == [0.2, 0.0, 0.1]

    def test_campaign_deduplicates_deterministically(
        self, campaign_artifacts
    ):
        design, schedule, watermark = campaign_artifacts
        with_dups = stress_campaign(
            design, schedule, watermark, rates=[0.0, 0.1, 0.1, 0.0],
            trials=2,
        )
        without = stress_campaign(
            design, schedule, watermark, rates=[0.0, 0.1], trials=2
        )
        assert with_dups == without

    def test_seeds_key_off_deduped_rate_index(self):
        specs = plan_trials(
            [0.0, 0.1], trials=2, seed=7, fault_kinds=("delete_edges",),
            jitter=False,
        )
        assert [s.seed for s in specs] == [
            derive_trial_seed(7, 0, 0),
            derive_trial_seed(7, 0, 1),
            derive_trial_seed(7, 1, 0),
            derive_trial_seed(7, 1, 1),
        ]
