"""Window placement models: pmf shapes and order probabilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.poisson import (
    order_probability,
    truncated_poisson_pmf,
    uniform_pmf,
    window_pmf,
)


class TestPmfs:
    def test_uniform_sums_to_one(self):
        for width in (1, 2, 5, 17):
            assert math.isclose(sum(uniform_pmf(width)), 1.0)

    def test_poisson_sums_to_one(self):
        for width in (1, 2, 5, 17):
            assert math.isclose(
                sum(truncated_poisson_pmf(width, 1.0)), 1.0
            )

    def test_poisson_biases_early_steps(self):
        pmf = truncated_poisson_pmf(6, lam=1.0)
        assert pmf[0] > pmf[3] > pmf[5]

    def test_large_lambda_shifts_mass(self):
        early = truncated_poisson_pmf(8, lam=0.5)
        late = truncated_poisson_pmf(8, lam=4.0)
        assert early[0] > late[0]

    def test_width_one_is_certain(self):
        assert truncated_poisson_pmf(1, 1.0) == [1.0]
        assert uniform_pmf(1) == [1.0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_pmf(0)
        with pytest.raises(ValueError):
            truncated_poisson_pmf(0, 1.0)
        with pytest.raises(ValueError):
            truncated_poisson_pmf(3, 0.0)
        with pytest.raises(ValueError):
            window_pmf(3, model="gaussian")

    def test_window_pmf_dispatch(self):
        assert window_pmf(4, "uniform") == uniform_pmf(4)
        assert window_pmf(4, "poisson", lam=2.0) == truncated_poisson_pmf(
            4, 2.0
        )


class TestOrderProbability:
    def test_symmetric_windows_uniform(self):
        # Same window [0, 1]: P(a < b) = P(a=0, b=1) = 1/4.
        p = order_probability((0, 1), (0, 1), model="uniform")
        assert math.isclose(p, 0.25)

    def test_disjoint_windows_certain(self):
        assert order_probability((0, 1), (5, 6)) == 1.0

    def test_disjoint_windows_impossible(self):
        assert order_probability((5, 6), (0, 1)) == 0.0

    def test_singleton_windows(self):
        assert order_probability((2, 2), (3, 3)) == 1.0
        assert order_probability((3, 3), (2, 2)) == 0.0
        assert order_probability((2, 2), (2, 2)) == 0.0

    def test_malformed_window(self):
        with pytest.raises(ValueError):
            order_probability((3, 1), (0, 2))

    def test_poisson_more_confident_than_uniform_for_early_src(self):
        # src window starts earlier; Poisson concentrates both on their
        # early steps, raising P(src first).
        uniform = order_probability((0, 4), (2, 6), model="uniform")
        poisson = order_probability((0, 4), (2, 6), model="poisson", lam=1.0)
        assert poisson > uniform

    @given(
        st.integers(0, 6),
        st.integers(0, 6),
        st.integers(0, 6),
        st.integers(0, 6),
    )
    @settings(max_examples=60)
    def test_complementarity_property(self, lo_a, wa, lo_b, wb):
        a = (lo_a, lo_a + wa)
        b = (lo_b, lo_b + wb)
        p_ab = order_probability(a, b, model="uniform")
        p_ba = order_probability(b, a, model="uniform")
        # P(a<b) + P(b<a) + P(tie) = 1.
        assert p_ab + p_ba <= 1.0 + 1e-9
        assert 0.0 <= p_ab <= 1.0
