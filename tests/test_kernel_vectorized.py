"""Array-native kernel vs worklist reference: equality, memo, oracle teeth.

The vectorized sweeps, bulk screens, and frontier-batched cone
propagation all claim *bit-identical* results to the retained Python
worklist implementations.  These tests pin that claim with hypothesis
properties (via the ``kernel_vectorized`` differential oracle, which
also exercises post-mutation warm views), forced-mode edge cases the
auto heuristic would never route to the array path, the bounded ALAP
memo, and a planted-bug test proving the oracle actually has teeth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.generators import random_layered_cdfg
from repro.timing.kernel import (
    ALAP_MEMO_CAP,
    NUMPY_AVAILABLE,
    CDFGView,
    IncrementalWindows,
    kernel_mode,
    kernel_mode_override,
    set_kernel_mode,
    use_bulk_arrays,
)
from repro.timing.windows import critical_path_length
from repro.util.perf import PERF
from repro.verify.differential import kernel_vectorized_trial

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="vectorized kernel requires numpy"
)


def _sweeps(view, horizon):
    return view.asap(), view.tails(), view.alap(horizon)


class TestSweepEquality:
    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_oracle_property(self, seed):
        """The differential oracle finds nothing on random CDFGs.

        One trial covers cold sweeps, a lockstep edge-insertion
        sequence through two IncrementalWindows, warm (post-mutation)
        sweeps over the extras side list, bulk screens, and cone
        deltas — all under both forced kernel modes.
        """
        assert kernel_vectorized_trial(seed) == []

    def test_forced_vectorized_on_tiny_graph(self):
        design = random_layered_cdfg(6, seed=3)
        horizon = critical_path_length(design) + 1
        with kernel_mode_override("reference"):
            ref = _sweeps(CDFGView(design), horizon)
        with kernel_mode_override("vectorized"):
            vec = _sweeps(CDFGView(design), horizon)
        assert ref == vec

    def test_forced_vectorized_on_deep_chain(self):
        # One node per level: the degenerate shape the auto heuristic
        # keeps on the Python path, still exact when forced to arrays.
        b = CDFGBuilder("chain")
        acc = b.input("x0")
        for k in range(80):
            acc = b.const_mul(acc, f"m{k}")
        b.output(acc, "y")
        design = b.build()
        horizon = critical_path_length(design) + 2
        with kernel_mode_override("reference"):
            ref = _sweeps(CDFGView(design), horizon)
        with kernel_mode_override("vectorized"):
            vec = _sweeps(CDFGView(design), horizon)
        assert ref == vec

    def test_wide_layered_graph(self):
        design = random_layered_cdfg(160, seed=11, num_layers=4)
        horizon = critical_path_length(design)
        with kernel_mode_override("reference"):
            ref = _sweeps(CDFGView(design), horizon)
        with kernel_mode_override("vectorized"):
            vec = _sweeps(CDFGView(design), horizon)
        assert ref == vec


class TestAlapMemo:
    def test_lru_bound_hits_and_evictions(self):
        design = random_layered_cdfg(40, seed=7)
        view = CDFGView(design)
        base = critical_path_length(design)
        before = PERF.snapshot()["counters"]

        results = {}
        for h in range(base, base + ALAP_MEMO_CAP + 1):
            results[h] = view.alap(h)
        assert len(view._alap_by_horizon) == ALAP_MEMO_CAP
        assert base not in view._alap_by_horizon  # oldest evicted

        # Recompute after eviction: same values, no stale reuse.
        assert view.alap(base) == results[base]
        # Repeat within the cap: served from the memo.
        hits0 = PERF.get("kernel.alap_memo_hits")
        assert view.alap(base) is view._alap_by_horizon[base]
        assert PERF.get("kernel.alap_memo_hits") == hits0 + 1

        evicted = PERF.get("kernel.alap_memo_evictions") - before.get(
            "kernel.alap_memo_evictions", 0
        )
        assert evicted >= 2  # cap overflow + the recompute's re-insert

    def test_memo_entries_match_reference(self):
        design = random_layered_cdfg(32, seed=9)
        view = CDFGView(design)
        base = critical_path_length(design)
        for h in (base, base + 2, base + 5):
            assert view.alap(h) == view._alap_reference(h)


class TestBulkScreens:
    def _instance(self, seed=21):
        design = random_layered_cdfg(48, seed=seed)
        horizon = critical_path_length(design) + 2
        return design, IncrementalWindows(design, horizon), horizon

    def test_feasible_edges_bulk_equals_loop(self):
        import random

        design, iw, _ = self._instance()
        rng = random.Random(0)
        nodes = list(design.schedulable_operations)
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(100)]
        with kernel_mode_override("vectorized"):
            bulk = iw.feasible_edges(pairs)
        with kernel_mode_override("reference"):
            loop = iw.feasible_edges(pairs)
        assert bulk == loop
        assert bulk == [iw.can_add_edge(s, d) for s, d in pairs]

    def test_screen_targets_bulk_equals_loop(self):
        design, iw, _ = self._instance(seed=5)
        nodes = list(design.schedulable_operations)
        src, targets = nodes[0], nodes[1:]
        for needed in (0, 1, 3):
            with kernel_mode_override("vectorized"):
                bulk = iw.screen_targets(src, targets, needed)
            with kernel_mode_override("reference"):
                loop = iw.screen_targets(src, targets, needed)
            assert bulk == loop

    def test_feasible_pairs_bulk_equals_loop(self):
        design, iw, horizon = self._instance(seed=13)
        view = iw.view
        n = len(view.nodes)
        pairs = [(i, j) for i in range(0, n, 3) for j in range(1, n, 5)]
        with kernel_mode_override("vectorized"):
            bulk = view.feasible_pairs(horizon, pairs)
        with kernel_mode_override("reference"):
            loop = view.feasible_pairs(horizon, pairs)
        assert bulk == loop

    def test_use_bulk_arrays_mode_policy(self):
        with kernel_mode_override("reference"):
            assert not use_bulk_arrays(10_000)
        with kernel_mode_override("vectorized"):
            assert use_bulk_arrays(1)
        with kernel_mode_override("auto"):
            assert not use_bulk_arrays(1)
            assert use_bulk_arrays(100_000)


class TestModeSelection:
    def test_set_kernel_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_kernel_mode("simd")

    def test_set_kernel_mode_roundtrip(self):
        previous = set_kernel_mode("reference")
        try:
            assert kernel_mode() == "reference"
        finally:
            set_kernel_mode(previous)
        assert kernel_mode() == previous

    def test_override_restores_on_exception(self):
        before = kernel_mode()
        with pytest.raises(RuntimeError):
            with kernel_mode_override("reference"):
                raise RuntimeError("boom")
        assert kernel_mode() == before


class TestCliKernelFlag:
    def test_kernel_flag_forces_mode(self, tmp_path, capsys):
        from repro.cdfg.designs import fourth_order_parallel_iir
        from repro.cdfg.io import save
        from repro.cli import main

        design = tmp_path / "design.json"
        save(fourth_order_parallel_iir(), design)
        before = kernel_mode()
        try:
            assert (
                main(
                    [
                        "--kernel", "vectorized",
                        "info", "--design", str(design),
                    ]
                )
                == 0
            )
            assert kernel_mode() == "vectorized"
        finally:
            set_kernel_mode(before)

    def test_perf_report_surfaces_kernel_line(self, tmp_path, capsys):
        from repro.cdfg.designs import fourth_order_parallel_iir
        from repro.cdfg.io import save
        from repro.cli import main

        design = tmp_path / "design.json"
        save(fourth_order_parallel_iir(), design)
        before = kernel_mode()
        try:
            assert (
                main(
                    [
                        "--kernel", "vectorized",
                        "embed",
                        "--design", str(design),
                        "--author", "Alice Inc.",
                        "--out", str(tmp_path / "marked.json"),
                        "--record", str(tmp_path / "wm.json"),
                        "--k", "3", "--tau", "4",
                        "--perf-report",
                    ]
                )
                == 0
            )
        finally:
            set_kernel_mode(before)
        err = capsys.readouterr().err
        assert "kernel mode: vectorized" in err
        assert "kernel.vec.sweeps" in err


class TestOracleTeeth:
    def test_oracle_detects_planted_alap_bug(self, monkeypatch):
        """An off-by-one in the vectorized ALAP must surface.

        Proves the ``kernel_vectorized`` oracle is not vacuous: a
        one-element perturbation of the array sweep's output yields
        divergences on the very seeds that pass clean unpatched.
        """
        seeds = range(4)
        for seed in seeds:
            assert kernel_vectorized_trial(seed) == []

        original = CDFGView._alap_vectorized

        def planted(self, horizon):
            out = original(self, horizon)
            if out:
                out[-1] += 1
            return out

        monkeypatch.setattr(CDFGView, "_alap_vectorized", planted)
        found = [d for seed in seeds for d in kernel_vectorized_trial(seed)]
        assert found, "oracle missed a planted vectorized-ALAP bug"
        assert any(d.oracle == "kernel_vectorized" for d in found)

    def test_oracle_detects_planted_screen_bug(self, monkeypatch):
        """A flipped verdict on the bulk path only must surface too."""
        original = IncrementalWindows.feasible_edges

        def planted(self, pairs):
            out = original(self, pairs)
            if out and use_bulk_arrays(len(pairs)):
                return [not out[0]] + out[1:]
            return out

        monkeypatch.setattr(IncrementalWindows, "feasible_edges", planted)
        found = [d for seed in range(4) for d in kernel_vectorized_trial(seed)]
        assert found, "oracle missed a planted bulk-screen bug"
