"""CDFG structure: construction, edge kinds, queries, transformations."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.ops import OpType
from repro.errors import CDFGError, CycleError, UnknownNodeError


def small() -> CDFG:
    g = CDFG("small")
    g.add_operation("x", OpType.INPUT)
    g.add_operation("m", OpType.CONST_MUL)
    g.add_operation("a", OpType.ADD)
    g.add_data_edge("x", "m")
    g.add_data_edge("m", "a")
    return g


def test_basic_counts():
    g = small()
    assert g.num_operations == 3
    assert len(g) == 3
    assert set(g) == {"x", "m", "a"}
    assert "m" in g and "zz" not in g


def test_duplicate_node_rejected():
    g = small()
    with pytest.raises(CDFGError):
        g.add_operation("m", OpType.ADD)


def test_unknown_node_errors():
    g = small()
    with pytest.raises(UnknownNodeError):
        g.add_data_edge("m", "ghost")
    with pytest.raises(UnknownNodeError):
        g.op("ghost")


def test_self_loop_rejected():
    g = small()
    with pytest.raises(CDFGError):
        g.add_data_edge("a", "a")


def test_cycle_rejected_and_rolled_back():
    g = small()
    with pytest.raises(CycleError):
        g.add_data_edge("a", "x")
    # The offending edge must not linger.
    assert ("a", "x") not in g.edges()
    g.validate()


def test_duplicate_edge_rejected():
    g = small()
    with pytest.raises(CDFGError):
        g.add_data_edge("x", "m")


def test_conflicting_kind_rejected():
    g = small()
    with pytest.raises(CDFGError):
        g.add_temporal_edge("x", "m")


def test_negative_latency_rejected():
    g = CDFG()
    with pytest.raises(CDFGError):
        g.add_operation("bad", OpType.ADD, latency=-1)


def test_edge_kinds():
    g = small()
    g.add_operation("b", OpType.ADD)
    g.add_temporal_edge("m", "b")
    g.add_control_edge("a", "b")
    assert g.edge_kind("x", "m") is EdgeKind.DATA
    assert g.edge_kind("m", "b") is EdgeKind.TEMPORAL
    assert g.edge_kind("a", "b") is EdgeKind.CONTROL
    assert g.temporal_edges == [("m", "b")]
    assert set(g.data_edges) == {("x", "m"), ("m", "a")}


def test_edge_kind_missing_edge():
    g = small()
    with pytest.raises(CDFGError):
        g.edge_kind("x", "a")


def test_predecessors_successors_filtering():
    g = small()
    g.add_operation("b", OpType.ADD)
    g.add_temporal_edge("m", "b")
    assert g.successors("m") == ["a", "b"]
    assert g.successors("m", kinds=(EdgeKind.DATA,)) == ["a"]
    assert g.data_successors("m") == ["a"]
    assert g.predecessors("b", kinds=(EdgeKind.TEMPORAL,)) == ["m"]
    assert g.data_predecessors("b") == []


def test_primary_inputs_outputs():
    g = small()
    assert g.primary_inputs == ["x"]
    assert g.primary_outputs == ["a"]


def test_schedulable_excludes_io():
    g = small()
    g.add_operation("y", OpType.OUTPUT)
    g.add_data_edge("a", "y")
    assert set(g.schedulable_operations) == {"m", "a"}


def test_num_variables_counts_value_producers():
    g = small()
    g.add_operation("y", OpType.OUTPUT)
    g.add_data_edge("a", "y")
    # x, m, a produce values; the OUTPUT placeholder does not.
    assert g.num_variables == 3


def test_ppo_marking():
    g = small()
    assert not g.is_ppo("m")
    g.set_ppo("m")
    assert g.is_ppo("m")
    assert g.ppo_nodes == ["m"]
    g.set_ppo("m", False)
    assert g.ppo_nodes == []


def test_topological_order_respects_edges():
    g = small()
    order = g.topological_order()
    assert order.index("x") < order.index("m") < order.index("a")


def test_fanin_tree_distances():
    b = CDFGBuilder("deep")
    x = b.input("x")
    n1 = b.const_mul(x, "n1")
    n2 = b.const_mul(n1, "n2")
    n3 = b.add(n2, x, "n3")
    g = b.build()
    assert g.fanin_tree("n3", 0) == {"n3"}
    assert g.fanin_tree("n3", 1) == {"n3", "n2", "x"}
    assert g.fanin_tree("n3", 2) == {"n3", "n2", "n1", "x"}
    assert g.fanin_tree("n3", 99) == {"n3", "n2", "n1", "x"}
    with pytest.raises(CDFGError):
        g.fanin_tree("n3", -1)


def test_fanin_tree_ignores_temporal_edges():
    g = small()
    g.add_operation("b", OpType.ADD)
    g.add_temporal_edge("b", "a")
    assert "b" not in g.fanin_tree("a", 5)


def test_fanin_distance():
    g = small()
    distances = g.fanin_distance("a")
    assert distances == {"a": 0, "m": 1, "x": 2}


def test_copy_is_deep():
    g = small()
    clone = g.copy("clone")
    clone.add_operation("extra", OpType.ADD)
    assert "extra" not in g
    assert clone.name == "clone"


def test_without_temporal_edges():
    g = small()
    g.add_operation("b", OpType.ADD)
    g.add_temporal_edge("m", "b")
    stripped = g.without_temporal_edges()
    assert stripped.temporal_edges == []
    assert g.temporal_edges == [("m", "b")]  # original untouched
    assert set(stripped.data_edges) == set(g.data_edges)


def test_subgraph():
    g = small()
    sub = g.subgraph(["m", "a"])
    assert set(sub.operations) == {"m", "a"}
    assert sub.edges() == [("m", "a")]
    with pytest.raises(UnknownNodeError):
        g.subgraph(["ghost"])


def test_renamed_preserves_structure():
    g = small()
    renamed = g.renamed({"m": "mul0", "a": "add0"})
    assert set(renamed.operations) == {"x", "mul0", "add0"}
    assert renamed.op("mul0") is OpType.CONST_MUL
    assert ("mul0", "add0") in renamed.edges()
    # Original untouched.
    assert "m" in g


def test_renamed_rejects_merges_and_unknowns():
    g = small()
    with pytest.raises(CDFGError):
        g.renamed({"m": "a"})
    with pytest.raises(UnknownNodeError):
        g.renamed({"ghost": "g2"})


def test_merged_with():
    host = small()
    core = small()
    merged = host.merged_with(core, prefix="core/")
    assert merged.num_operations == 6
    assert "core/m" in merged
    assert "m" in merged
    merged.validate()


def test_merged_with_connections():
    host = small()
    core = small()
    merged = host.merged_with(
        core, connections=[("core/a", "m")], prefix="core/"
    )
    assert ("core/a", "m") in merged.edges()


def test_merged_name_collision():
    host = small()
    core = small()
    with pytest.raises(CDFGError):
        host.merged_with(core, prefix="")


def test_structure_signature_rename_invariant_shape():
    g = small()
    renamed = g.renamed({"m": "q", "a": "r"})
    assert g.structure_signature() == renamed.structure_signature()
