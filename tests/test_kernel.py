"""Incremental timing kernel: view caching, invalidation, delta windows.

The kernel's contract is twofold: (1) the cached CDFGView is always in
sync with the graph — every mutator invalidates it; (2) incrementally
maintained windows are bit-identical to a full recompute after every
temporal-edge insertion.  Both halves are exercised here, the second
also as a hypothesis property over random designs and edge sequences.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.generators import random_layered_cdfg
from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.ops import OpType
from repro.errors import InfeasibleScheduleError
from repro.scheduling.force_directed import _tighten
from repro.timing.kernel import IncrementalWindows, edge_sequence_windows
from repro.timing.paths import laxity
from repro.timing.windows import (
    asap_schedule,
    critical_path_length,
    scheduling_windows,
)
from repro.util.perf import PERF


def chain(*latencies: int) -> CDFG:
    g = CDFG("chain")
    prev = None
    for i, lat in enumerate(latencies):
        name = f"n{i}"
        g.add_operation(name, OpType.ADD, latency=lat)
        if prev is not None:
            g.add_data_edge(prev, name)
        prev = name
    return g


class TestViewCache:
    def test_view_is_reused_between_queries(self, iir4):
        assert iir4.view() is iir4.view()
        asap_schedule(iir4)
        critical_path_length(iir4)
        assert iir4.view() is iir4.view()

    def test_add_operation_invalidates(self, iir4):
        before = iir4.view()
        schedulable = iir4.schedulable_operations
        iir4.add_operation("fresh", OpType.ADD)
        after = iir4.view()
        assert after is not before
        assert "fresh" in iir4.schedulable_operations
        assert "fresh" not in schedulable

    @pytest.mark.parametrize(
        "kind", [EdgeKind.DATA, EdgeKind.CONTROL, EdgeKind.TEMPORAL]
    )
    def test_each_edge_kind_invalidates(self, kind):
        g = chain(1, 1)
        g.add_operation("x", OpType.ADD)
        windows = scheduling_windows(g, critical_path_length(g))
        assert windows["x"] != windows["n1"]
        g.add_edge("n0", "x", kind)
        # The cached view must refresh: x now starts after n0.
        updated = scheduling_windows(g, critical_path_length(g))
        assert updated["x"][0] == 1

    def test_data_edge_refreshes_primary_io(self):
        g = chain(1, 1)
        g.add_operation("x", OpType.ADD)
        assert "x" in g.primary_inputs
        assert "x" in g.primary_outputs
        g.add_data_edge("n1", "x")
        assert "x" not in g.primary_inputs
        assert "n1" not in g.primary_outputs

    def test_set_ppo_bumps_version(self, iir4):
        node = iir4.schedulable_operations[0]
        version = iir4.mutation_count
        before = iir4.view()
        iir4.set_ppo(node, True)
        assert iir4.mutation_count == version + 1
        assert iir4.view() is not before

    def test_remove_edge_and_operation_invalidate(self):
        g = chain(1, 1, 1)
        assert scheduling_windows(g, 3)["n2"] == (2, 2)
        g.remove_edge("n1", "n2")
        assert scheduling_windows(g, 3)["n2"] == (0, 2)
        g.remove_operation("n2")
        assert "n2" not in g.view().nodes

    def test_set_op_keeps_latency(self):
        g = chain(1, 1)
        g.set_op("n0", OpType.MUL)
        assert g.op("n0") is OpType.MUL
        assert g.latency("n0") == 1
        assert g.view().latency[0] == 1

    def test_pickle_drops_cached_view(self, iir4):
        iir4.view()
        clone = pickle.loads(pickle.dumps(iir4))
        assert clone._view is None
        assert scheduling_windows(clone, critical_path_length(clone)) == (
            scheduling_windows(iir4, critical_path_length(iir4))
        )


class TestIncrementalWindows:
    def test_matches_full_on_construction(self, iir4):
        horizon = critical_path_length(iir4) + 2
        iw = IncrementalWindows(iir4, horizon)
        assert iw.windows() == scheduling_windows(iir4, horizon)

    def test_add_edge_matches_full_recompute(self, iir4):
        horizon = critical_path_length(iir4)
        marked = iir4.copy()
        iw = IncrementalWindows(marked, horizon)
        candidates = [
            (u, v)
            for u in marked.schedulable_operations
            for v in marked.schedulable_operations
            if u != v
        ]
        added = 0
        for u, v in candidates:
            if added >= 6:
                break
            if marked.graph.has_edge(u, v) or not iw.can_add_edge(u, v):
                continue
            try:
                iw.add_edge(u, v)
            except Exception:
                continue
            added += 1
            iw.assert_consistent()
        assert added > 0

    def test_infeasible_edge_rejected_before_mutation(self):
        g = chain(1, 1, 1)
        iw = IncrementalWindows(g, 3)  # zero slack everywhere
        with pytest.raises(InfeasibleScheduleError):
            iw.add_edge("n2", "n0")
        assert not g.graph.has_edge("n2", "n0")
        assert iw.windows() == scheduling_windows(g, 3)

    def test_can_add_edge_predicts_feasibility(self):
        g = chain(1, 1)
        g.add_operation("x", OpType.ADD)
        iw = IncrementalWindows(g, 2)
        assert iw.can_add_edge("n0", "x")
        assert iw.can_add_edge("x", "n1")
        assert not iw.can_add_edge("n1", "x")  # n1 ends at the horizon

    def test_matches_reference_edge_sequence(self, iir4):
        horizon = critical_path_length(iir4)
        ops = list(iir4.schedulable_operations)
        rng = random.Random(7)
        incremental = iir4.copy()
        iw = IncrementalWindows(incremental, horizon)
        applied = []
        for _ in range(200):
            u, v = rng.sample(ops, 2)
            if incremental.graph.has_edge(u, v) or not iw.can_add_edge(u, v):
                continue
            try:
                iw.add_edge(u, v)
            except Exception:
                continue
            applied.append((u, v))
            if len(applied) >= 5:
                break
        assert applied
        reference = edge_sequence_windows(iir4.copy(), horizon, applied)
        assert iw.windows() == reference

    def test_delta_tighten_matches_reference_tighten(self, iir4):
        horizon = critical_path_length(iir4) + 1
        iw = IncrementalWindows(iir4, horizon)
        windows = iw.windows()
        nodes = iir4.view().nodes
        for node in iir4.schedulable_operations:
            lo, hi = windows[node]
            for step in range(lo, hi + 1):
                try:
                    expected = _tighten(iir4, windows, node, (step, step))
                except InfeasibleScheduleError:
                    with pytest.raises(InfeasibleScheduleError):
                        iw.delta_tighten(node, (step, step))
                    continue
                delta = iw.delta_tighten(node, (step, step))
                merged = dict(windows)
                for index, window in delta.items():
                    merged[nodes[index]] = window
                assert merged == expected
                # The delta holds exactly the changed nodes.
                for index in delta:
                    assert delta[index] != windows[nodes[index]]

    def test_perf_counters_track_incremental_work(self, iir4):
        PERF.reset()
        horizon = critical_path_length(iir4)
        iw = IncrementalWindows(iir4, horizon)
        ops = iir4.schedulable_operations
        added = 0
        for u in ops:
            for v in ops:
                if u == v or iir4.graph.has_edge(u, v):
                    continue
                if not iw.can_add_edge(u, v):
                    continue
                try:
                    iw.add_edge(u, v)
                except Exception:
                    continue
                added += 1
                break
            if added:
                break
        assert added == 1
        assert PERF.get("kernel.window_incremental_updates") == 1
        assert PERF.get("kernel.window_recomputes_avoided") == 1
        assert PERF.get("kernel.window_nodes_touched") >= 1


class TestLaxityThreading:
    def test_precomputed_asap_equivalent(self, iir4):
        horizon = critical_path_length(iir4)
        windows = scheduling_windows(iir4, horizon)
        asap = {n: w[0] for n, w in windows.items()}
        assert laxity(iir4, asap=asap) == laxity(iir4)


class TestIncrementalProperty:
    @given(st.integers(15, 60), st.integers(0, 300), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_incremental_equals_full_random_sequences(
        self, num_ops, seed, slack
    ):
        graph = random_layered_cdfg(num_ops, seed)
        horizon = critical_path_length(graph) + slack
        iw = IncrementalWindows(graph, horizon)
        ops = list(graph.schedulable_operations)
        rng = random.Random(seed ^ 0xC0FFEE)
        inserted = 0
        for _ in range(40):
            if len(ops) < 2:
                break
            u, v = rng.sample(ops, 2)
            if graph.graph.has_edge(u, v):
                continue
            if not iw.can_add_edge(u, v):
                # The O(1) screen must agree with the full recompute:
                # adding u->v (if acyclic) would empty some window.
                continue
            try:
                iw.add_edge(u, v)
            except Exception:
                continue  # duplicate/cycle rejected by the CDFG itself
            inserted += 1
            iw.assert_consistent()
        if inserted:
            full = scheduling_windows(graph, horizon)
            assert iw.windows() == full
