"""Template-matching watermark: Fig. 5 protocol end to end."""

from __future__ import annotations

import pytest

from repro.core.matching_wm import (
    MatchingWatermarker,
    MatchingWMParams,
)
from repro.crypto.signature import AuthorSignature
from repro.errors import ConstraintEncodingError
from repro.templates.covering import cover_and_allocate, greedy_cover
from repro.templates.library import default_library
from repro.timing.paths import laxity
from repro.timing.windows import critical_path_length


@pytest.fixture
def marker(alice, iir4):
    c = critical_path_length(iir4)
    return MatchingWatermarker(
        alice, params=MatchingWMParams(z=3, horizon=2 * c)
    )


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatchingWMParams(z=0)
        with pytest.raises(ValueError):
            MatchingWMParams(z_fraction=0.0)
        with pytest.raises(ValueError):
            MatchingWMParams(epsilon=0.0)
        with pytest.raises(ValueError):
            MatchingWMParams(min_template_size=0)


class TestEmbed:
    def test_enforces_z_matchings(self, iir4, marker):
        _, wm = marker.embed(iir4)
        assert wm.z == 3
        assert wm.domain_size == len(iir4.schedulable_operations)

    def test_sets_ppos_on_marked_copy(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        assert set(marked.ppo_nodes) == set(wm.ppo_nodes)
        assert iir4.ppo_nodes == []  # original untouched

    def test_enforced_matchings_disjoint(self, iir4, marker):
        _, wm = marker.embed(iir4)
        seen = set()
        for matching in wm.enforced:
            assert not (matching.covered & seen)
            seen |= matching.covered

    def test_enforced_respect_laxity_budget(self, iir4, marker):
        _, wm = marker.embed(iir4)
        lax = laxity(iir4)
        threshold = marker.params.horizon * (1 - marker.params.epsilon)
        for matching in wm.enforced:
            for node in matching.assignment:
                assert lax[node] <= threshold

    def test_deterministic(self, iir4, alice):
        c = critical_path_length(iir4)
        params = MatchingWMParams(z=3, horizon=2 * c)
        wm1 = MatchingWatermarker(alice, params=params).embed(iir4)[1]
        wm2 = MatchingWatermarker(alice, params=params).embed(iir4)[1]
        assert [m.key() for m in wm1.enforced] == [
            m.key() for m in wm2.enforced
        ]

    def test_signature_specific(self, iir4):
        c = critical_path_length(iir4)
        params = MatchingWMParams(z=3, horizon=2 * c)
        enforced = {
            tuple(
                m.key()
                for m in MatchingWatermarker(
                    AuthorSignature(f"author-{i}"), params=params
                ).embed(iir4)[1].enforced
            )
            for i in range(8)
        }
        assert len(enforced) > 1

    def test_tight_horizon_restricts_enforcement(self, iir4, alice):
        c = critical_path_length(iir4)
        params = MatchingWMParams(z=3, horizon=c)
        # At the tight budget only off-critical const-muls are eligible
        # and no multi-op matching fits among them.
        with pytest.raises(ConstraintEncodingError):
            MatchingWatermarker(alice, params=params).embed(iir4)

    def test_domain_restriction(self, iir4, alice):
        c = critical_path_length(iir4)
        params = MatchingWMParams(z=2, horizon=2 * c)
        domain = {"A1", "A2", "C1", "C2", "A3", "C3"}
        _, wm = MatchingWatermarker(alice, params=params).embed(
            iir4, domain=domain
        )
        for matching in wm.enforced:
            assert matching.covered <= domain

    def test_empty_domain_rejected(self, iir4, alice):
        with pytest.raises(ConstraintEncodingError):
            MatchingWatermarker(alice).embed(iir4, domain={"x"})

    def test_z_fraction_default(self, iir4, alice):
        c = critical_path_length(iir4)
        params = MatchingWMParams(z_fraction=0.12, horizon=2 * c)
        _, wm = MatchingWatermarker(alice, params=params).embed(iir4)
        assert wm.z == max(1, round(0.12 * 17))


class TestVerify:
    def test_constrained_covering_detected(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        covering = greedy_cover(
            marked, default_library(), forced=wm.enforced
        )
        verification = marker.verify(covering, wm)
        assert verification.detected
        assert verification.fraction == 1.0

    def test_unconstrained_covering_partial(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        baseline = greedy_cover(iir4, default_library())
        verification = marker.verify(baseline, wm)
        assert verification.fraction < 1.0

    def test_ppo_visibility_checked(self, iir4, marker):
        marked, wm = marker.embed(iir4)
        covering = greedy_cover(
            marked, default_library(), forced=wm.enforced
        )
        verification = marker.verify(covering, wm)
        assert verification.ppos_visible == verification.ppos_total


class TestCoincidence:
    def test_solutions_counts_positive(self, iir4, marker):
        _, wm = marker.embed(iir4)
        for matching in wm.enforced:
            assert marker.solutions_count(iir4, matching) >= 1

    def test_pair_coverings_match_paper_shape(self, iir4, marker):
        # The paper counts 6 coverings for the (A5, A6) adder pair; our
        # reconstruction admits a comparable handful.
        from repro.cdfg.ops import OpType
        from repro.templates.library import chain_template
        from repro.templates.matcher import Matching

        t1 = chain_template("T1_add_add", (OpType.ADD, OpType.ADD))
        count = marker.solutions_count(iir4, Matching(t1, ("A6", "A5")))
        assert 3 <= count <= 10

    def test_log10_pc_negative_and_additive(self, iir4, marker):
        _, wm = marker.embed(iir4)
        total = marker.approx_log10_pc(iir4, wm)
        assert total < 0


class TestEndToEnd:
    def test_module_overhead_is_small(self, iir4, alice):
        # On a 17-op design the greedy coverer's noise can swing the
        # module count by one in either direction; the property that
        # must hold is that the watermark's cost stays *small* (the
        # paper's Table II: low single-digit percent overheads).
        c = critical_path_length(iir4)
        params = MatchingWMParams(z=3, horizon=2 * c)
        marker = MatchingWatermarker(alice, params=params)
        marked, wm = marker.embed(iir4)
        _, base = cover_and_allocate(iir4, default_library(), steps=2 * c)
        constrained_cov, constrained = cover_and_allocate(
            marked, default_library(), steps=2 * c, forced=wm.enforced
        )
        assert abs(constrained.module_count - base.module_count) <= 1
        constrained_cov.verify(marked)
