"""Crash recovery: SIGKILLed workers, retry exhaustion, hard timeouts.

The engine's worker processes are killable at any instant; these tests
kill them on purpose (via the ``_hook`` fault injection the campaign
runner also uses) and pin the recovery contract:

* a worker SIGKILLed mid-job is retried on a fresh pool within the
  retry budget and the job still completes, bit-identical;
* when every retry is killed, the job grades ``500 crashed`` — it never
  raises and never wedges the engine;
* a wedged worker is reaped by the hard per-job timeout (``504``) and
  the engine keeps serving afterwards;
* whatever the kill schedule, the on-disk cache only ever contains
  whole, valid entries (atomic rename, no partial writes).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import to_dict
from repro.service import JobEngine, ServiceConfig, canonical_json, execute_job
from repro.util.perf import PerfRegistry


def _design():
    return to_dict(fourth_order_parallel_iir())


def _run(coroutine):
    return asyncio.run(coroutine)


def test_killed_worker_retries_and_completes(tmp_path):
    marker = tmp_path / "killed-once.marker"
    params = {
        "design": _design(),
        "_hook": {"kill_unless_marker": str(marker)},
    }
    registry = PerfRegistry()

    async def scenario():
        config = ServiceConfig(
            workers=1, retries=2, cache_dir=tmp_path / "cache"
        )
        async with JobEngine(config, registry=registry) as engine:
            return await engine.submit("schedule", params)

    outcome = _run(scenario())
    assert outcome.ok and outcome.code == 200
    assert outcome.attempts == 2  # attempt 1 SIGKILLed, attempt 2 clean
    assert marker.exists()
    assert registry.get("service.worker_crashes") >= 1
    # The retried result is still bit-identical to a direct call.
    assert canonical_json(outcome.result) == canonical_json(
        execute_job("schedule", {"design": _design()})
    )


def test_retry_exhaustion_grades_crashed_and_engine_survives(tmp_path):
    registry = PerfRegistry()

    async def scenario():
        config = ServiceConfig(
            workers=1, retries=1, cache_dir=tmp_path / "cache"
        )
        async with JobEngine(config, registry=registry) as engine:
            doomed = await engine.submit(
                "schedule",
                {"design": _design(), "_hook": {"kill_always": True}},
            )
            # The engine must keep serving after exhausting retries:
            # the broken pool was retired, a clean job gets a fresh one.
            healthy = await engine.submit("schedule", {"design": _design()})
            return doomed, healthy

    doomed, healthy = _run(scenario())
    assert not doomed.ok and doomed.code == 500
    assert "crashed" in doomed.error and "2 attempt(s)" in doomed.error
    assert doomed.attempts == 2  # retries=1 -> two attempts total
    assert registry.get("service.worker_crashes") >= 2
    assert healthy.ok and healthy.code == 200


def test_wedged_worker_reaped_by_hard_timeout(tmp_path):
    registry = PerfRegistry()

    async def scenario():
        config = ServiceConfig(
            workers=1,
            retries=0,
            job_timeout_s=0.5,
            cache_dir=tmp_path / "cache",
        )
        async with JobEngine(config, registry=registry) as engine:
            wedged = await engine.submit(
                "schedule", {"design": _design(), "_hook": {"sleep_s": 30}}
            )
            recovered = await engine.submit(
                "schedule", {"design": _design()}
            )
            return wedged, recovered

    wedged, recovered = _run(scenario())
    assert not wedged.ok and wedged.code == 504
    assert "hard timeout" in wedged.error
    assert registry.get("service.job_timeouts") == 1
    assert recovered.ok and recovered.code == 200


def test_disk_cache_never_partial_across_kill_schedules(tmp_path):
    """After a session full of worker kills and timeouts, every on-disk
    cache entry parses as whole JSON with the expected shape."""
    cache_dir = tmp_path / "cache"
    marker = tmp_path / "kill.marker"

    async def scenario():
        config = ServiceConfig(
            workers=1, retries=2, job_timeout_s=2.0, cache_dir=cache_dir
        )
        async with JobEngine(config, registry=PerfRegistry()) as engine:
            outcomes = [
                await engine.submit("schedule", {"design": _design()}),
                await engine.submit(
                    "schedule",
                    {
                        "design": _design(),
                        "scheduler": "force-directed",
                        "_hook": {"kill_unless_marker": str(marker)},
                    },
                ),
                await engine.submit(
                    "schedule",
                    {
                        "design": _design(),
                        "tag": "wedged",
                        "_hook": {"sleep_s": 30},
                    },
                ),
            ]
            return outcomes

    ok_plain, ok_killed, timed_out = _run(scenario())
    assert ok_plain.ok and ok_killed.ok and timed_out.code == 504

    entries = sorted(Path(cache_dir, "objects").rglob("*.json"))
    assert len(entries) == 2  # the two completed jobs, nothing partial
    for path in entries:
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(payload) >= {"key", "result"}
        assert path.stem == payload["key"]
