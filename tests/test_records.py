"""Watermark record serialization round trips."""

from __future__ import annotations

import json

import pytest

from repro.core.domain import DomainParams
from repro.core.matching_wm import MatchingWatermarker, MatchingWMParams
from repro.core.records import (
    load_record,
    load_records,
    matching_watermark_from_dict,
    matching_watermark_to_dict,
    save_record,
    save_records,
    scheduling_watermark_from_dict,
    scheduling_watermark_to_dict,
)
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.errors import WatermarkError
from repro.timing.windows import critical_path_length


@pytest.fixture
def sched_wm(alice, iir4):
    params = SchedulingWMParams(domain=DomainParams(tau=4, min_domain_size=5))
    return SchedulingWatermarker(alice, params).embed(iir4)[1]


@pytest.fixture
def match_wm(alice, iir4):
    params = MatchingWMParams(z=2, horizon=2 * critical_path_length(iir4))
    return MatchingWatermarker(alice, params=params).embed(iir4)[1]


class TestSchedulingRecord:
    def test_dict_roundtrip(self, sched_wm):
        restored = scheduling_watermark_from_dict(
            scheduling_watermark_to_dict(sched_wm)
        )
        assert restored == sched_wm

    def test_file_roundtrip(self, sched_wm, tmp_path):
        path = tmp_path / "wm.json"
        save_record(sched_wm, path)
        assert load_record(path) == sched_wm

    def test_json_is_plain(self, sched_wm, tmp_path):
        path = tmp_path / "wm.json"
        save_record(sched_wm, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "scheduling"
        assert payload["schema"] == 1

    def test_tau_preserved(self, sched_wm, tmp_path):
        path = tmp_path / "wm.json"
        save_record(sched_wm, path)
        assert load_record(path).tau == sched_wm.tau

    def test_wrong_kind_rejected(self, sched_wm):
        payload = scheduling_watermark_to_dict(sched_wm)
        payload["kind"] = "matching"
        with pytest.raises(WatermarkError):
            scheduling_watermark_from_dict(payload)

    def test_malformed_rejected(self):
        with pytest.raises(WatermarkError):
            scheduling_watermark_from_dict({"kind": "scheduling"})


class TestMatchingRecord:
    def test_dict_roundtrip(self, match_wm):
        restored = matching_watermark_from_dict(
            matching_watermark_to_dict(match_wm)
        )
        assert restored == match_wm

    def test_file_roundtrip(self, match_wm, tmp_path):
        path = tmp_path / "mwm.json"
        save_record(match_wm, path)
        restored = load_record(path)
        assert restored == match_wm
        # Template structure survives.
        assert (
            restored.enforced[0].template.name
            == match_wm.enforced[0].template.name
        )


class TestMultiRecords:
    def test_mixed_list_roundtrip(self, sched_wm, match_wm, tmp_path):
        path = tmp_path / "all.json"
        save_records([sched_wm, match_wm], path)
        restored = load_records(path)
        assert restored == [sched_wm, match_wm]

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"kind": "alien"}]))
        with pytest.raises(WatermarkError):
            load_records(path)

    def test_unknown_single_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "alien"}))
        with pytest.raises(WatermarkError):
            load_record(path)


class TestRecordDrivenVerification:
    def test_verification_after_roundtrip(self, alice, iir4, tmp_path):
        from repro.scheduling.list_scheduler import list_schedule

        params = SchedulingWMParams(
            domain=DomainParams(tau=4, min_domain_size=5)
        )
        marker = SchedulingWatermarker(alice, params)
        marked, watermark = marker.embed(iir4)
        schedule = list_schedule(marked)
        path = tmp_path / "wm.json"
        save_record(watermark, path)
        result = marker.verify(iir4, schedule, load_record(path))
        assert result.detected
