"""Template library and matcher: patterns, embeddings, PPO legality."""

from __future__ import annotations

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.ops import OpType
from repro.errors import TemplateError
from repro.templates.library import (
    Template,
    TemplateNode,
    chain_template,
    default_library,
    library_with_singletons,
    singleton_template,
)
from repro.templates.matcher import (
    Matching,
    enumerate_matchings,
    match_template_at,
    matchings_covering,
)


class TestTemplateValidation:
    def test_singleton(self):
        t = singleton_template(OpType.ADD)
        assert t.size == 1
        assert t.root.op is OpType.ADD

    def test_chain(self):
        t = chain_template("mac", (OpType.ADD, OpType.MUL))
        assert t.size == 2
        assert t.nodes[0].children == (1,)

    def test_empty_rejected(self):
        with pytest.raises(TemplateError):
            Template("bad", ())

    def test_bad_child_index(self):
        with pytest.raises(TemplateError):
            Template(
                "bad",
                (TemplateNode(OpType.ADD, (2,)), TemplateNode(OpType.ADD)),
            )

    def test_child_before_parent_rejected(self):
        with pytest.raises(TemplateError):
            Template(
                "bad",
                (
                    TemplateNode(OpType.ADD),
                    TemplateNode(OpType.ADD, (1,)),  # self-reference
                ),
            )

    def test_two_parents_rejected(self):
        with pytest.raises(TemplateError):
            Template(
                "bad",
                (
                    TemplateNode(OpType.ADD, (1, 2)),
                    TemplateNode(OpType.ADD, (2,)),
                    TemplateNode(OpType.ADD),
                ),
            )

    def test_orphan_rejected(self):
        with pytest.raises(TemplateError):
            Template(
                "bad",
                (TemplateNode(OpType.ADD), TemplateNode(OpType.MUL)),
            )

    def test_zero_latency_rejected(self):
        with pytest.raises(TemplateError):
            chain_template("bad", (OpType.ADD,), latency=0)

    def test_default_library_is_multi_op(self):
        for template in default_library():
            assert template.size >= 2

    def test_library_with_singletons(self, iir4):
        lib = library_with_singletons(default_library(), iir4)
        singles = {t.nodes[0].op for t in lib if t.size == 1}
        assert OpType.ADD in singles
        assert OpType.CONST_MUL in singles


class TestMatcher:
    def test_chain_matches_iir(self, iir4):
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        hits = match_template_at(iir4, t1, "A2")
        assert [m.assignment for m in hits] == [("A2", "A1")]

    def test_root_op_mismatch(self, iir4):
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        assert match_template_at(iir4, t1, "C1") == []

    def test_multiple_children_choices(self, iir4):
        # A9 has two ADD predecessors: A4 and A8.
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        hits = match_template_at(iir4, t1, "A9")
        assert {m.assignment for m in hits} == {("A9", "A4"), ("A9", "A8")}

    def test_internal_visibility_blocks(self):
        # mid feeds both root and an external consumer: T1 cannot
        # internalize mid.
        b = CDFGBuilder()
        x = b.input("x")
        mid = b.op("mid", OpType.ADD, x)
        b.op("root", OpType.ADD, mid)
        b.op("ext", OpType.SUB, mid)
        g = b.build()
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        assert match_template_at(g, t1, "root") == []

    def test_ppo_blocks_internalization(self, iir4):
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        marked = iir4.copy()
        marked.set_ppo("A1")
        assert match_template_at(marked, t1, "A2") == []
        # respect_ppo=False restores the matching.
        assert match_template_at(marked, t1, "A2", respect_ppo=False)

    def test_three_node_template(self, iir4):
        t5 = Template(
            "add3",
            (
                TemplateNode(OpType.ADD, (1, 2)),
                TemplateNode(OpType.ADD),
                TemplateNode(OpType.ADD),
            ),
        )
        hits = match_template_at(iir4, t5, "A9")
        assert {frozenset(m.assignment) for m in hits} == {
            frozenset({"A9", "A4", "A8"})
        }

    def test_enumerate_is_deterministic(self, iir4):
        lib = default_library()
        a = enumerate_matchings(iir4, lib)
        b = enumerate_matchings(iir4, lib)
        assert [m.key() for m in a] == [m.key() for m in b]

    def test_enumerate_candidates_filter(self, iir4):
        lib = default_library()
        inside = enumerate_matchings(
            iir4, lib, candidates={"A2", "A1", "C2"}, min_size=2
        )
        for matching in inside:
            assert matching.covered <= {"A2", "A1", "C2"}

    def test_enumerate_min_size(self, iir4):
        lib = library_with_singletons(default_library(), iir4)
        multi = enumerate_matchings(iir4, lib, min_size=2)
        assert all(m.template.size >= 2 for m in multi)

    def test_matchings_covering_filter(self, iir4):
        lib = default_library()
        everything = enumerate_matchings(iir4, lib)
        touching = matchings_covering(everything, ["A9"])
        assert touching
        assert all("A9" in m.covered for m in touching)

    def test_matching_properties(self, iir4):
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        m = Matching(t1, ("A2", "A1"))
        assert m.root == "A2"
        assert m.covered == frozenset({"A1", "A2"})
        assert m.internal_nodes == ("A1",)
