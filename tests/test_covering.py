"""Covering and allocation: legality, budgets, PPO/forced constraints."""

from __future__ import annotations

import pytest

from repro.cdfg.designs import hyper_design
from repro.cdfg.ops import OpType
from repro.errors import CoveringError
from repro.templates.covering import (
    Covering,
    allocate,
    cover_and_allocate,
    greedy_cover,
)
from repro.templates.library import chain_template, default_library
from repro.templates.matcher import Matching
from repro.timing.windows import critical_path_length


class TestGreedyCover:
    def test_partitions_all_ops(self, iir4):
        covering = greedy_cover(iir4, default_library())
        covering.verify(iir4)
        assert covering.covered == set(iir4.schedulable_operations)

    def test_prefers_large_templates(self, iir4):
        covering = greedy_cover(iir4, default_library())
        sizes = [occ.template.size for occ in covering.occurrences]
        assert max(sizes) >= 2

    def test_deterministic(self, iir4):
        a = greedy_cover(iir4, default_library())
        b = greedy_cover(iir4, default_library())
        assert [m.key() for m in a.occurrences] == [
            m.key() for m in b.occurrences
        ]

    def test_forced_matchings_present(self, iir4):
        t1 = chain_template("T1_add_add", (OpType.ADD, OpType.ADD))
        forced = Matching(t1, ("A2", "A1"))
        covering = greedy_cover(iir4, default_library(), forced=[forced])
        covering.verify(iir4)
        assert covering.contains_matching(forced)

    def test_overlapping_forced_rejected(self, iir4):
        t1 = chain_template("T1_add_add", (OpType.ADD, OpType.ADD))
        with pytest.raises(CoveringError):
            greedy_cover(
                iir4,
                default_library(),
                forced=[
                    Matching(t1, ("A2", "A1")),
                    Matching(t1, ("A3", "A2")),
                ],
            )

    def test_ppo_respected(self, iir4):
        marked = iir4.copy()
        marked.set_ppo("A1")
        covering = greedy_cover(marked, default_library())
        covering.verify(marked)
        assert "A1" not in covering.internalized_nodes()

    def test_covering_verify_catches_double_cover(self, iir4):
        t1 = chain_template("T1", (OpType.ADD, OpType.ADD))
        bad = Covering(
            occurrences=[
                Matching(t1, ("A2", "A1")),
                Matching(t1, ("A3", "A2")),
            ]
        )
        with pytest.raises(CoveringError, match="twice"):
            bad.verify(iir4)

    def test_occurrences_by_template(self, iir4):
        covering = greedy_cover(iir4, default_library())
        counts = covering.occurrences_by_template()
        assert sum(counts.values()) == covering.num_occurrences

    def test_occurrence_of(self, iir4):
        covering = greedy_cover(iir4, default_library())
        occ = covering.occurrence_of("A9")
        assert occ is not None and "A9" in occ.covered
        assert covering.occurrence_of("nonexistent") is None


class TestAllocate:
    def test_tight_budget_feasible(self, iir4):
        covering = greedy_cover(iir4, default_library())
        c = critical_path_length(iir4)
        allocation = allocate(iir4, covering, steps=c)
        assert allocation.module_count >= 1
        assert allocation.steps == c

    def test_budget_too_small_rejected(self, iir4):
        covering = greedy_cover(iir4, default_library())
        with pytest.raises(CoveringError):
            allocate(iir4, covering, steps=1)

    def test_relaxed_budget_never_needs_more_modules(self, iir4):
        covering = greedy_cover(iir4, default_library())
        c = critical_path_length(iir4)
        tight = allocate(iir4, covering, steps=c)
        relaxed = allocate(iir4, covering, steps=2 * c)
        assert relaxed.module_count <= tight.module_count

    def test_occurrence_steps_respect_precedence(self, iir4):
        covering = greedy_cover(iir4, default_library())
        c = critical_path_length(iir4)
        allocation = allocate(iir4, covering, steps=c)
        owner = {}
        for occ in covering.occurrences:
            for node in occ.assignment:
                owner[node] = occ.root
        for src, dst in iir4.edges():
            if src in owner and dst in owner and owner[src] != owner[dst]:
                src_occ = covering.occurrence_of(src)
                assert (
                    allocation.occurrence_steps[owner[dst]]
                    >= allocation.occurrence_steps[owner[src]]
                    + src_occ.template.latency
                )

    def test_instances_cover_concurrency(self, iir4):
        covering = greedy_cover(iir4, default_library())
        c = critical_path_length(iir4)
        allocation = allocate(iir4, covering, steps=c)
        # Recount concurrency from assigned steps; must match instances.
        for name, count in allocation.instances.items():
            concurrency = {}
            for occ in covering.occurrences:
                if occ.template.name != name:
                    continue
                step = allocation.occurrence_steps[occ.root]
                for s in range(step, step + occ.template.latency):
                    concurrency[s] = concurrency.get(s, 0) + 1
            assert max(concurrency.values()) == count

    def test_cover_and_allocate_on_suite_design(self):
        design = hyper_design("Modem Filter")
        c = critical_path_length(design)
        covering, allocation = cover_and_allocate(
            design, default_library(), steps=c
        )
        covering.verify(design)
        assert allocation.module_count >= 1

    def test_forced_suboptimal_matching_costs_modules(self, iir4):
        # Forcing an awkward matching should never reduce module count.
        c = critical_path_length(iir4)
        _, base = cover_and_allocate(iir4, default_library(), steps=c)
        t2 = chain_template("T2_cmul_add", (OpType.ADD, OpType.CONST_MUL))
        forced = Matching(t2, ("A3", "C3"))
        _, constrained = cover_and_allocate(
            iir4, default_library(), steps=c, forced=[forced]
        )
        assert constrained.module_count >= base.module_count
