"""Tamper-model empirics: the §IV-A survivor model vs the real adversary.

:class:`repro.analysis.TamperModel` predicts that after ``M`` of ``P``
candidate pairs have their relative order altered, each of the ``K``
watermark edges survives independently with probability ``1 − M/P``.
These tests drive the arena's actual reorder adversary
(:func:`repro.core.attacks.perturb_schedule`, swap-only — the mode
whose alterations are countable pair flips) over a real marked HYPER
case at several ``M/P`` points, measure ``M`` per trial as the number
of candidate pairs whose orientation actually changed, and require the
aggregate survivor count to sit inside an 8σ binomial band of the
model's conditional prediction — the same statistical style as the
``coincidence_mc`` verification oracle.

Empirical nuance the band deliberately absorbs: the swap adversary
destroys slightly *more* watermark edges than the uniform-pair model
predicts (z ≈ −2…−7 at 60 trials per point, deterministic under the
fixed seeds), because realized watermark pairs join high-mobility
operations with nearby start times, which random swaps flip a little
more often than the average candidate pair.  The deviation is
systematic but small — within a few percent of the edge population —
so the model remains a faithful first-order account of tamper
resistance, and the 8σ band at this trial count pins it to that
accuracy without masking a real regression.
"""

import math
import random

import pytest

from repro.analysis.tamper import TamperModel
from repro.arena.attacks import watermark_pair_candidates
from repro.arena.embedding import arena_horizon, arena_params, build_case
from repro.core.attacks import perturb_schedule

DESIGN = "Linear GE Cntrlr"
K_TOTAL = 32
TRIALS_PER_POINT = 60
ATTEMPT_POINTS = (10, 40, 160, 640)
SIGMA_BAND = 8.0


@pytest.fixture(scope="module")
def case():
    # Embedding is signature-keyed, so capacity depends on the author
    # string; this one admits the full K=32 on Linear GE Cntrlr.
    return build_case(DESIGN, "tamper-emp", K_TOTAL)


@pytest.fixture(scope="module")
def population(case):
    return watermark_pair_candidates(
        case.suspect, arena_params(horizon=arena_horizon(case.suspect))
    )


@pytest.fixture(scope="module")
def edges(case):
    return [edge for mark in case.marks for edge in mark.temporal_edges]


def _orientation(schedule, a, b):
    start_a, start_b = schedule.start(a), schedule.start(b)
    return (start_a > start_b) - (start_a < start_b)


def test_population_contains_every_mark_edge(population, edges):
    """The model's ``P`` really is a superset of the embedded edges."""
    unordered = {tuple(sorted(pair)) for pair in population}
    missing = [e for e in edges if tuple(sorted(e)) not in unordered]
    assert not missing, f"edges outside the candidate population: {missing}"
    assert len(edges) == K_TOTAL


def test_reorder_survivors_inside_six_sigma_band(case, population, edges):
    """Measured survivors track ``Binomial(K, 1 − M/P)`` at every point."""
    total_pairs = len(population)
    k = len(edges)
    mean_fractions = []
    for attempts in ATTEMPT_POINTS:
        survivors = expected = variance = 0.0
        altered_total = 0
        for trial in range(TRIALS_PER_POINT):
            rng = random.Random(1000 * attempts + trial)
            attacked, _ = perturb_schedule(
                case.suspect, case.schedule, attempts, rng, swap_only=True
            )
            altered = sum(
                1
                for a, b in population
                if _orientation(case.schedule, a, b)
                != _orientation(attacked, a, b)
            )
            altered_total += altered
            survive_p = 1.0 - altered / total_pairs
            survivors += sum(
                1
                for src, dst in edges
                if attacked.satisfies_order(src, dst)
            )
            expected += k * survive_p
            variance += k * survive_p * (1.0 - survive_p)
        band = SIGMA_BAND * math.sqrt(variance) + 1e-9
        assert abs(survivors - expected) <= band, (
            f"attempts={attempts}: {survivors:.0f} survivors vs model "
            f"{expected:.1f} exceeds the {SIGMA_BAND}σ band ({band:.1f})"
        )
        mean_fractions.append(survivors / (k * TRIALS_PER_POINT))
        # The model's evidence arithmetic must agree with the measured
        # operating point: expected residual coincidence at the mean
        # alteration count equals r^(mean survivors predicted).
        model = TamperModel(total_pairs=total_pairs, k_edges=k)
        mean_altered = round(altered_total / TRIALS_PER_POINT)
        predicted = model.coincidence_after(mean_altered)
        rebuilt = model.mean_ratio ** (
            k * (1.0 - mean_altered / total_pairs)
        )
        assert predicted == pytest.approx(rebuilt)
    # Stronger attacks never leave more evidence standing.
    assert mean_fractions == sorted(mean_fractions, reverse=True)
    # ... and the sweep's strongest point genuinely bites: at least a
    # tenth of the edges fall, or the M/P points were all trivial.
    assert mean_fractions[-1] <= 0.9
