"""Cross-process single-flight on the shared disk cache (PR 6).

The serving fleet points every shard at one on-disk cache directory;
the lock-file claim protocol is what turns N racing processes into one
compute plus N-1 readers.  These tests pin that contract from the
outside:

* two *separate OS processes* asked for the same key run the supplier
  exactly once (the side-effect file proves it) and read back identical
  bytes;
* a live claim (fresh heartbeat) is never stolen, even past the TTL;
* a stale claim — dead owner pid, or heartbeat silent past the TTL —
  is stolen so a SIGKILLed leader cannot wedge the key;
* a waiter that joins a foreign leader gets the leader's value without
  ever invoking its own supplier.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro
from repro.service import ResultCache
from repro.util.perf import PerfRegistry

_LEADER_SCRIPT = """\
import json, os, sys, time

cache_dir, effect_path, key, hold_s = sys.argv[1:5]

from repro.service import ResultCache

cache = ResultCache(directory=cache_dir, claim_poll_s=0.01)


def supplier():
    with open(effect_path, "a", encoding="ascii") as handle:
        handle.write(f"{os.getpid()}\\n")
    time.sleep(float(hold_s))  # long enough for the peer to arrive
    return {"answer": 42, "key": key}


value, how = cache.get_or_compute(key, supplier, cross_process=True)
print(json.dumps({"value": value, "how": how}))
"""


def _environment() -> dict:
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else os.pathsep.join((package_root, existing))
    )
    return env


def test_two_processes_one_key_exactly_one_compute(tmp_path):
    """The satellite regression: two processes, one key, one compute."""
    script = tmp_path / "flight_worker.py"  # a real file: spawn-safe
    script.write_text(_LEADER_SCRIPT, encoding="ascii")
    cache_dir = tmp_path / "cache"
    effect = tmp_path / "computes.log"
    key = "f" * 64

    argv = [sys.executable, str(script), str(cache_dir), str(effect),
            key, "0.4"]
    procs = [
        subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=_environment(),
        )
        for _ in range(2)
    ]
    replies = []
    for proc in procs:
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err.decode("utf-8", "replace")
        replies.append(json.loads(out))

    # Exactly one supplier ran, no matter how the race interleaved.
    computes = effect.read_text(encoding="ascii").splitlines()
    assert len(computes) == 1
    # Both processes hold the same value; the leader reports "miss",
    # the process that joined its claim (or arrived late) a "hit".
    assert replies[0]["value"] == replies[1]["value"] == {
        "answer": 42, "key": key,
    }
    assert sorted(reply["how"] for reply in replies) == ["hit", "miss"]
    # And the claim was released: the flight directory holds no locks.
    assert not list((cache_dir / "flight").rglob("*.claim"))


def test_live_claim_blocks_rivals_until_released(tmp_path):
    """A fresh heartbeat keeps the claim even past the TTL; releasing
    hands leadership over."""
    holder = ResultCache(directory=tmp_path, claim_ttl_s=0.4,
                         registry=PerfRegistry())
    rival = ResultCache(directory=tmp_path, claim_ttl_s=0.4,
                        registry=PerfRegistry())
    key = "a" * 64
    claim = holder.try_claim(key)
    assert claim is not None
    try:
        # Well past the TTL: the heartbeat (ttl/4 touches) must keep
        # the claim fresh, so the rival never steals a live leader.
        deadline = time.time() + 0.9
        while time.time() < deadline:
            assert rival.try_claim(key) is None
            time.sleep(0.05)
    finally:
        claim.release()
    stolen = rival.try_claim(key)
    assert stolen is not None
    stolen.release()


def test_claim_of_dead_pid_is_stolen(tmp_path):
    """A leader that died leaves a claim any waiter may steal at once
    (no TTL wait: the pid check is decisive)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    dead_pid = proc.pid

    registry = PerfRegistry()
    cache = ResultCache(directory=tmp_path, registry=registry)
    key = "b" * 64
    path = cache._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"key": key, "pid": dead_pid}), encoding="ascii"
    )

    claim = cache.try_claim(key)
    assert claim is not None  # stolen and re-acquired in one call
    claim.release()
    assert registry.get("service.flight_steals") == 1


def test_claim_with_silent_heartbeat_is_stolen(tmp_path):
    """A live-pid claim whose mtime went silent past the TTL is stale
    (covers a leader wedged without dying)."""
    registry = PerfRegistry()
    cache = ResultCache(directory=tmp_path, claim_ttl_s=0.3,
                        registry=registry)
    key = "c" * 64
    path = cache._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Our own (alive) pid, but a heartbeat that stopped long ago.
    path.write_text(
        json.dumps({"key": key, "pid": os.getpid()}), encoding="ascii"
    )
    stale = time.time() - 10.0
    os.utime(path, (stale, stale))

    claim = cache.try_claim(key)
    assert claim is not None
    claim.release()
    assert registry.get("service.flight_steals") == 1


def test_waiter_returns_leader_value_without_computing(tmp_path):
    """A get_or_compute waiter polls the store while a *foreign* claim
    is held and serves the leader's entry as a hit — its own supplier
    never runs."""
    leader = ResultCache(directory=tmp_path, registry=PerfRegistry())
    waiter = ResultCache(directory=tmp_path, claim_poll_s=0.01,
                         registry=PerfRegistry())
    key = "d" * 64
    claim = leader.try_claim(key)
    assert claim is not None

    computed = threading.Event()
    box = {}

    def wait_side():
        def supplier():  # pragma: no cover - the assertion is it never runs
            computed.set()
            return {"from": "waiter"}

        box["reply"] = waiter.get_or_compute(
            key, supplier, cross_process=True
        )

    thread = threading.Thread(target=wait_side)
    thread.start()
    time.sleep(0.15)  # the waiter is now polling against our claim
    leader.put(key, {"from": "leader"})
    claim.release()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert not computed.is_set()
    assert box["reply"] == ({"from": "leader"}, "hit")
    assert waiter.registry.get("service.flight_wait_polls") >= 1
