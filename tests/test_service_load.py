"""Load/soak harness: ≥200 mixed jobs through the service engine.

Drives a duplicate-heavy workload (20 unique jobs × 10 copies) through
:class:`repro.service.ServiceClient` and pins the service contract:

* every result is **bit-identical** to a direct library-API call for
  all four original job types (embed / schedule / verify / detect),
  and separately for the arena's ``attack`` job across every
  registered attack;
* the cache hit-rate is at least the workload's duplication rate, and
  concurrent duplicates coalesce (counter > 0) instead of recomputing;
* under a queue cap of 4 the engine **rejects** overload with explicit
  503-style outcomes — it neither queues unboundedly nor deadlocks.
"""

from __future__ import annotations

import random

import pytest

from repro.cdfg.designs import fourth_order_parallel_iir
from repro.cdfg.io import from_dict, to_dict
from repro.core.detector import scan_for_watermark
from repro.core.domain import DomainParams
from repro.core.records import (
    scheduling_watermark_from_dict,
    scheduling_watermark_to_dict,
)
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.scheduling.exact import exact_schedule
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import UNLIMITED
from repro.scheduling.schedule import Schedule
from repro.service import ServiceClient, ServiceConfig, canonical_json
from repro.timing.windows import critical_path_length
from repro.util.perf import PerfRegistry

COPIES = 10  # 20 unique jobs x 10 = 200 jobs, 90% duplication


@pytest.fixture(scope="module")
def artifacts():
    """Design / marked design / record / schedule payloads, via the
    direct APIs (never through the service)."""
    design = fourth_order_parallel_iir()
    marker = SchedulingWatermarker(
        AuthorSignature("Load Author"), SchedulingWMParams(k=3)
    )
    marked, watermark = marker.embed(design)
    schedule = list_schedule(marked)
    return {
        "design": to_dict(design),
        "marked": to_dict(marked),
        "record": scheduling_watermark_to_dict(watermark),
        "schedule": {"start_times": dict(schedule.start_times)},
    }


def _unique_jobs(artifacts):
    """20 unique jobs mixing all four types."""
    design, marked = artifacts["design"], artifacts["marked"]
    record, schedule = artifacts["record"], artifacts["schedule"]
    jobs = []
    for i in range(5):
        jobs.append(
            ("embed", {"design": design, "author": f"Author-{i}", "k": 2,
                       "tau": 4})
        )
    jobs.append(("schedule", {"design": design}))
    jobs.append(("schedule", {"design": marked}))
    jobs.append(("schedule", {"design": design, "scheduler": "exact"}))
    jobs.append(("schedule", {"design": design,
                              "scheduler": "force-directed"}))
    jobs.append(("schedule", {"design": marked,
                              "scheduler": "force-directed"}))
    for author in ("Load Author", "Mallory", "_", "a", "b"):
        jobs.append(
            ("verify", {"design": marked, "schedule": schedule,
                        "record": record, "author": author})
        )
    for i, min_fraction in enumerate((1.0, 0.9, 0.8, 0.7, 0.6)):
        jobs.append(
            ("detect", {"design": marked, "schedule": schedule,
                        "record": record, "author": "Load Author",
                        "min_fraction": min_fraction, "max_hits": 3 + i})
        )
    assert len(jobs) == 20
    return jobs


def _direct_reference(op, params):
    """The job recomputed with direct library calls (the independent
    reference the service must match bit-for-bit)."""
    design = from_dict(params["design"])
    if op == "embed":
        marker = SchedulingWatermarker(
            AuthorSignature(params["author"]),
            SchedulingWMParams(
                domain=DomainParams(
                    tau=params.get("tau", 5),
                    min_domain_size=5,
                    include_probability=0.75,
                ),
                k=params.get("k"),
            ),
        )
        marked, watermark = marker.embed(design)
        return {
            "marked": to_dict(marked),
            "record": scheduling_watermark_to_dict(watermark),
            "root": watermark.root,
            "k": watermark.k,
        }
    if op == "schedule":
        name = params.get("scheduler", "list")
        horizon = critical_path_length(design)
        if name == "list":
            schedule = list_schedule(design)
        elif name == "exact":
            schedule = exact_schedule(design, horizon, UNLIMITED)
        else:
            schedule = force_directed_schedule(design, horizon)
        return {
            "design": design.name,
            "scheduler": name,
            "start_times": dict(schedule.start_times),
            "makespan": schedule.makespan(design),
        }
    schedule = Schedule(dict(params["schedule"]["start_times"]))
    watermark = scheduling_watermark_from_dict(params["record"])
    if op == "verify":
        result = SchedulingWatermarker(
            AuthorSignature(params.get("author") or "_")
        ).verify(design, schedule, watermark)
        return {
            "satisfied": result.satisfied,
            "total": result.total,
            "confidence": result.confidence,
            "detected": result.detected,
        }
    assert op == "detect"
    hits = scan_for_watermark(
        design, schedule, watermark, AuthorSignature(params["author"]),
        DomainParams(tau=watermark.tau, min_domain_size=5),
        min_fraction=params["min_fraction"],
    )
    return {
        "hits": [
            {"root": hit.root, "satisfied": hit.result.satisfied,
             "total": hit.result.total, "confidence": hit.confidence}
            for hit in hits[: params["max_hits"]]
        ]
    }


def test_load_soak_200_jobs_cache_and_identity(artifacts):
    unique = _unique_jobs(artifacts)
    wave = unique * (COPIES // 2)
    random.Random(42).shuffle(wave)
    registry = PerfRegistry()
    with ServiceClient(
        ServiceConfig(workers=2, queue_limit=32), registry=registry
    ) as client:
        # Wave 1: 100 jobs all in flight at once — the 80 duplicates
        # must coalesce onto the 20 leaders, not recompute.
        outcomes = client.submit_many(wave, timeout=600)
        # Wave 2: the same 100 again — now pure cache hits.
        outcomes += client.submit_many(wave, timeout=600)
        stats = client.stats()

    assert len(outcomes) == 20 * COPIES == 200
    assert all(outcome.ok for outcome in outcomes)
    cache = stats["cache"]
    assert cache["cache_misses"] == len(unique) == 20
    hits = cache.get("cache_hits", 0)
    coalesced = cache.get("coalesced", 0)
    assert hits + coalesced == 180
    assert hits >= 100  # the whole second wave is served from cache
    assert coalesced > 0  # concurrent duplicates coalesced in wave 1
    duplication_rate = 1 - len(unique) / len(outcomes)  # 0.9
    assert (hits + coalesced) / len(outcomes) >= duplication_rate
    # Each job type was exercised and measured.
    assert {"embed", "schedule", "verify", "detect"} <= set(stats["jobs"])
    for op in ("embed", "schedule", "verify", "detect"):
        summary = stats["latency_ms"][op]
        assert summary["count"] >= 2 * COPIES
        assert summary["p95_ms"] >= summary["p50_ms"] >= 0.0

    # Bit-identity: every unique job's service result equals the direct
    # library-API computation, byte for byte in canonical JSON.
    by_job = {}
    for (op, params), outcome in zip(wave + wave, outcomes):
        by_job[canonical_json([op, params])] = (op, params, outcome)
    assert len(by_job) == 20
    for op, params, outcome in by_job.values():
        assert canonical_json(outcome.result) == canonical_json(
            _direct_reference(op, params)
        ), f"service result diverged from direct API for {op}"


def test_attack_jobs_identity_and_cache(artifacts):
    """Every registered attack through the ``attack`` op, twice: the
    service result is bit-identical to a direct
    :func:`repro.arena.sweep.attack_once` call, and the duplicate wave
    is served from the content-addressed cache."""
    from repro.arena.attacks import ATTACKS
    from repro.arena.sweep import attack_once

    marked = from_dict(artifacts["marked"])
    suspect = marked.without_temporal_edges()
    suspect_payload = to_dict(suspect)
    schedule = Schedule(dict(artifacts["schedule"]["start_times"]))
    watermark = scheduling_watermark_from_dict(artifacts["record"])
    unique = []
    for seed, attack in enumerate(sorted(ATTACKS)):
        for fault_rate in (0.0, 0.2):
            unique.append(
                ("attack", {
                    "design": suspect_payload,
                    "schedule": artifacts["schedule"],
                    "marks": [artifacts["record"]],
                    "attack": attack,
                    "strength": 0.5,
                    "seed": seed,
                    "fault_rate": fault_rate,
                    "fault_kinds": ["delete_edges"],
                    "tau": 4,
                })
            )
    registry = PerfRegistry()
    with ServiceClient(
        ServiceConfig(workers=2, queue_limit=64), registry=registry
    ) as client:
        outcomes = client.submit_many(unique * 2, timeout=600)
        stats = client.stats()

    assert len(outcomes) == 2 * len(unique)
    assert all(outcome.ok for outcome in outcomes)
    cache = stats["cache"]
    assert cache["cache_misses"] == len(unique)
    assert (
        cache.get("cache_hits", 0) + cache.get("coalesced", 0)
        == len(unique)
    )
    for (_, params), outcome in zip(unique, outcomes):
        reference = attack_once(
            suspect,
            schedule,
            (watermark,),
            attack=params["attack"],
            strength=params["strength"],
            seed=params["seed"],
            fault_rate=params["fault_rate"],
            fault_kinds=tuple(params["fault_kinds"]),
            tau=params["tau"],
        )
        assert canonical_json(outcome.result) == canonical_json(
            reference
        ), f"service attack diverged from library for {params['attack']}"


def test_overload_rejects_instead_of_queueing(artifacts):
    """Queue cap 4, one worker, 12 distinct slow jobs: exactly the cap
    may be in flight, the rest are rejected 503 — and nothing hangs."""
    registry = PerfRegistry()
    jobs = [
        ("schedule",
         {"design": artifacts["design"], "tag": i,
          "_hook": {"sleep_s": 0.2}})
        for i in range(12)
    ]
    with ServiceClient(
        ServiceConfig(workers=1, queue_limit=4), registry=registry
    ) as client:
        outcomes = client.submit_many(jobs, timeout=120)
        stats = client.stats()
    accepted = [o for o in outcomes if o.ok]
    rejected = [o for o in outcomes if not o.ok]
    assert len(accepted) == 4
    assert len(rejected) == 8
    assert all(o.code == 503 for o in rejected)
    assert all("queue full" in o.error for o in rejected)
    assert stats["cache"]["rejected"] == 8
    assert stats["queue"]["max_depth"] == 4
    # Rejection is explicit shedding, not failure: retrying after the
    # burst drains succeeds (and is served from cache).
    with ServiceClient(ServiceConfig(workers=1, queue_limit=4)) as client:
        retry = client.submit("schedule", {"design": artifacts["design"]})
        assert retry.ok
