"""localmark — local watermarks for behavioral synthesis.

Reproduction of Kirovski & Potkonjak, *"Local Watermarks: Methodology
and Application to Behavioral Synthesis"*: intellectual-property
protection that hides many small, independently detectable watermarks in
solutions to behavioral-synthesis tasks (operation scheduling and
template matching).

Quickstart
----------
>>> from repro import (
...     AuthorSignature, SchedulingWatermarker, list_schedule,
... )
>>> from repro.cdfg.designs import fourth_order_parallel_iir
>>> design = fourth_order_parallel_iir()
>>> marker = SchedulingWatermarker(AuthorSignature("alice"))
>>> marked, watermark = marker.embed(design)
>>> schedule = list_schedule(marked)
>>> result = marker.verify(design, schedule, watermark)
>>> result.detected
True
"""

from repro.cdfg import CDFG, CDFGBuilder, EdgeKind, OpType, ResourceClass
from repro.core import (
    MatchingWatermark,
    MatchingWatermarker,
    MatchingWMParams,
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
    detect_by_rederivation,
    scan_for_watermark,
    verify_by_record,
)
from repro.crypto import RC4, AuthorSignature, BitStream
from repro.errors import ReproError
from repro.scheduling import (
    ResourceSet,
    Schedule,
    force_directed_schedule,
    list_schedule,
)
from repro.templates import Template, cover_and_allocate, default_library

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CDFG",
    "CDFGBuilder",
    "EdgeKind",
    "OpType",
    "ResourceClass",
    "AuthorSignature",
    "BitStream",
    "RC4",
    "Schedule",
    "ResourceSet",
    "list_schedule",
    "force_directed_schedule",
    "SchedulingWatermarker",
    "SchedulingWatermark",
    "SchedulingWMParams",
    "MatchingWatermarker",
    "MatchingWatermark",
    "MatchingWMParams",
    "Template",
    "default_library",
    "cover_and_allocate",
    "verify_by_record",
    "detect_by_rederivation",
    "scan_for_watermark",
    "ReproError",
]
