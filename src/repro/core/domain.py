"""Domain (locality) selection for local watermarks.

§IV-A's two-step process:

1. pick a root ``n_o`` and take its fanin tree ``T_o`` of max-distance
   ``τ`` — the candidate locality;
2. uniquely identify every node of ``T_o`` (criteria C1–C3), then walk
   ``T_o`` top-down breadth-first; at every visited node the
   author-specific bit sequence picks **at least one** input to continue
   into and includes/excludes each remaining input with a fixed
   probability.  The visited set is the watermark domain ``T``.

Because inputs are considered in identifier order and all decisions come
from the keyed bitstream, the same signature always carves the same
subtree out of the same locality — and a detector owning the signature
can re-derive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cdfg.graph import CDFG, EdgeKind
from repro.core.ordering import NodeOrdering, order_nodes, structural_hashes
from repro.crypto.bitstream import BitStream
from repro.errors import DomainSelectionError
from repro.resilience.budget import Budget, charge

_LOCALITY_KINDS = (EdgeKind.DATA, EdgeKind.CONTROL)


@dataclass(frozen=True)
class DomainParams:
    """Knobs of domain selection.

    Attributes
    ----------
    tau:
        Max fanin distance of the candidate locality ``T_o`` — the
        paper's subtree cardinality driver ``τ``.
    include_probability:
        Probability that each non-mandatory input joins the breadth-first
        frontier ("the exclusion of inputs can be done with a given
        probability").
    min_domain_size:
        Domains smaller than this are rejected (caller retries with a
        different root).
    """

    tau: int = 4
    include_probability: float = 0.75
    min_domain_size: int = 4

    def __post_init__(self) -> None:
        if self.tau < 1:
            raise ValueError("tau must be >= 1")
        if not 0.0 <= self.include_probability <= 1.0:
            raise ValueError("include_probability must lie in [0, 1]")
        if self.min_domain_size < 1:
            raise ValueError("min_domain_size must be >= 1")


@dataclass(frozen=True)
class Domain:
    """A selected watermark locality.

    Attributes
    ----------
    root:
        The locality root ``n_o``.
    cone:
        The candidate locality ``T_o`` in canonical (identifier) order.
    nodes:
        The selected subtree ``T ⊆ T_o`` in canonical order.
    ordering:
        The canonical ordering of ``T_o`` (identifier assignment).
    """

    root: str
    cone: Tuple[str, ...]
    nodes: Tuple[str, ...]
    ordering: NodeOrdering = field(repr=False)

    @property
    def size(self) -> int:
        """``|T|``."""
        return len(self.nodes)


def candidate_roots(cdfg: CDFG, params: DomainParams) -> List[str]:
    """Roots worth considering, in a name-independent canonical order.

    A useful root has a fanin cone of at least ``min_domain_size`` nodes
    within distance ``tau``.  Candidates are ordered by their structural
    hash so the bitstream's choice is reproducible across renamings
    (up to graph automorphism).
    """
    schedulable = set(cdfg.schedulable_operations)
    candidates = [
        node
        for node in schedulable
        if len(cdfg.fanin_tree(node, params.tau) & schedulable)
        >= params.min_domain_size
    ]
    if not candidates:
        raise DomainSelectionError(
            f"no node of {cdfg.name!r} has a fanin cone of "
            f">= {params.min_domain_size} schedulable nodes within "
            f"distance {params.tau}"
        )
    hashes = structural_hashes(cdfg, set(cdfg.operations))
    return sorted(candidates, key=lambda n: (hashes[n], n))


def select_domain(
    cdfg: CDFG,
    root: str,
    bitstream: BitStream,
    params: DomainParams,
    budget: Optional[Budget] = None,
) -> Domain:
    """Carve the signature-specific subtree ``T`` out of root's cone.

    The traversal visits the cone top-down (reverse edge direction)
    breadth-first.  At each node, inputs *within the cone* are listed in
    identifier order; the bitstream picks one mandatory input and
    includes each other input with ``include_probability``.

    An optional *budget* is charged once per visited cone node and may
    raise :class:`~repro.errors.BudgetExceededError` mid-carve.
    """
    schedulable = set(cdfg.schedulable_operations)
    cone = cdfg.fanin_tree(root, params.tau) & schedulable
    if root not in cone:
        raise DomainSelectionError(f"root {root!r} is not schedulable")
    ordering = order_nodes(cdfg, root, sorted(cone))

    selected = {root}
    queue: List[str] = [root]
    while queue:
        current = queue.pop(0)
        charge(budget, what="select_domain")
        inputs = [
            pred
            for pred in cdfg.predecessors(
                current, kinds=_LOCALITY_KINDS, skeleton=True
            )
            if pred in cone and pred not in selected
        ]
        if not inputs:
            continue
        inputs.sort(key=lambda n: ordering.identifier[n])
        mandatory = bitstream.choice(inputs)
        chosen = [mandatory]
        for candidate in inputs:
            if candidate is mandatory:
                continue
            if bitstream.bernoulli(params.include_probability):
                chosen.append(candidate)
        for node in chosen:
            selected.add(node)
            queue.append(node)

    ordered_cone = tuple(ordering.nodes)
    ordered_selected = tuple(
        n for n in ordering.nodes if n in selected
    )
    return Domain(
        root=root,
        cone=ordered_cone,
        nodes=ordered_selected,
        ordering=ordering,
    )


def select_root_and_domain(
    cdfg: CDFG,
    bitstream: BitStream,
    params: DomainParams,
    max_retries: int = 16,
    forced_root: Optional[str] = None,
    roots: Optional[List[str]] = None,
    budget: Optional[Budget] = None,
) -> Domain:
    """Pick a root with the bitstream and carve its domain.

    Retries with the next bitstream choice when the carved domain is
    smaller than ``min_domain_size`` (the paper repeats subtree
    selection when the eligible set ends up too small).

    Parameters
    ----------
    roots:
        Precomputed :func:`candidate_roots` list.  Candidate roots are
        invariant under temporal-edge insertion (localities ignore
        temporal edges), so callers embedding many watermarks can
        compute the list once and avoid re-hashing the whole design.
    """
    if forced_root is not None:
        domain = select_domain(cdfg, forced_root, bitstream, params, budget)
        if domain.size < params.min_domain_size:
            raise DomainSelectionError(
                f"domain at forced root {forced_root!r} has only "
                f"{domain.size} nodes (< {params.min_domain_size})"
            )
        return domain
    if roots is None:
        roots = candidate_roots(cdfg, params)
    last_size = 0
    for _ in range(max_retries):
        root = bitstream.choice(roots)
        domain = select_domain(cdfg, root, bitstream, params, budget)
        if domain.size >= params.min_domain_size:
            return domain
        last_size = domain.size
    raise DomainSelectionError(
        f"no domain of >= {params.min_domain_size} nodes found in "
        f"{max_retries} attempts (last size: {last_size})"
    )
