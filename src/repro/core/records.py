"""Watermark record (de)serialization.

An author must archive each embedded watermark to assert ownership
later, possibly years after synthesis.  Records serialize to plain JSON
so they can live in whatever registry or escrow the author uses; the
schema is explicit and versioned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.matching_wm import MatchingWatermark
from repro.core.scheduling_wm import SchedulingWatermark
from repro.errors import WatermarkError
from repro.templates.library import Template, TemplateNode
from repro.templates.matcher import Matching
from repro.cdfg.ops import OpType
from repro.util.atomicio import atomic_write_text

SCHEMA_VERSION = 1


def scheduling_watermark_to_dict(wm: SchedulingWatermark) -> Dict[str, Any]:
    """Serialize a scheduling watermark record.

    Periodic fields (per-edge iteration distances and the initiation
    interval) are emitted only when present, so acyclic records keep
    their pre-periodic byte shape and old archives stay comparable.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "scheduling",
        "author_fingerprint": wm.author_fingerprint,
        "root": wm.root,
        "cone": list(wm.cone),
        "domain_nodes": list(wm.domain_nodes),
        "eligible_nodes": list(wm.eligible_nodes),
        "selected_nodes": list(wm.selected_nodes),
        "temporal_edges": [list(edge) for edge in wm.temporal_edges],
        "temporal_edge_ids": [list(pair) for pair in wm.temporal_edge_ids],
        "horizon": wm.horizon,
        "critical_path": wm.critical_path,
        "tau": wm.tau,
    }
    if wm.distances:
        payload["distances"] = list(wm.distances)
    if wm.ii is not None:
        payload["ii"] = wm.ii
    return payload


def scheduling_watermark_from_dict(payload: Dict[str, Any]) -> SchedulingWatermark:
    """Deserialize a scheduling watermark record."""
    try:
        if payload["kind"] != "scheduling":
            raise WatermarkError(
                f"not a scheduling watermark record: {payload['kind']!r}"
            )
        return SchedulingWatermark(
            author_fingerprint=payload["author_fingerprint"],
            root=payload["root"],
            cone=tuple(payload["cone"]),
            domain_nodes=tuple(payload["domain_nodes"]),
            eligible_nodes=tuple(payload["eligible_nodes"]),
            selected_nodes=tuple(payload["selected_nodes"]),
            temporal_edges=tuple(
                (src, dst) for src, dst in payload["temporal_edges"]
            ),
            temporal_edge_ids=tuple(
                (a, b) for a, b in payload["temporal_edge_ids"]
            ),
            horizon=payload["horizon"],
            critical_path=payload["critical_path"],
            tau=payload.get("tau", 4),
            distances=tuple(payload.get("distances", ())),
            ii=payload.get("ii"),
        )
    except KeyError as exc:
        raise WatermarkError(f"malformed watermark record: {exc}") from exc


def _template_to_dict(template: Template) -> Dict[str, Any]:
    return {
        "name": template.name,
        "latency": template.latency,
        "nodes": [
            {"op": node.op.name, "children": list(node.children)}
            for node in template.nodes
        ],
    }


def _template_from_dict(payload: Dict[str, Any]) -> Template:
    return Template(
        name=payload["name"],
        latency=payload["latency"],
        nodes=tuple(
            TemplateNode(OpType[node["op"]], tuple(node["children"]))
            for node in payload["nodes"]
        ),
    )


def matching_watermark_to_dict(wm: MatchingWatermark) -> Dict[str, Any]:
    """Serialize a template-matching watermark record."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "matching",
        "author_fingerprint": wm.author_fingerprint,
        "domain_size": wm.domain_size,
        "ppo_nodes": list(wm.ppo_nodes),
        "enforced": [
            {
                "template": _template_to_dict(matching.template),
                "assignment": list(matching.assignment),
            }
            for matching in wm.enforced
        ],
    }


def matching_watermark_from_dict(payload: Dict[str, Any]) -> MatchingWatermark:
    """Deserialize a template-matching watermark record."""
    try:
        if payload["kind"] != "matching":
            raise WatermarkError(
                f"not a matching watermark record: {payload['kind']!r}"
            )
        return MatchingWatermark(
            author_fingerprint=payload["author_fingerprint"],
            domain_size=payload["domain_size"],
            ppo_nodes=tuple(payload["ppo_nodes"]),
            enforced=tuple(
                Matching(
                    _template_from_dict(entry["template"]),
                    tuple(entry["assignment"]),
                )
                for entry in payload["enforced"]
            ),
        )
    except KeyError as exc:
        raise WatermarkError(f"malformed watermark record: {exc}") from exc


def save_record(
    wm: Union[SchedulingWatermark, MatchingWatermark],
    path: Union[str, Path],
) -> None:
    """Write a watermark record to a JSON file."""
    if isinstance(wm, SchedulingWatermark):
        payload = scheduling_watermark_to_dict(wm)
    elif isinstance(wm, MatchingWatermark):
        payload = matching_watermark_to_dict(wm)
    else:
        raise WatermarkError(f"unknown watermark type: {type(wm)!r}")
    # Atomic: an author's only proof of ownership must never be a torn
    # file because the archiving process died mid-write.
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_record(
    path: Union[str, Path],
) -> Union[SchedulingWatermark, MatchingWatermark]:
    """Read a watermark record from a JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    kind = payload.get("kind")
    if kind == "scheduling":
        return scheduling_watermark_from_dict(payload)
    if kind == "matching":
        return matching_watermark_from_dict(payload)
    raise WatermarkError(f"unknown watermark record kind: {kind!r}")


def save_records(
    records: List[Union[SchedulingWatermark, MatchingWatermark]],
    path: Union[str, Path],
) -> None:
    """Write several records (e.g. from ``embed_many``) to one file."""
    payload = []
    for wm in records:
        if isinstance(wm, SchedulingWatermark):
            payload.append(scheduling_watermark_to_dict(wm))
        elif isinstance(wm, MatchingWatermark):
            payload.append(matching_watermark_to_dict(wm))
        else:
            raise WatermarkError(f"unknown watermark type: {type(wm)!r}")
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_records(
    path: Union[str, Path],
) -> List[Union[SchedulingWatermark, MatchingWatermark]]:
    """Read a list of records written by :func:`save_records`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    records: List[Union[SchedulingWatermark, MatchingWatermark]] = []
    for entry in payload:
        if entry.get("kind") == "scheduling":
            records.append(scheduling_watermark_from_dict(entry))
        elif entry.get("kind") == "matching":
            records.append(matching_watermark_from_dict(entry))
        else:
            raise WatermarkError(
                f"unknown watermark record kind: {entry.get('kind')!r}"
            )
    return records
