"""The paper's contribution: local watermarks for behavioral synthesis."""

from repro.core.attacks import (
    AttackOutcome,
    DamageReport,
    GhostSearchResult,
    apply_renaming,
    compute_damage,
    ghost_signature_search,
    perturb_schedule,
    rename_attack,
    reorder_attack,
    reschedule_attack,
)
from repro.core.coincidence import (
    ExactPc,
    approx_log10_pc,
    authorship_from_log10,
    exact_pc,
    format_pc_power,
)
from repro.core.fingerprinting import (
    CustomerMatch,
    Fingerprinter,
    FingerprintRecord,
)
from repro.core.records import (
    load_record,
    load_records,
    save_record,
    save_records,
)
from repro.core.detector import (
    DetectionHit,
    detect_by_rederivation,
    scan_for_watermark,
    verify_by_record,
)
from repro.core.domain import (
    Domain,
    DomainParams,
    candidate_roots,
    select_domain,
    select_root_and_domain,
)
from repro.core.matching_wm import (
    MatchingVerification,
    MatchingWatermark,
    MatchingWatermarker,
    MatchingWMParams,
)
from repro.core.ordering import NodeOrdering, order_nodes, structural_hashes
from repro.core.scheduling_wm import (
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
    VerificationResult,
)

__all__ = [
    "NodeOrdering",
    "order_nodes",
    "structural_hashes",
    "Domain",
    "DomainParams",
    "candidate_roots",
    "select_domain",
    "select_root_and_domain",
    "SchedulingWatermarker",
    "SchedulingWatermark",
    "SchedulingWMParams",
    "VerificationResult",
    "MatchingWatermarker",
    "MatchingWatermark",
    "MatchingWMParams",
    "MatchingVerification",
    "ExactPc",
    "exact_pc",
    "approx_log10_pc",
    "authorship_from_log10",
    "format_pc_power",
    "verify_by_record",
    "detect_by_rederivation",
    "scan_for_watermark",
    "DetectionHit",
    "AttackOutcome",
    "DamageReport",
    "compute_damage",
    "perturb_schedule",
    "reorder_attack",
    "reschedule_attack",
    "rename_attack",
    "apply_renaming",
    "ghost_signature_search",
    "GhostSearchResult",
    "Fingerprinter",
    "FingerprintRecord",
    "CustomerMatch",
    "save_record",
    "load_record",
    "save_records",
    "load_records",
]
