"""Adversarial models against local watermarks (§IV-A *Discussion*).

Implemented attacks:

* :func:`reorder_attack` — local tampering: the adversary swaps the
  execution order of randomly chosen operation pairs wherever the
  result stays a legal schedule.  The paper's tamper-resistance argument
  is about exactly this adversary.
* :func:`reschedule_attack` — the adversary re-runs an off-the-shelf
  scheduler on the recovered (unconstrained) CDFG, hoping the new
  schedule no longer satisfies the hidden constraints.
* :func:`rename_attack` — node identifiers are destroyed (detection
  must rely on structure alone).
* :func:`ghost_signature_search` — the adversary (or an honest court)
  tries many *other* signatures against the marked design to measure
  how likely a false claim of authorship is.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.core.scheduling_wm import (
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
    VerificationResult,
)
from repro.crypto.signature import AuthorSignature
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class AttackOutcome:
    """Result of an attack attempt against a watermarked schedule."""

    schedule: Schedule
    alterations: int
    verification: VerificationResult

    @property
    def surviving_fraction(self) -> float:
        """Fraction of watermark constraints the attack failed to erase."""
        return self.verification.fraction


def _legal_swap(
    cdfg: CDFG, schedule: Schedule, a: str, b: str
) -> Optional[Schedule]:
    """Swap the start times of *a* and *b* if the result stays legal."""
    candidate = schedule.copy()
    candidate.start_times[a], candidate.start_times[b] = (
        candidate.start_times[b],
        candidate.start_times[a],
    )
    if candidate.is_valid(cdfg):
        return candidate
    return None


def reorder_attack(
    cdfg: CDFG,
    schedule: Schedule,
    watermark: SchedulingWatermark,
    signature: AuthorSignature,
    attempts: int,
    seed: int,
) -> AttackOutcome:
    """Randomly swap operation pairs, keeping the schedule legal.

    *cdfg* is the design as the attacker sees it — **without** temporal
    edges (only data/control precedence constrains the swaps).

    Returns the attacked schedule, the number of successful swaps, and
    how much of the watermark survived.
    """
    rng = random.Random(seed)
    nodes = cdfg.schedulable_operations
    current = schedule.copy()
    makespan = current.makespan(cdfg)
    successful = 0
    for _ in range(attempts):
        if rng.random() < 0.5:
            # Pairwise swap of start times.
            a, b = rng.sample(nodes, 2)
            if current.start(a) == current.start(b):
                continue
            swapped = _legal_swap(cdfg, current, a, b)
            if swapped is not None:
                current = swapped
                successful += 1
        else:
            # Move one op to a different step within the makespan: this
            # flips its relative order against every op it crosses.
            node = rng.choice(nodes)
            new_start = rng.randrange(max(1, makespan))
            if new_start == current.start(node):
                continue
            candidate = current.copy()
            candidate.start_times[node] = new_start
            if candidate.is_valid(cdfg):
                current = candidate
                successful += 1
    marker = SchedulingWatermarker(signature)
    verification = marker.verify(cdfg, current, watermark)
    return AttackOutcome(
        schedule=current, alterations=successful, verification=verification
    )


def reschedule_attack(
    cdfg: CDFG,
    watermark: SchedulingWatermark,
    signature: AuthorSignature,
    scheduler: Callable[[CDFG], Schedule] = list_schedule,
) -> AttackOutcome:
    """Re-run a scheduler on the unconstrained design.

    This is the strongest practical attack — it discards the original
    schedule entirely.  It also forfeits the engineering the schedule
    embodied; the paper's position is that forcing the adversary to
    repeat the design process *is* the protection.
    """
    clean = cdfg.without_temporal_edges()
    fresh = scheduler(clean)
    marker = SchedulingWatermarker(signature)
    verification = marker.verify(clean, fresh, watermark)
    return AttackOutcome(
        schedule=fresh,
        alterations=len(clean.schedulable_operations),
        verification=verification,
    )


def rename_attack(cdfg: CDFG, seed: int) -> Tuple[CDFG, Dict[str, str]]:
    """Destroy every node name; returns (renamed graph, old→new map)."""
    rng = random.Random(seed)
    nodes = list(cdfg.operations)
    shuffled = list(range(len(nodes)))
    rng.shuffle(shuffled)
    mapping = {
        node: f"n{index:05d}" for node, index in zip(nodes, shuffled)
    }
    return cdfg.renamed(mapping, name=f"{cdfg.name}.renamed"), mapping


def apply_renaming(schedule: Schedule, mapping: Dict[str, str]) -> Schedule:
    """Translate a schedule through a renaming map."""
    return Schedule(
        {mapping.get(node, node): t for node, t in schedule.start_times.items()}
    )


@dataclass(frozen=True)
class GhostSearchResult:
    """Best false-positive found while searching foreign signatures."""

    best_identity: str
    best_fraction: float
    tried: int
    detections: int


def ghost_signature_search(
    cdfg: CDFG,
    schedule: Schedule,
    n_candidates: int,
    seed: int,
    params: Optional[SchedulingWMParams] = None,
) -> GhostSearchResult:
    """Try *n_candidates* foreign signatures against a suspect schedule.

    For each candidate identity, re-derive its watermark constraints on
    the suspect design and measure how many hold by coincidence.  A
    sound scheme shows a low best fraction and zero full detections.
    """
    rng = random.Random(seed)
    best_identity = ""
    best_fraction = -1.0
    detections = 0
    tried = 0
    clean = cdfg.without_temporal_edges()
    for index in range(n_candidates):
        identity = f"ghost-{seed}-{index}-{rng.getrandbits(32):08x}"
        marker = SchedulingWatermarker(AuthorSignature(identity), params)
        try:
            _, derived = marker.embed(clean)
        except Exception:
            continue
        tried += 1
        verification = marker.verify(clean, schedule, derived)
        if verification.detected:
            detections += 1
        if verification.fraction > best_fraction:
            best_fraction = verification.fraction
            best_identity = identity
    return GhostSearchResult(
        best_identity=best_identity,
        best_fraction=max(best_fraction, 0.0),
        tried=tried,
        detections=detections,
    )
