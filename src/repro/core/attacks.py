"""Adversarial models against local watermarks (§IV-A *Discussion*).

Implemented attacks:

* :func:`reorder_attack` — local tampering: the adversary swaps the
  execution order of randomly chosen operation pairs wherever the
  result stays a legal schedule.  The paper's tamper-resistance argument
  is about exactly this adversary.
* :func:`reschedule_attack` — the adversary re-runs an off-the-shelf
  scheduler on the recovered (unconstrained) CDFG, hoping the new
  schedule no longer satisfies the hidden constraints.
* :func:`rename_attack` — node identifiers are destroyed (detection
  must rely on structure alone).
* :func:`ghost_signature_search` — the adversary (or an honest court)
  tries many *other* signatures against the marked design to measure
  how likely a false claim of authorship is.

Determinism contract: every randomized attack draws from one explicit
:class:`random.Random` — pass ``rng=`` to thread a shared per-trial
generator (the arena's replay contract, mirroring
:mod:`repro.resilience.runner`), or ``seed=`` to create one locally.
No attack touches the module-global ``random`` state.

Every :class:`AttackOutcome` carries ``damage`` — the normalized
makespan/resource degradation the attack inflicted relative to the
unattacked schedule (see :func:`compute_damage`) — so attack/detection
trade-off curves share one x-axis instead of each call site
recomputing it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.core.scheduling_wm import (
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
    VerificationResult,
)
from repro.crypto.signature import AuthorSignature
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.schedule import Schedule


def resolve_rng(
    seed: Optional[int], rng: Optional[random.Random]
) -> random.Random:
    """The single generator an attack draws from.

    Exactly one of *seed* / *rng* must be given: a shared generator
    (arena trials thread one through every attack of a trial) wins over
    locally seeding a fresh one.
    """
    if rng is not None:
        return rng
    if seed is None:
        raise ValueError("attack needs seed= or rng=")
    return random.Random(seed)


# ----------------------------------------------------------------------
# damage: the ROC x-axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DamageReport:
    """Quality degradation of an attacked schedule vs. the original.

    ``makespan_overhead`` and ``resource_overhead`` are relative
    increases (clamped at zero: an attack that *improves* a metric did
    not damage it); ``value`` is their sum — the design-damage axis of
    the arena's detection-vs-damage curves.
    """

    base_makespan: int
    attacked_makespan: int
    base_units: int
    attacked_units: int
    makespan_overhead: float
    resource_overhead: float

    @property
    def value(self) -> float:
        return self.makespan_overhead + self.resource_overhead


def _restricted_makespan(
    cdfg: CDFG, schedule: Schedule, nodes: Optional[frozenset]
) -> int:
    spans = [
        start + cdfg.latency(node)
        for node, start in schedule.start_times.items()
        if node in cdfg and (nodes is None or node in nodes)
    ]
    return max(spans) if spans else 0


def _restricted_units(
    cdfg: CDFG, schedule: Schedule, nodes: Optional[frozenset]
) -> int:
    """Summed peak per-class concurrency over the counted nodes."""
    usage: Dict[int, Dict[ResourceClass, int]] = {}
    for node, start in schedule.start_times.items():
        if node not in cdfg or (nodes is not None and node not in nodes):
            continue
        op = cdfg.op(node)
        if op.resource_class is ResourceClass.IO:
            continue
        for step in range(start, start + cdfg.latency(node)):
            step_map = usage.setdefault(step, {})
            step_map[op.resource_class] = (
                step_map.get(op.resource_class, 0) + 1
            )
    peaks: Dict[ResourceClass, int] = {}
    for step_map in usage.values():
        for cls, count in step_map.items():
            peaks[cls] = max(peaks.get(cls, 0), count)
    return sum(peaks.values())


def _overhead(base: int, attacked: int) -> float:
    if base <= 0:
        return 0.0 if attacked <= 0 else 1.0
    return max(0.0, (attacked - base) / base)


def compute_damage(
    cdfg: CDFG,
    baseline: Schedule,
    attacked: Schedule,
    attacked_cdfg: Optional[CDFG] = None,
    nodes: Optional[Iterable[str]] = None,
) -> DamageReport:
    """Normalized quality damage of *attacked* relative to *baseline*.

    Baseline metrics are measured on *cdfg*; attacked metrics on
    *attacked_cdfg* when the attack mutated the design itself (edge
    rewiring, host embedding).  *nodes* restricts both measurements to
    the original design's operations, so surrounding a marked core with
    a host system does not count the host's own cost as damage.
    """
    attacked_cdfg = attacked_cdfg if attacked_cdfg is not None else cdfg
    counted = frozenset(nodes) if nodes is not None else None
    base_makespan = _restricted_makespan(cdfg, baseline, counted)
    att_makespan = _restricted_makespan(attacked_cdfg, attacked, counted)
    base_units = _restricted_units(cdfg, baseline, counted)
    att_units = _restricted_units(attacked_cdfg, attacked, counted)
    return DamageReport(
        base_makespan=base_makespan,
        attacked_makespan=att_makespan,
        base_units=base_units,
        attacked_units=att_units,
        makespan_overhead=_overhead(base_makespan, att_makespan),
        resource_overhead=_overhead(base_units, att_units),
    )


@dataclass(frozen=True)
class AttackOutcome:
    """Result of an attack attempt against a watermarked schedule.

    ``damage`` is the normalized makespan/resource degradation vs. the
    unattacked schedule (:attr:`DamageReport.value`) — the uniform
    x-axis every attack reports for detection-vs-damage curves.
    """

    schedule: Schedule
    alterations: int
    verification: VerificationResult
    damage: float = 0.0

    @property
    def surviving_fraction(self) -> float:
        """Fraction of watermark constraints the attack failed to erase."""
        return self.verification.fraction


def _legal_swap(
    cdfg: CDFG, schedule: Schedule, a: str, b: str
) -> Optional[Schedule]:
    """Swap the start times of *a* and *b* if the result stays legal."""
    candidate = schedule.copy()
    candidate.start_times[a], candidate.start_times[b] = (
        candidate.start_times[b],
        candidate.start_times[a],
    )
    if candidate.is_valid(cdfg):
        return candidate
    return None


def perturb_schedule(
    cdfg: CDFG,
    schedule: Schedule,
    attempts: int,
    rng: random.Random,
    swap_only: bool = False,
) -> Tuple[Schedule, int]:
    """The reorder adversary's perturbation loop, attack-free.

    Performs up to *attempts* random legal mutations — 50/50 pairwise
    start-time swaps and single-op moves to a random step within the
    makespan (``swap_only=True`` restricts to swaps, which flip exactly
    the pairs involving the two chosen ops — the mode the tamper-model
    empirics count).  Returns the perturbed schedule and how many
    mutations landed.  Shared by :func:`reorder_attack` and the arena's
    reorder attack so both adversaries are literally the same code.
    """
    nodes = cdfg.schedulable_operations
    current = schedule.copy()
    makespan = current.makespan(cdfg)
    successful = 0
    for _ in range(attempts):
        if swap_only or rng.random() < 0.5:
            # Pairwise swap of start times.
            a, b = rng.sample(nodes, 2)
            if current.start(a) == current.start(b):
                continue
            swapped = _legal_swap(cdfg, current, a, b)
            if swapped is not None:
                current = swapped
                successful += 1
        else:
            # Move one op to a different step within the makespan: this
            # flips its relative order against every op it crosses.
            node = rng.choice(nodes)
            new_start = rng.randrange(max(1, makespan))
            if new_start == current.start(node):
                continue
            candidate = current.copy()
            candidate.start_times[node] = new_start
            if candidate.is_valid(cdfg):
                current = candidate
                successful += 1
    return current, successful


def reorder_attack(
    cdfg: CDFG,
    schedule: Schedule,
    watermark: SchedulingWatermark,
    signature: AuthorSignature,
    attempts: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> AttackOutcome:
    """Randomly swap operation pairs, keeping the schedule legal.

    *cdfg* is the design as the attacker sees it — **without** temporal
    edges (only data/control precedence constrains the swaps).

    Returns the attacked schedule, the number of successful swaps, how
    much of the watermark survived, and the quality damage inflicted.
    """
    generator = resolve_rng(seed, rng)
    current, successful = perturb_schedule(
        cdfg, schedule, attempts, generator
    )
    marker = SchedulingWatermarker(signature)
    verification = marker.verify(cdfg, current, watermark)
    return AttackOutcome(
        schedule=current,
        alterations=successful,
        verification=verification,
        damage=compute_damage(cdfg, schedule, current).value,
    )


def reschedule_attack(
    cdfg: CDFG,
    watermark: SchedulingWatermark,
    signature: AuthorSignature,
    scheduler: Callable[[CDFG], Schedule] = list_schedule,
    baseline: Optional[Schedule] = None,
) -> AttackOutcome:
    """Re-run a scheduler on the unconstrained design.

    This is the strongest practical attack — it discards the original
    schedule entirely.  It also forfeits the engineering the schedule
    embodied; the paper's position is that forcing the adversary to
    repeat the design process *is* the protection.  Pass *baseline*
    (the original watermarked schedule) to measure the residual quality
    damage of the rebuild; without it damage is reported as 0.
    """
    clean = cdfg.without_temporal_edges()
    fresh = scheduler(clean)
    marker = SchedulingWatermarker(signature)
    verification = marker.verify(clean, fresh, watermark)
    damage = (
        compute_damage(clean, baseline, fresh).value
        if baseline is not None
        else 0.0
    )
    return AttackOutcome(
        schedule=fresh,
        alterations=len(clean.schedulable_operations),
        verification=verification,
        damage=damage,
    )


def rename_attack(
    cdfg: CDFG,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[CDFG, Dict[str, str]]:
    """Destroy every node name; returns (renamed graph, old→new map)."""
    rng = resolve_rng(seed, rng)
    nodes = list(cdfg.operations)
    shuffled = list(range(len(nodes)))
    rng.shuffle(shuffled)
    mapping = {
        node: f"n{index:05d}" for node, index in zip(nodes, shuffled)
    }
    return cdfg.renamed(mapping, name=f"{cdfg.name}.renamed"), mapping


def apply_renaming(schedule: Schedule, mapping: Dict[str, str]) -> Schedule:
    """Translate a schedule through a renaming map."""
    return Schedule(
        {mapping.get(node, node): t for node, t in schedule.start_times.items()}
    )


@dataclass(frozen=True)
class GhostSearchResult:
    """Best false-positive found while searching foreign signatures."""

    best_identity: str
    best_fraction: float
    tried: int
    detections: int


def ghost_signature_search(
    cdfg: CDFG,
    schedule: Schedule,
    n_candidates: int,
    seed: Optional[int] = None,
    params: Optional[SchedulingWMParams] = None,
    rng: Optional[random.Random] = None,
) -> GhostSearchResult:
    """Try *n_candidates* foreign signatures against a suspect schedule.

    For each candidate identity, re-derive its watermark constraints on
    the suspect design and measure how many hold by coincidence.  A
    sound scheme shows a low best fraction and zero full detections.
    """
    rng = resolve_rng(seed, rng)
    best_identity = ""
    best_fraction = -1.0
    detections = 0
    tried = 0
    clean = cdfg.without_temporal_edges()
    for index in range(n_candidates):
        identity = f"ghost-{seed}-{index}-{rng.getrandbits(32):08x}"
        marker = SchedulingWatermarker(AuthorSignature(identity), params)
        try:
            _, derived = marker.embed(clean)
        except Exception:
            continue
        tried += 1
        verification = marker.verify(clean, schedule, derived)
        if verification.detected:
            detections += 1
        if verification.fraction > best_fraction:
            best_fraction = verification.fraction
            best_identity = identity
    return GhostSearchResult(
        best_identity=best_identity,
        best_fraction=max(best_fraction, 0.0),
        tried=tried,
        detections=detections,
    )
