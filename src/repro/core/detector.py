"""Watermark detection, including cut and embedded designs.

§III requires detection to work when the misappropriated design "is
augmented into a larger design" or only a partition survives.  Three
modes, in decreasing order of information available to the detector:

1. **record replay** (:func:`verify_by_record`) — node names intact:
   directly check the recorded temporal constraints on the suspect
   schedule.
2. **locality re-derivation** (:func:`detect_by_rederivation`) — the
   detector holds only the signature: re-run domain selection and
   constraint encoding on the suspect graph with the signature's
   bitstream and check the derived constraints.  Works whenever the
   suspect graph's structure matches what was marked (renaming is fine:
   all decisions are structural).
3. **root scan** (:func:`scan_for_watermark`) — the suspect design may
   *contain* the marked core anywhere (embedded IP, names destroyed):
   every candidate root is tried as the locality root ``n_o``; at the
   true root the re-derived identifiers line up with the recorded
   identifier pairs and the temporal constraints check out.  This is the
   paper's "detection procedure visits each node in the CDFG and checks
   whether it represents a root n_o of the memorized subtree T".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.core.coincidence import approx_log10_pc
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import (
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
    VerificationResult,
)
from repro.crypto.signature import AuthorSignature
from repro.errors import WatermarkError
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class EdgeEvidence:
    """Fate of one recorded temporal constraint on a recovered schedule.

    Attributes
    ----------
    src, dst:
        The constrained operation pair (``src`` must finish before
        ``dst`` starts).
    present:
        Both endpoints exist in the suspect design.
    satisfied:
        The recovered schedule honors the constraint.
    """

    src: str
    dst: str
    present: bool
    satisfied: bool


@dataclass(frozen=True)
class RecoveredDetection:
    """Per-edge evidence + aggregate verdict from a recovered schedule."""

    evidence: Tuple[EdgeEvidence, ...]
    result: VerificationResult


def detect_from_recovered_schedule(
    suspect: CDFG,
    schedule: Schedule,
    watermark: SchedulingWatermark,
    model: str = "poisson",
) -> RecoveredDetection:
    """Detect the mark on a schedule reverse-engineered from RTL.

    Mirrors :meth:`SchedulingWatermarker.verify` constraint-for-
    constraint — same satisfied set, same ``P_c`` computation — but the
    schedule arrives from below (``repro.rtl.extract`` → controller →
    recovered schedule) instead of from the behavioral tool, and the
    per-edge evidence is reported explicitly so cross-level equality can
    be asserted edge by edge, not just in aggregate.

    >>> from repro.cdfg.builder import CDFGBuilder
    >>> from repro.core.scheduling_wm import SchedulingWatermark
    >>> b = CDFGBuilder("tiny")
    >>> x = b.input("x")
    >>> y = b.input("y")
    >>> a1 = b.add(x, y, "a1")
    >>> a2 = b.sub(x, y, "a2")
    >>> m = b.add(a1, a2, "m")
    >>> suspect = b.build()
    >>> record = SchedulingWatermark(
    ...     author_fingerprint="f", root="m", cone=("a1", "a2", "m"),
    ...     domain_nodes=("a1", "a2"), eligible_nodes=("a1", "a2"),
    ...     selected_nodes=("a1",), temporal_edges=(("a1", "a2"),),
    ...     temporal_edge_ids=((0, 1),), horizon=2, critical_path=2,
    ... )
    >>> hit = detect_from_recovered_schedule(
    ...     suspect,
    ...     Schedule({"x": 0, "y": 0, "a1": 0, "a2": 1, "m": 2}),
    ...     record,
    ... )
    >>> hit.result.detected, hit.evidence[0].satisfied
    (True, True)
    """
    evidence = []
    for src, dst in watermark.temporal_edges:
        present = src in suspect and dst in suspect
        evidence.append(
            EdgeEvidence(
                src=src,
                dst=dst,
                present=present,
                satisfied=present and schedule.satisfies_order(src, dst),
            )
        )
    satisfied = [(e.src, e.dst) for e in evidence if e.satisfied]
    log10_pc = (
        approx_log10_pc(suspect, satisfied, horizon=None, model=model)
        if satisfied
        else 0.0
    )
    return RecoveredDetection(
        evidence=tuple(evidence),
        result=VerificationResult(
            satisfied=len(satisfied),
            total=len(watermark.temporal_edges),
            log10_pc=log10_pc,
        ),
    )


@dataclass(frozen=True)
class DetectionHit:
    """One candidate locality with its verification outcome."""

    root: str
    result: VerificationResult

    @property
    def confidence(self) -> float:
        """Authorship confidence at this root."""
        return self.result.confidence


def verify_by_record(
    suspect: CDFG,
    schedule: Schedule,
    watermark: SchedulingWatermark,
    signature: AuthorSignature,
) -> VerificationResult:
    """Mode 1: replay the recorded constraints by node name."""
    marker = SchedulingWatermarker(signature)
    return marker.verify(suspect, schedule, watermark)


def detect_by_rederivation(
    suspect: CDFG,
    schedule: Schedule,
    signature: AuthorSignature,
    params: Optional[SchedulingWMParams] = None,
) -> VerificationResult:
    """Mode 2: re-derive the watermark from the signature and verify.

    The suspect graph must be structurally the marked design (renamed is
    fine); re-embedding consumes the identical bitstream and therefore
    derives the identical constraints, which are then *checked* instead
    of inserted.
    """
    marker = SchedulingWatermarker(signature, params)
    _, derived = marker.embed(suspect.without_temporal_edges())
    return marker.verify(suspect, schedule, derived)


def _map_record_to_cone(
    suspect: CDFG,
    root: str,
    watermark: SchedulingWatermark,
    domain_params: DomainParams,
    signature: AuthorSignature,
) -> Optional[List[Tuple[str, str]]]:
    """Map the record's identifier pairs onto a candidate root's cone.

    Returns the temporal (before, after) pairs expressed in suspect node
    names, or None when the candidate cone cannot host the watermark.
    """
    from repro.core.ordering import order_nodes

    schedulable = set(suspect.schedulable_operations)
    cone = suspect.fanin_tree(root, domain_params.tau) & schedulable
    if len(cone) < len(watermark.cone):
        return None
    try:
        ordering = order_nodes(suspect, root, sorted(cone))
    except WatermarkError:
        return None
    pairs: List[Tuple[str, str]] = []
    for src_id, dst_id in watermark.temporal_edge_ids:
        if src_id >= len(ordering.nodes) or dst_id >= len(ordering.nodes):
            return None
        pairs.append((ordering.nodes[src_id], ordering.nodes[dst_id]))
    return pairs


def scan_for_watermark(
    suspect: CDFG,
    schedule: Schedule,
    watermark: SchedulingWatermark,
    signature: AuthorSignature,
    domain_params: Optional[DomainParams] = None,
    min_fraction: float = 1.0,
) -> List[DetectionHit]:
    """Mode 3: scan candidate roots for the memorized locality.

    For every schedulable node treated as root ``n_o``, the cone's
    canonical ordering is recomputed and the record's identifier-coded
    temporal constraints are checked against the suspect schedule.
    Returns hits with satisfaction fraction >= *min_fraction*, sorted by
    confidence (best first).
    """
    if domain_params is None:
        domain_params = DomainParams(tau=watermark.tau)
    hits: List[DetectionHit] = []
    for root in suspect.schedulable_operations:
        pairs = _map_record_to_cone(
            suspect, root, watermark, domain_params, signature
        )
        if pairs is None:
            continue
        satisfied = [
            (src, dst)
            for src, dst in pairs
            if schedule.satisfies_order(src, dst)
        ]
        if not pairs:
            continue
        fraction = len(satisfied) / len(pairs)
        if fraction < min_fraction:
            continue
        log10_pc = (
            approx_log10_pc(suspect, satisfied) if satisfied else 0.0
        )
        hits.append(
            DetectionHit(
                root=root,
                result=VerificationResult(
                    satisfied=len(satisfied),
                    total=len(pairs),
                    log10_pc=log10_pc,
                ),
            )
        )
    hits.sort(key=lambda h: (h.result.fraction, -h.result.log10_pc), reverse=True)
    return hits
