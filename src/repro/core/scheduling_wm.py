"""Local watermarking of operation-scheduling solutions (§IV-A, Fig. 2).

Embedding pipeline:

1. pick the locality: root ``n_o``, cone ``T_o`` (fanin, max-distance
   ``τ``), signature-carved subtree ``T``;
2. eligibility filter → ``T'``: a node qualifies when its **laxity** is
   at most ``C·(1−ε)`` (it sits off the near-critical paths, so
   constraining it cannot stretch the schedule) *and* its ASAP/ALAP
   lifetime overlaps some other eligible node's (so an ordering
   constraint on it is non-trivial);
3. the keyed bitstream draws an *ordered* selection ``T''`` of ``K``
   nodes from ``T'``;
4. walking ``T''`` in order, each node ``n_i`` gets one **temporal
   edge** ``n_i → n_k`` toward a bitstream-chosen later member ``n_k``
   whose window still admits the order; windows are re-tightened after
   every edge so the whole constraint set stays satisfiable within the
   original critical path — embedding never lengthens the schedule.

Note on Fig. 2's laxity comparison: the figure's line 3 prints
``laxity(n_i) > |C|(1−ε)`` but the surrounding text ("the restriction …
is imposed to avoid significant timing overhead and to increase the
scheduling freedom") and the template-matching protocol (which
*excludes* nodes with laxity above the same threshold) both require the
opposite sense; we implement ``laxity ≤ C·(1−ε)`` and record the
deviation in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.cdfg.graph import CDFG
from repro.core.coincidence import approx_log10_pc, exact_pc
from repro.core.domain import (
    Domain,
    DomainParams,
    candidate_roots,
    select_root_and_domain,
)
from repro.crypto.bitstream import BitStream
from repro.crypto.signature import AuthorSignature
from repro.errors import (
    ConstraintEncodingError,
    DomainSelectionError,
    InfeasibleScheduleError,
)
from repro.resilience.budget import Budget, check_deadline
from repro.scheduling.schedule import Schedule
from repro.timing.kernel import IncrementalWindows, use_bulk_arrays
from repro.timing.paths import laxity
from repro.timing.windows import (
    critical_path_length,
    periodic_critical_path_length,
    periodic_scheduling_windows,
    scheduling_windows,
    windows_overlap,
)
from repro.util.perf import PERF

try:  # optional acceleration; the loop below is the reference
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None  # type: ignore[assignment]

#: Domain-separation label of the scheduling-watermark bitstream.
SCHEDULING_PURPOSE = "scheduling-watermark"


def _with_overlap_partner(names: List[str], windows: dict) -> List[str]:
    """Members of *names* whose window overlaps some other member's.

    The eligibility rule's pairwise screen (§IV-A step 2).  The loop is
    quadratic; under the vectorized kernel mode the same set falls out
    of an O(M log M) counting argument: window ``n`` overlaps ``m`` iff
    ``lo_m <= hi_n`` and ``lo_n <= hi_m``, so the number of members
    overlapping ``n`` (self included) is ``M`` minus those starting
    after ``hi_n`` minus those ending before ``lo_n`` — a partner exists
    iff that count is at least 2.  Both paths return the identical
    sublist, in order.
    """
    count = len(names)
    if use_bulk_arrays(count) and count >= 2:
        np = _np
        PERF.add("kernel.vec.bulk_screens")
        PERF.add("kernel.vec.bulk_pairs", count)
        lo = np.fromiter(
            (windows[n][0] for n in names), dtype=np.int64, count=count
        )
        hi = np.fromiter(
            (windows[n][1] for n in names), dtype=np.int64, count=count
        )
        lo_sorted = np.sort(lo)
        hi_sorted = np.sort(hi)
        starting_after = count - np.searchsorted(lo_sorted, hi, side="right")
        ending_before = np.searchsorted(hi_sorted, lo, side="left")
        overlapping = count - starting_after - ending_before
        return [n for n, c in zip(names, overlapping.tolist()) if c >= 2]
    return [
        n
        for n in names
        if any(
            windows_overlap(windows[n], windows[m]) for m in names if m != n
        )
    ]


@dataclass(frozen=True)
class SchedulingWMParams:
    """Parameters of the scheduling watermark.

    Attributes
    ----------
    domain:
        Locality-selection knobs (``τ``, include probability, …).
    k_fraction:
        ``K = max(1, round(k_fraction · |T|))`` temporal edges — the
        paper's experiments use ``K = 0.2·τ``.
    k:
        Explicit ``K`` override (wins over ``k_fraction``).
    epsilon:
        Laxity slack fraction: only nodes with
        ``laxity ≤ C·(1−epsilon)`` are eligible.
    tau_prime_min:
        Minimum ``|T'|``; smaller eligible sets trigger re-selection of
        the subtree.
    horizon:
        Control-step budget; defaults to the critical path ``C``.
    max_domain_retries:
        How many localities to try before giving up.
    eligibility:
        ``"laxity"`` (the paper's rule, suited to shallow DSP designs)
        or ``"mobility"`` — eligible when ``alap − asap >=
        min_mobility``.  Deep program graphs (critical paths of
        hundreds of steps) starve the absolute-laxity rule even though
        plenty of operations have real local freedom; mobility is the
        depth-independent analogue.  Either way, embedding never
        stretches the critical path (window feasibility is re-checked
        after every edge).
    min_mobility:
        Minimum window width for the ``"mobility"`` rule.
    realization_slack:
        Extra steps demanded between edge endpoints beyond the temporal
        constraint itself.  Set to 1 when the watermark will be realized
        as unit operations in compiled code (§V): the inserted op adds a
        pipeline stage, and reserving the slack at embed time keeps the
        realized code's cycle overhead near zero.
    wm_distance:
        Iteration distance carried by watermark temporal edges when
        embedding into a periodic design (``ii`` given or back edges
        present): each mark constrains iteration ``k`` of its source
        against iteration ``k + wm_distance`` of its destination — the
        watermark is woven across iteration boundaries.  Ignored for
        acyclic embedding (edges stay distance 0).
    """

    domain: DomainParams = field(default_factory=DomainParams)
    k_fraction: float = 0.2
    k: Optional[int] = None
    epsilon: float = 0.15
    tau_prime_min: int = 2
    horizon: Optional[int] = None
    max_domain_retries: int = 16
    eligibility: str = "laxity"
    min_mobility: int = 2
    realization_slack: int = 0
    wm_distance: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.k_fraction <= 1.0:
            raise ValueError("k_fraction must lie in (0, 1]")
        if self.k is not None and self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must lie in (0, 1)")
        if self.tau_prime_min < 2:
            raise ValueError("tau_prime_min must be >= 2")
        if self.eligibility not in ("laxity", "mobility"):
            raise ValueError("eligibility must be 'laxity' or 'mobility'")
        if self.min_mobility < 1:
            raise ValueError("min_mobility must be >= 1")
        if self.realization_slack < 0:
            raise ValueError("realization_slack must be >= 0")
        if self.wm_distance < 1:
            raise ValueError("wm_distance must be >= 1")


@dataclass(frozen=True)
class SchedulingWatermark:
    """Record of one embedded scheduling watermark.

    The author archives this record; detection can either replay it
    directly or re-derive everything from the signature.
    Edge endpoints are stored both by node name and by canonical
    identifier within the locality cone, so detection survives renaming.
    """

    author_fingerprint: str
    root: str
    cone: Tuple[str, ...]
    domain_nodes: Tuple[str, ...]
    eligible_nodes: Tuple[str, ...]
    selected_nodes: Tuple[str, ...]
    temporal_edges: Tuple[Tuple[str, str], ...]
    temporal_edge_ids: Tuple[Tuple[int, int], ...]
    horizon: int
    critical_path: int
    #: Locality radius used at embed time; detection must rebuild
    #: candidate cones with the same radius.
    tau: int = 4
    #: Per-edge iteration distances (empty = all zero, the acyclic
    #: record shape; older archives deserialize with this default).
    distances: Tuple[int, ...] = ()
    #: Initiation interval of a periodic embedding; None for acyclic.
    ii: Optional[int] = None

    @property
    def k(self) -> int:
        """Number of temporal edges actually embedded."""
        return len(self.temporal_edges)

    @property
    def edge_distances(self) -> Tuple[int, ...]:
        """Iteration distance of every temporal edge (zeros when acyclic)."""
        if self.distances:
            return self.distances
        return (0,) * len(self.temporal_edges)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking a watermark against a suspect schedule."""

    satisfied: int
    total: int
    log10_pc: float

    @property
    def fraction(self) -> float:
        """Fraction of temporal constraints the suspect satisfies."""
        if self.total == 0:
            return 0.0
        return self.satisfied / self.total

    @property
    def confidence(self) -> float:
        """Authorship confidence ``1 − P_c`` of the satisfied evidence."""
        if self.log10_pc <= -15:
            return 1.0
        return 1.0 - 10.0**self.log10_pc

    @property
    def detected(self) -> bool:
        """Conventional detection threshold: all constraints satisfied."""
        return self.total > 0 and self.satisfied == self.total

    def detected_at(self, min_confidence: float) -> bool:
        """Confidence-thresholded detection.

        With few edges (tiny localities) a foreign signature's derived
        constraints can hold by coincidence; a court-grade claim demands
        ``1 − P_c`` above a threshold, not merely full satisfaction.
        """
        return self.detected and self.confidence >= min_confidence


class SchedulingWatermarker:
    """Embeds and verifies local watermarks on scheduling solutions.

    Parameters
    ----------
    incremental:
        When True (default) the encoding loop maintains scheduling
        windows with the incremental timing kernel
        (:class:`~repro.timing.kernel.IncrementalWindows`) instead of
        recomputing them from scratch after every temporal edge.  The
        two paths pick identical edges (the kernel's windows are
        bit-identical to the full recompute); ``incremental=False``
        keeps the reference implementation for the benchmark gate.
    """

    def __init__(
        self,
        signature: AuthorSignature,
        params: Optional[SchedulingWMParams] = None,
        incremental: bool = True,
    ) -> None:
        self.signature = signature
        self.params = params or SchedulingWMParams()
        self.incremental = incremental

    # ------------------------------------------------------------------
    # embedding
    # ------------------------------------------------------------------
    def embed(
        self,
        cdfg: CDFG,
        forced_root: Optional[str] = None,
        budget: Optional[Budget] = None,
        ii: Optional[int] = None,
    ) -> Tuple[CDFG, SchedulingWatermark]:
        """Embed the watermark; returns (marked copy, watermark record).

        The returned CDFG carries the temporal edges; feeding it to any
        constraint-respecting scheduler yields a watermarked schedule.
        The critical path is never lengthened (edges are only drawn when
        the constraint set stays satisfiable within the horizon).

        A periodic design (back edges present, or *ii* given) is
        embedded in the steady state: windows are the modulo-II ones,
        every mark carries ``params.wm_distance`` iterations, and *ii*
        defaults to the design's minimum initiation interval.  The
        watermark never raises the achievable II for the same reason it
        never lengthens an acyclic critical path — edges are drawn only
        when the periodic window set stays satisfiable.

        An optional *budget* bounds the domain-selection search; its
        exhaustion surfaces as
        :class:`~repro.errors.BudgetExceededError`.
        """
        bitstream = BitStream(self.signature, SCHEDULING_PURPOSE)
        return self._embed_with_bitstream(
            cdfg, bitstream, forced_root, budget=budget, ii=ii
        )

    def _embed_with_bitstream(
        self,
        cdfg: CDFG,
        bitstream: BitStream,
        forced_root: Optional[str] = None,
        roots: Optional[List[str]] = None,
        budget: Optional[Budget] = None,
        ii: Optional[int] = None,
    ) -> Tuple[CDFG, SchedulingWatermark]:
        with PERF.phase("embed"):
            return self._embed_impl(
                cdfg, bitstream, forced_root, roots, budget, ii
            )

    def _embed_impl(
        self,
        cdfg: CDFG,
        bitstream: BitStream,
        forced_root: Optional[str],
        roots: Optional[List[str]],
        budget: Optional[Budget],
        ii: Optional[int] = None,
    ) -> Tuple[CDFG, SchedulingWatermark]:
        if ii is None and cdfg.has_back_edges:
            ii = cdfg.view().min_ii()
        if ii is not None:
            base_cp = periodic_critical_path_length(cdfg, ii)
            horizon = self.params.horizon or base_cp
            windows = periodic_scheduling_windows(cdfg, horizon, ii)
        else:
            base_cp = critical_path_length(cdfg)
            horizon = self.params.horizon or base_cp
            windows = scheduling_windows(cdfg, horizon)
        # Window low ends ARE the ASAP schedule; laxity reuses them
        # instead of running its own forward pass.
        lax = laxity(cdfg, asap={n: w[0] for n, w in windows.items()})

        if forced_root is not None:
            domain = select_root_and_domain(
                cdfg,
                bitstream,
                self.params.domain,
                forced_root=forced_root,
                budget=budget,
            )
            eligible = self._eligible(
                cdfg, domain, horizon, base_cp, lax=lax, windows=windows
            )
            if len(eligible) < self.params.tau_prime_min:
                raise ConstraintEncodingError(
                    f"only {len(eligible)} eligible nodes at forced root "
                    f"{forced_root!r} (need {self.params.tau_prime_min})"
                )
            return self._encode(
                cdfg, domain, eligible, bitstream, horizon, base_cp, ii
            )

        # Retry domain selection until a locality offers enough eligible
        # nodes for the requested K ("the entire process of subtree
        # selection is repeated", §IV-A); fall back to the richest
        # localities seen if none fully suffices.
        fallbacks: List[Tuple[int, Domain, List[str]]] = []
        for _ in range(self.params.max_domain_retries):
            check_deadline(budget, what="embed retry loop")
            domain = select_root_and_domain(
                cdfg, bitstream, self.params.domain, roots=roots, budget=budget
            )
            eligible = self._eligible(
                cdfg, domain, horizon, base_cp, lax=lax, windows=windows
            )
            if len(eligible) < self.params.tau_prime_min:
                continue
            k_target = self._k_target(domain)
            if len(eligible) >= k_target + 1:
                try:
                    return self._encode(
                        cdfg, domain, eligible, bitstream, horizon,
                        base_cp, ii,
                    )
                except ConstraintEncodingError:
                    continue
            fallbacks.append((len(eligible), domain, eligible))
        fallbacks.sort(key=lambda item: -item[0])
        for _, domain, eligible in fallbacks:
            try:
                return self._encode(
                    cdfg, domain, eligible, bitstream, horizon, base_cp, ii
                )
            except ConstraintEncodingError:
                continue
        raise DomainSelectionError(
            f"no encodable locality found in "
            f"{self.params.max_domain_retries} attempts "
            f"(tau={self.params.domain.tau}, "
            f"tau_prime_min={self.params.tau_prime_min})"
        )

    def _k_target(self, domain: Domain) -> int:
        """The requested number of temporal edges for this locality."""
        if self.params.k is not None:
            return self.params.k
        return max(1, round(self.params.k_fraction * domain.size))

    def _eligible(
        self,
        cdfg: CDFG,
        domain: Domain,
        horizon: int,
        base_cp: int,
        lax: Optional[dict] = None,
        windows: Optional[dict] = None,
    ) -> List[str]:
        """Fig. 2 lines 2–4: the eligible subset ``T'`` in domain order."""
        if lax is None:
            lax = laxity(cdfg)
        if windows is None:
            windows = scheduling_windows(cdfg, horizon)
        if self.params.eligibility == "mobility":
            slack_ok = [
                n
                for n in domain.nodes
                if windows[n][1] - windows[n][0] >= self.params.min_mobility
            ]
        else:
            threshold = base_cp * (1.0 - self.params.epsilon)
            slack_ok = [n for n in domain.nodes if lax[n] <= threshold]
        return _with_overlap_partner(slack_ok, windows)

    def _encode(
        self,
        cdfg: CDFG,
        domain: Domain,
        eligible: List[str],
        bitstream: BitStream,
        horizon: int,
        base_cp: int,
        ii: Optional[int] = None,
    ) -> Tuple[CDFG, SchedulingWatermark]:
        k = self._k_target(domain)
        # Destinations come from later members of the ordered selection
        # (Fig. 2 line 7: j > i), so the last member can never source an
        # edge.  Within a locality many eligible pairs are related by
        # existing paths (their order is already implied and carries no
        # evidence), so the selection is oversized to 2K: K edges stay
        # achievable even when half the pairs are path-related.
        selection_size = min(max(k + 1, 2 * k), len(eligible))
        k = min(k, selection_size - 1) if selection_size > 1 else 0
        selected = bitstream.ordered_selection(eligible, selection_size)

        distance = self.params.wm_distance if ii is not None else 0
        marked = cdfg.copy(f"{cdfg.name}+wm")
        if self.incremental:
            edges = self._draw_edges_kernel(
                marked, selected, bitstream, horizon, k, ii, distance
            )
        else:
            edges = self._draw_edges_reference(
                marked, selected, bitstream, horizon, k, ii, distance
            )

        if not edges:
            raise ConstraintEncodingError(
                f"no temporal edge embeddable at root {domain.root!r}"
            )
        identifier = domain.ordering.identifier
        watermark = SchedulingWatermark(
            author_fingerprint=self.signature.fingerprint(),
            root=domain.root,
            cone=domain.cone,
            domain_nodes=domain.nodes,
            eligible_nodes=tuple(eligible),
            selected_nodes=tuple(selected),
            temporal_edges=tuple(edges),
            temporal_edge_ids=tuple(
                (identifier[src], identifier[dst]) for src, dst in edges
            ),
            horizon=horizon,
            critical_path=base_cp,
            tau=self.params.domain.tau,
            distances=(distance,) * len(edges) if ii is not None else (),
            ii=ii,
        )
        return marked, watermark

    @staticmethod
    def _graph_admits(
        marked: CDFG, n_i: str, n_j: str, distance: int
    ) -> bool:
        """Shared graph-level candidate screen of both drawing loops.

        Rejects duplicates, constraints already implied by a
        within-iteration (skeleton) path, and — for distance-0 edges
        only — pairs whose reverse is reachable (the edge would close a
        combinational cycle).  A positive-distance edge may close
        cycles; its feasibility is the windows' business.
        """
        if marked.graph.has_edge(n_i, n_j):
            return False
        graph = (
            marked.skeleton_graph() if marked.has_back_edges else marked.graph
        )
        if distance == 0 and nx.has_path(graph, n_j, n_i):
            return False  # would create a combinational cycle
        if nx.has_path(graph, n_i, n_j):
            return False  # constraint already implied: no evidence
        return True

    def _draw_edges_kernel(
        self,
        marked: CDFG,
        selected: Tuple[str, ...],
        bitstream: BitStream,
        horizon: int,
        k: int,
        ii: Optional[int] = None,
        distance: int = 0,
    ) -> List[Tuple[str, str]]:
        """Fig. 2 lines 6–9 with incrementally maintained windows.

        Windows are repaired by delta propagation after every inserted
        edge instead of a full graph re-pass; because the kernel's
        windows equal the full recompute node-for-node, the bitstream
        sees identical candidate sets and this draws exactly the edges
        :meth:`_draw_edges_reference` would.
        """
        iw = IncrementalWindows(marked, horizon, ii=ii)
        edges: List[Tuple[str, str]] = []
        for i, n_i in enumerate(selected):
            if len(edges) >= k:
                break
            needed = marked.latency(n_i) + self.params.realization_slack
            later = selected[i + 1:]
            # Window screens (overlap + individual feasibility) for the
            # whole remaining selection in one bulk call; only survivors
            # pay for the graph-reachability checks.
            window_ok = iw.screen_targets(n_i, later, needed, distance)
            candidates = [
                n_j
                for n_j, ok in zip(later, window_ok)
                if ok and self._graph_admits(marked, n_i, n_j, distance)
            ]
            if not candidates:
                continue
            n_k = bitstream.choice(candidates)
            try:
                iw.add_edge(n_i, n_k, distance=distance)
            except InfeasibleScheduleError:
                # Unreachable on acyclic graphs once the per-candidate
                # screen passed (needed >= latency); in periodic mode
                # the screen is only necessary, and a dependence cycle
                # through the new edge can still empty a window — the
                # kernel raises before mutating, mirroring the reference
                # path's back-out.
                continue
            edges.append((n_i, n_k))
        PERF.add("embed.edges_added", len(edges))
        return edges

    def _draw_edges_reference(
        self,
        marked: CDFG,
        selected: Tuple[str, ...],
        bitstream: BitStream,
        horizon: int,
        k: int,
        ii: Optional[int] = None,
        distance: int = 0,
    ) -> List[Tuple[str, str]]:
        """Reference edge-drawing loop: full window recompute per edge.

        Retained for the benchmark gate, which asserts the kernel path
        produces an identical watermark record at a fraction of the
        cost.
        """

        def full_windows() -> dict:
            if ii is not None:
                return periodic_scheduling_windows(marked, horizon, ii)
            return scheduling_windows(marked, horizon)

        shift = (ii or 0) * distance
        windows = full_windows()
        edges: List[Tuple[str, str]] = []
        for i, n_i in enumerate(selected):
            if len(edges) >= k:
                break
            candidates = []
            for n_j in selected[i + 1:]:
                lo_j, hi_j = windows[n_j]
                # A distance-d target belongs to the iteration d
                # intervals later, so its window is screened shifted —
                # exactly what the kernel's screen_targets computes.
                shifted = (lo_j + shift, hi_j + shift)
                if not windows_overlap(windows[n_i], shifted):
                    continue
                lo_i, _ = windows[n_i]
                needed = marked.latency(n_i) + self.params.realization_slack
                if lo_i + needed > shifted[1]:
                    continue
                if not self._graph_admits(marked, n_i, n_j, distance):
                    continue
                candidates.append(n_j)
            if not candidates:
                continue
            n_k = bitstream.choice(candidates)
            marked.add_temporal_edge(n_i, n_k, distance=distance)
            try:
                windows = full_windows()
            except Exception:
                # Joint infeasibility: back the edge out and move on.
                marked.remove_edge(n_i, n_k)
                windows = full_windows()
                continue
            edges.append((n_i, n_k))
        return edges

    def embed_many(
        self, cdfg: CDFG, count: int, ii: Optional[int] = None
    ) -> Tuple[CDFG, List[SchedulingWatermark]]:
        """Embed several independent local watermarks (§III: "a number of
        'small' watermarks are randomly augmented in the design").

        Each watermark keys its bitstream with a distinct purpose label
        derived from its index, so the marks are independent.
        """
        if ii is None and cdfg.has_back_edges:
            ii = cdfg.view().min_ii()
        marked = cdfg
        marks: List[SchedulingWatermark] = []
        roots = candidate_roots(cdfg, self.params.domain)
        for index in range(count):
            bitstream = BitStream(
                self.signature, f"{SCHEDULING_PURPOSE}/{index}"
            )
            try:
                marked, mark = self._embed_with_bitstream(
                    marked, bitstream, roots=roots, ii=ii
                )
            except (ConstraintEncodingError, DomainSelectionError):
                continue
            marks.append(mark)
        return marked, marks

    def embed_until(
        self,
        cdfg: CDFG,
        target_edges: int,
        max_marks: int = 64,
        ii: Optional[int] = None,
    ) -> Tuple[CDFG, List[SchedulingWatermark]]:
        """Embed local watermarks until *target_edges* constraints exist.

        This realizes the experimental setup behind Table I, where a
        fixed percentage of the design's operations is constrained: many
        small localities are marked until the total temporal-edge count
        reaches the target.
        """
        if ii is None and cdfg.has_back_edges:
            ii = cdfg.view().min_ii()
        marked = cdfg
        marks: List[SchedulingWatermark] = []
        roots = candidate_roots(cdfg, self.params.domain)
        total = 0
        for index in range(max_marks):
            if total >= target_edges:
                break
            bitstream = BitStream(
                self.signature, f"{SCHEDULING_PURPOSE}/{index}"
            )
            try:
                marked, mark = self._embed_with_bitstream(
                    marked, bitstream, roots=roots, ii=ii
                )
            except (ConstraintEncodingError, DomainSelectionError):
                continue
            marks.append(mark)
            total += mark.k
        return marked, marks

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(
        self,
        suspect: CDFG,
        schedule: Schedule,
        watermark: SchedulingWatermark,
        model: str = "poisson",
    ) -> VerificationResult:
        """Check a suspect schedule against a watermark record by name.

        The suspect CDFG is the design as recovered from the
        implementation — *without* temporal edges (they were stripped
        after synthesis, Fig. 1); windows for the ``P_c`` estimate are
        computed on it directly.  A periodic record (``watermark.ii``
        set) checks each edge in its cross-iteration form and estimates
        ``P_c`` over the steady-state windows at that II.
        """
        satisfied = [
            (src, dst, d)
            for (src, dst), d in zip(
                watermark.temporal_edges, watermark.edge_distances
            )
            if src in suspect
            and dst in suspect
            and schedule.satisfies_order(
                src, dst, distance=d, ii=watermark.ii
            )
        ]
        log10_pc = (
            approx_log10_pc(
                suspect,
                [(src, dst) for src, dst, _ in satisfied],
                horizon=None,
                model=model,
                ii=watermark.ii,
                distances=[d for _, _, d in satisfied],
            )
            if satisfied
            else 0.0
        )
        return VerificationResult(
            satisfied=len(satisfied),
            total=len(watermark.temporal_edges),
            log10_pc=log10_pc,
        )

    def exact_coincidence(
        self,
        cdfg: CDFG,
        watermark: SchedulingWatermark,
        limit: int = 10_000_000,
    ):
        """Exact ``P_c`` of the watermark's locality (small designs only).

        Enumerates the schedules of the locality cone with and without
        the temporal edges, exactly like the paper's Fig. 3 numbers.
        Periodic records enumerate over the steady-state windows with
        the cross-iteration satisfaction rule.
        """
        return exact_pc(
            cdfg,
            watermark.temporal_edges,
            horizon=watermark.horizon,
            nodes=list(watermark.cone),
            limit=limit,
            ii=watermark.ii,
            distances=watermark.edge_distances,
        )
