"""Local watermarking of template-matching solutions (§IV-B, Fig. 5).

The constraint-encoding loop runs ``Z`` times.  Each iteration:

1. recomputes the critical path ``C`` and drops every node whose laxity
   exceeds ``C·(1−ε)`` (near-critical nodes must stay free so the
   enforced matchings do not degrade timing) → ``T'``;
2. exhaustively enumerates all node-to-module matchings over the
   non-processed nodes of ``T'``;
3. lets the author-keyed bitstream pick one matching ``m_i``;
4. promotes the variables surrounding ``m_i`` — producers of its
   external inputs and its output — to **pseudo-primary outputs**,
   which every legal covering must keep visible, thereby *enforcing*
   the chosen matching;
5. marks the covered nodes processed.

The watermark is the set of enforced matchings plus the PPO promotions;
any covering produced downstream both contains the ``Z`` matchings and
respects the PPOs, and a detector re-derives or replays them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType
from repro.crypto.bitstream import BitStream
from repro.crypto.signature import AuthorSignature
from repro.errors import ConstraintEncodingError
from repro.templates.covering import Covering
from repro.templates.library import (
    Template,
    default_library,
    library_with_singletons,
)
from repro.templates.matcher import Matching, enumerate_matchings
from repro.timing.paths import laxity
from repro.timing.windows import critical_path_length
from repro.util.perf import PERF

#: Domain-separation label of the matching-watermark bitstream.
MATCHING_PURPOSE = "matching-watermark"


@dataclass(frozen=True)
class MatchingWMParams:
    """Parameters of the template-matching watermark.

    Attributes
    ----------
    z:
        Number of enforced matchings; if None, ``z_fraction`` applies.
    z_fraction:
        ``Z = max(1, round(z_fraction · τ))`` with ``τ`` the domain size
        — the paper's experiments use ``Z = 0.07·τ`` with ``T = CDFG``.
    epsilon:
        Laxity slack fraction; nodes with ``laxity > C·(1−ε)`` are
        excluded from enforcement.
    min_template_size:
        Only matchings of at least this many ops are enforced
        (enforcing singletons carries no information).
    horizon:
        Available control steps (Table II column 2); laxity eligibility
        is judged against it, so a relaxed budget frees near-critical
        nodes for enforcement.  Defaults to the critical path ``C``.
    """

    z: Optional[int] = None
    z_fraction: float = 0.07
    epsilon: float = 0.15
    min_template_size: int = 2
    horizon: Optional[int] = None

    def __post_init__(self) -> None:
        if self.z is not None and self.z < 1:
            raise ValueError("z must be >= 1")
        if not 0.0 < self.z_fraction <= 1.0:
            raise ValueError("z_fraction must lie in (0, 1]")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must lie in (0, 1)")
        if self.min_template_size < 1:
            raise ValueError("min_template_size must be >= 1")


@dataclass(frozen=True)
class MatchingWatermark:
    """Record of one embedded template-matching watermark."""

    author_fingerprint: str
    enforced: Tuple[Matching, ...]
    ppo_nodes: Tuple[str, ...]
    domain_size: int

    @property
    def z(self) -> int:
        """Number of enforced matchings."""
        return len(self.enforced)


@dataclass(frozen=True)
class MatchingVerification:
    """Outcome of checking a covering against a matching watermark."""

    matchings_present: int
    matchings_total: int
    ppos_visible: int
    ppos_total: int

    @property
    def fraction(self) -> float:
        """Fraction of enforced matchings found in the covering."""
        if self.matchings_total == 0:
            return 0.0
        return self.matchings_present / self.matchings_total

    @property
    def detected(self) -> bool:
        """All enforced matchings present and all PPOs visible."""
        return (
            self.matchings_total > 0
            and self.matchings_present == self.matchings_total
            and self.ppos_visible == self.ppos_total
        )


class MatchingWatermarker:
    """Embeds and verifies local watermarks on template-matching solutions."""

    def __init__(
        self,
        signature: AuthorSignature,
        library: Optional[Sequence[Template]] = None,
        params: Optional[MatchingWMParams] = None,
    ) -> None:
        self.signature = signature
        self.library = list(library) if library is not None else default_library()
        self.params = params or MatchingWMParams()

    def embed(
        self,
        cdfg: CDFG,
        domain: Optional[Iterable[str]] = None,
    ) -> Tuple[CDFG, MatchingWatermark]:
        """Embed the watermark; returns (marked copy, watermark record).

        Parameters
        ----------
        domain:
            The locality ``T``; defaults to the whole CDFG, matching the
            paper's experimental setup (``T = CDFG``).
        """
        with PERF.phase("embed.matching"):
            return self._embed_impl(cdfg, domain)

    def _embed_impl(
        self,
        cdfg: CDFG,
        domain: Optional[Iterable[str]],
    ) -> Tuple[CDFG, MatchingWatermark]:
        bitstream = BitStream(self.signature, MATCHING_PURPOSE)
        marked = cdfg.copy(f"{cdfg.name}+mwm")
        domain_nodes = (
            set(domain) if domain is not None else set(marked.schedulable_operations)
        )
        domain_nodes &= set(marked.schedulable_operations)
        if not domain_nodes:
            raise ConstraintEncodingError("empty watermark domain")

        if self.params.z is not None:
            z = self.params.z
        else:
            z = max(1, round(self.params.z_fraction * len(domain_nodes)))

        processed: Set[str] = set()
        enforced: List[Matching] = []
        ppos: List[str] = []
        # The loop's only mutation is set_ppo, which never alters graph
        # structure or latencies — the critical path and laxity map are
        # loop invariants, so hoist both out of the z iterations.
        c = critical_path_length(marked)
        budget = self.params.horizon if self.params.horizon is not None else c
        lax = laxity(marked)
        threshold = budget * (1.0 - self.params.epsilon)
        for _ in range(z):
            eligible = {
                n
                for n in domain_nodes
                if lax[n] <= threshold and n not in processed
            }
            if not eligible:
                break
            matchings = enumerate_matchings(
                marked,
                self.library,
                candidates=eligible,
                respect_ppo=True,
                min_size=self.params.min_template_size,
            )
            if not matchings:
                break
            chosen = bitstream.choice(matchings)
            enforced.append(chosen)
            for node in self._boundary_nodes(marked, chosen):
                if not marked.is_ppo(node):
                    marked.set_ppo(node, True)
                    ppos.append(node)
            processed |= chosen.covered
        if not enforced:
            raise ConstraintEncodingError(
                f"no matching could be enforced on {cdfg.name!r} "
                f"(library too small or domain too constrained)"
            )
        watermark = MatchingWatermark(
            author_fingerprint=self.signature.fingerprint(),
            enforced=tuple(enforced),
            ppo_nodes=tuple(ppos),
            domain_size=len(domain_nodes),
        )
        return marked, watermark

    @staticmethod
    def _boundary_nodes(cdfg: CDFG, matching: Matching) -> List[str]:
        """Variables surrounding the matching that become PPOs.

        Producers of every value the module consumes from outside, plus
        the module's own output node.  Primary inputs are skipped — "one
        of the inputs to A6 is a primary input, it is not additionally
        constrained".
        """
        boundary: List[str] = []
        covered = matching.covered
        for node in matching.assignment:
            for producer in cdfg.data_predecessors(node):
                if producer in covered:
                    continue
                if cdfg.op(producer) is OpType.INPUT:
                    continue
                if producer not in boundary:
                    boundary.append(producer)
        if matching.root not in boundary:
            boundary.append(matching.root)
        return boundary

    # ------------------------------------------------------------------
    # verification and coincidence
    # ------------------------------------------------------------------
    def verify(
        self, covering: Covering, watermark: MatchingWatermark
    ) -> MatchingVerification:
        """Check a suspect covering for the enforced matchings and PPOs."""
        hidden = covering.internalized_nodes()
        present = sum(
            1
            for matching in watermark.enforced
            if covering.contains_matching(matching)
        )
        visible = sum(
            1 for node in watermark.ppo_nodes if node not in hidden
        )
        return MatchingVerification(
            matchings_present=present,
            matchings_total=len(watermark.enforced),
            ppos_visible=visible,
            ppos_total=len(watermark.ppo_nodes),
        )

    def solutions_count(
        self, cdfg: CDFG, matching: Matching, limit: int = 100_000
    ) -> int:
        """The paper's ``Solutions(m_i)``: ways to cover ``m_i``'s nodes.

        Counts sets of pairwise-disjoint matchings whose union covers
        exactly the nodes of *matching* (member matchings may extend to
        neighboring nodes, as in the paper's six coverings of (A5, A6)).
        Enumerated on the **unconstrained** design: PPOs are ignored.
        """
        targets = sorted(matching.covered)
        full_library = library_with_singletons(self.library, cdfg)
        pool = [
            m
            for m in enumerate_matchings(
                cdfg, full_library, respect_ppo=False, min_size=1
            )
            if m.covered & set(targets)
        ]
        count = 0
        explored = 0

        def recurse(uncovered: Set[str], used: Tuple[Matching, ...]) -> None:
            nonlocal count, explored
            explored += 1
            if explored > limit:
                raise ConstraintEncodingError(
                    "Solutions() enumeration limit exceeded"
                )
            if not uncovered:
                count += 1
                return
            pivot = min(uncovered)
            for candidate in pool:
                if pivot not in candidate.covered:
                    continue
                if any(candidate.covered & u.covered for u in used):
                    continue
                recurse(
                    uncovered - candidate.covered, used + (candidate,)
                )

        recurse(set(targets), ())
        return count

    def approx_log10_pc(self, cdfg: CDFG, watermark: MatchingWatermark) -> float:
        """``log10 P_c ≈ Σ_i −log10 Solutions(m_i)`` (§IV-B)."""
        total = 0.0
        for matching in watermark.enforced:
            solutions = self.solutions_count(cdfg, matching)
            if solutions > 1:
                total -= math.log10(solutions)
        return total
