"""Fingerprinting: per-customer local watermarks for leak tracing.

Watermarking proves *who designed* a core; fingerprinting additionally
proves *which customer's copy* leaked.  The construction composes
directly out of local watermarks, which is one of the practical payoffs
of their locality (a global scheme would need one full re-synthesis per
customer): on top of the vendor's own watermark, each shipped copy gets
a watermark keyed by a customer-specific signature derived from the
vendor identity and the customer name.

When a suspect copy surfaces, :meth:`Fingerprinter.identify` checks
every customer's recorded fingerprint against the suspect schedule and
ranks the customers by surviving evidence — the leaker's fingerprint
verifies fully while other customers' marks only hold by coincidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.core.scheduling_wm import (
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
    VerificationResult,
)
from repro.crypto.signature import AuthorSignature
from repro.errors import WatermarkError
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class FingerprintRecord:
    """Archived fingerprint of one customer's copy."""

    customer: str
    watermark: SchedulingWatermark


@dataclass(frozen=True)
class CustomerMatch:
    """How strongly a suspect copy matches one customer's fingerprint."""

    customer: str
    result: VerificationResult

    @property
    def confidence(self) -> float:
        """Authorship confidence of the surviving fingerprint evidence."""
        return self.result.confidence


class Fingerprinter:
    """Issues and traces customer-specific copies of a design."""

    def __init__(
        self,
        vendor: AuthorSignature,
        params: Optional[SchedulingWMParams] = None,
    ) -> None:
        self.vendor = vendor
        self.params = params or SchedulingWMParams()

    def signature_for(self, customer: str) -> AuthorSignature:
        """The derived signature keying *customer*'s fingerprint.

        Deterministic in (vendor identity, customer name); neither party
        alone can forge the other's marks because the derivation is a
        one-way hash inside :class:`AuthorSignature`.
        """
        if not customer:
            raise WatermarkError("customer name must be non-empty")
        return AuthorSignature(
            f"{self.vendor.identity}::fingerprint::{customer}",
            seed=self.vendor.seed,
        )

    def fingerprint(
        self, cdfg: CDFG, customer: str
    ) -> Tuple[CDFG, FingerprintRecord]:
        """Produce *customer*'s marked copy and its archive record."""
        marker = SchedulingWatermarker(
            self.signature_for(customer), self.params
        )
        marked, watermark = marker.embed(cdfg)
        return marked, FingerprintRecord(customer=customer, watermark=watermark)

    def issue_copies(
        self, cdfg: CDFG, customers: List[str]
    ) -> Dict[str, Tuple[CDFG, FingerprintRecord]]:
        """Fingerprinted copy + record for every customer.

        Each copy is marked independently from the same master, so
        customers cannot diff two copies to locate a *shared* mark —
        every copy's constraints live in (generally) different
        localities.
        """
        if len(set(customers)) != len(customers):
            raise WatermarkError("duplicate customer names")
        return {
            customer: self.fingerprint(cdfg, customer)
            for customer in customers
        }

    def verify_customer(
        self,
        suspect: CDFG,
        schedule: Schedule,
        record: FingerprintRecord,
    ) -> VerificationResult:
        """Check one customer's fingerprint against a suspect schedule."""
        marker = SchedulingWatermarker(
            self.signature_for(record.customer), self.params
        )
        return marker.verify(suspect, schedule, record.watermark)

    def identify(
        self,
        suspect: CDFG,
        schedule: Schedule,
        records: List[FingerprintRecord],
    ) -> List[CustomerMatch]:
        """Rank customers by surviving fingerprint evidence (best first)."""
        matches = [
            CustomerMatch(
                customer=record.customer,
                result=self.verify_customer(suspect, schedule, record),
            )
            for record in records
        ]
        matches.sort(
            key=lambda m: (m.result.fraction, -m.result.log10_pc),
            reverse=True,
        )
        return matches
