"""Coincidence probability (``P_c``) estimation.

The strength of authorship proof is ``1 − P_c``, where ``P_c`` is the
probability that an unwatermarked synthesis flow coincidentally produces
a solution satisfying the watermark constraints.

Two estimators, mirroring §IV-A:

* **exact** — exhaustively enumerate the feasible schedules of the
  locality with and without the temporal-edge constraints; ``P_c`` is
  the count ratio.  Exponential; for small localities only (the paper
  uses "a trivial exhaustive enumeration technique … only for small
  examples").
* **approximate** — ``P_c ≈ Π_i ψ_W(e_i)/ψ_N(e_i)`` with each edge's
  ratio estimated as the probability its endpoints coincidentally land
  in the constrained order under independent (Poisson- or uniform-)
  distributed placement inside their ASAP/ALAP windows.

Because real ``P_c`` values underflow doubles (Table I reports 10^-283),
the approximate API returns ``log10 P_c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.analysis.poisson import order_probability
from repro.cdfg.graph import CDFG
from repro.errors import WatermarkError
from repro.scheduling.enumeration import (
    count_schedules,
    count_schedules_satisfying,
    sample_schedule_boxes,
)
from repro.timing.windows import (
    critical_path_length,
    periodic_critical_path_length,
    periodic_scheduling_windows,
    scheduling_windows,
)

#: Per-edge probability floor: an edge whose coincidental-order
#: probability rounds to zero still contributes finitely so that log10
#: stays defined (it cannot be *impossible* for another flow to satisfy
#: a constraint the watermarked schedule itself satisfies).
MIN_EDGE_PROBABILITY = 1e-9


@dataclass(frozen=True)
class ExactPc:
    """Exact coincidence result.

    Attributes
    ----------
    with_constraints:
        Number of feasible schedules satisfying every temporal edge
        (the paper's constrained count, e.g. 15 for the IIR example).
    without_constraints:
        Total number of feasible schedules (e.g. 166).
    """

    with_constraints: int
    without_constraints: int

    @property
    def pc(self) -> float:
        """``P_c`` as a ratio."""
        if self.without_constraints == 0:
            raise WatermarkError("locality admits no schedule at all")
        return self.with_constraints / self.without_constraints

    @property
    def log10_pc(self) -> float:
        """``log10 P_c`` (−inf when no coincidental schedule exists)."""
        if self.with_constraints == 0:
            return float("-inf")
        return math.log10(self.pc)

    @property
    def authorship_proof(self) -> float:
        """``1 − P_c``."""
        return 1.0 - self.pc


def _default_horizon(cdfg: CDFG, ii: Optional[int]) -> int:
    """Critical path — steady-state iteration latency in periodic mode."""
    if ii is not None:
        return periodic_critical_path_length(cdfg, ii)
    return critical_path_length(cdfg)


def exact_pc(
    cdfg: CDFG,
    temporal_edges: Iterable[Tuple[str, str]],
    horizon: Optional[int] = None,
    nodes: Optional[Sequence[str]] = None,
    limit: int = 10_000_000,
    ii: Optional[int] = None,
    distances: Optional[Sequence[int]] = None,
) -> ExactPc:
    """Exact ``P_c`` by schedule enumeration.

    Parameters
    ----------
    cdfg:
        The design **without** the watermark temporal edges (an
        unwatermarked flow schedules this graph).
    temporal_edges:
        The watermark's ``(before, after)`` constraints.
    horizon:
        Control-step budget; defaults to the critical path (the
        steady-state iteration latency in periodic mode).
    nodes:
        Locality to enumerate (default: all schedulable operations).
    ii:
        Initiation interval for periodic designs: enumeration runs over
        the steady-state windows with the full cyclic constraint set.
    distances:
        Per-edge iteration distances aligned with *temporal_edges*
        (default all zero); edge ``k`` of distance ``d`` is satisfied
        iff ``start(before) < start(after) + ii*d``.
    """
    if horizon is None:
        horizon = _default_horizon(cdfg, ii)
    edges = list(temporal_edges)
    total = count_schedules(cdfg, horizon, nodes=nodes, limit=limit, ii=ii)
    satisfying = count_schedules_satisfying(
        cdfg,
        horizon,
        edges,
        nodes=nodes,
        limit=limit,
        ii=ii,
        constraint_distances=distances,
    )
    return ExactPc(with_constraints=satisfying, without_constraints=total)


@dataclass(frozen=True)
class MonteCarloPc:
    """Brute-force Monte Carlo estimate of ``P_c``.

    Attributes
    ----------
    satisfying:
        Feasible samples that also satisfied every temporal edge.
    feasible:
        Samples that landed on a feasible schedule at all.
    samples:
        Total box samples drawn.
    """

    satisfying: int
    feasible: int
    samples: int

    @property
    def pc(self) -> float:
        """Estimated ``P_c`` (``satisfying / feasible``)."""
        if self.feasible == 0:
            raise WatermarkError("no feasible sample drawn; raise `samples`")
        return self.satisfying / self.feasible

    def standard_error(self) -> float:
        """Binomial standard error of :attr:`pc` given the sample size."""
        if self.feasible == 0:
            raise WatermarkError("no feasible sample drawn; raise `samples`")
        p = self.pc
        return math.sqrt(max(p * (1.0 - p), 1e-12) / self.feasible)


def monte_carlo_pc(
    cdfg: CDFG,
    temporal_edges: Iterable[Tuple[str, str]],
    rng,
    horizon: Optional[int] = None,
    nodes: Optional[Sequence[str]] = None,
    samples: int = 10_000,
    ii: Optional[int] = None,
    distances: Optional[Sequence[int]] = None,
) -> MonteCarloPc:
    """Estimate ``P_c`` by rejection sampling over the window box.

    Start times are drawn uniformly and independently from each node's
    (ASAP, ALAP) window; infeasible draws are rejected, so the accepted
    draws are uniform over the feasible schedules and the satisfying
    fraction estimates the same ratio :func:`exact_pc` enumerates.  This
    shares no counting code with the exact path (only the window /
    longest-path substrate), which is what makes it a differential
    oracle for the detector's coincidence model.  With *ii* the box is
    the steady-state one and a distance-``d`` edge is satisfied in the
    periodic sense (``start(src) < start(dst) + ii*d``).
    """
    if horizon is None:
        horizon = _default_horizon(cdfg, ii)
    edges = list(temporal_edges)
    if distances is None:
        distances = [0] * len(edges)
    if ii is None and any(distances):
        raise WatermarkError(
            "cross-iteration constraints require an explicit ii"
        )
    shifts = [(ii or 0) * d for d in distances]
    feasible = 0
    satisfying = 0
    for assignment, ok in sample_schedule_boxes(
        cdfg, horizon, samples, rng, nodes=nodes, ii=ii
    ):
        if not ok:
            continue
        feasible += 1
        if all(
            assignment[src] < assignment[dst] + shift
            for (src, dst), shift in zip(edges, shifts)
        ):
            satisfying += 1
    return MonteCarloPc(
        satisfying=satisfying, feasible=feasible, samples=samples
    )


def approx_edge_log10(
    windows: Dict[str, Tuple[int, int]],
    src: str,
    dst: str,
    model: str = "poisson",
    lam: float = 1.0,
    shift: int = 0,
) -> float:
    """``log10`` of one edge's coincidental-order probability.

    *shift* displaces the destination window by ``ii*distance`` for a
    cross-iteration edge: iteration ``k + d`` of the destination
    occupies the steady-state window moved ``d`` intervals later, and
    the order probability is computed against that copy.
    """
    if src not in windows or dst not in windows:
        raise WatermarkError(f"edge ({src!r}, {dst!r}) outside the window map")
    lo, hi = windows[dst]
    probability = order_probability(
        windows[src], (lo + shift, hi + shift), model=model, lam=lam
    )
    probability = min(1.0, max(probability, MIN_EDGE_PROBABILITY))
    return math.log10(probability)


def approx_log10_pc(
    cdfg: CDFG,
    temporal_edges: Iterable[Tuple[str, str]],
    horizon: Optional[int] = None,
    model: str = "poisson",
    lam: float = 1.0,
    ii: Optional[int] = None,
    distances: Optional[Sequence[int]] = None,
) -> float:
    """Approximate ``log10 P_c`` over the given temporal edges.

    Windows are computed on *cdfg* as given — pass the **unwatermarked**
    design, since coincidence concerns flows that never saw the
    constraints.  With *ii* the windows are the steady-state ones and
    per-edge *distances* shift each destination window by
    ``ii*distance`` before the order probability is taken.
    """
    if horizon is None:
        horizon = _default_horizon(cdfg, ii)
    edges = list(temporal_edges)
    if distances is None:
        distances = [0] * len(edges)
    if ii is None and any(distances):
        raise WatermarkError(
            "cross-iteration constraints require an explicit ii"
        )
    if ii is not None:
        windows = periodic_scheduling_windows(cdfg, horizon, ii)
    else:
        windows = scheduling_windows(cdfg, horizon)
    return sum(
        approx_edge_log10(
            windows, src, dst, model=model, lam=lam, shift=(ii or 0) * d
        )
        for (src, dst), d in zip(edges, distances)
    )


def authorship_from_log10(log10_pc: float) -> float:
    """``1 − P_c`` from ``log10 P_c`` (clamped for underflow)."""
    if log10_pc <= -15:
        return 1.0
    return 1.0 - 10.0**log10_pc


def format_pc_power(log10_pc: float) -> str:
    """Render like the paper's Table I (``10^-26``)."""
    if math.isinf(log10_pc):
        return "0"
    return f"10^{int(round(log10_pc))}"
