"""Canonical, structure-only node identification (criteria C1–C3).

Watermark constraints must be re-derivable from a suspect design whose
node names an adversary controls, so every node of the watermark
locality gets a unique identifier computed purely from graph structure:

* **C1** — level ``L_i``: longest fanin path from the locality root
  ``n_o`` to ``n_i``;
* **C2** — ``K_i(x)``: size of the transitive fanin tree of ``n_i``
  within distance ``D_x``, for increasing ``x``;
* **C3** — ``φ(n_i, x)``: sum of the functionality identifiers ``f(n)``
  over that fanin tree, for increasing ``x``.

Reproduction decisions (documented deviations):

1. C2/C3 fanin trees are computed **within the locality cone** ``T_o``
   rather than over the whole design.  This makes identification a
   function of the locality alone, which is what lets a watermark be
   detected after the core is embedded in a foreign system — the
   property §I demands.  (Computed globally, the counts would shift the
   moment a host drives the core's inputs.)
2. If C1–C3 leave ties (structurally symmetric nodes), a
   Weisfeiler–Lehman-style structural refinement hash breaks them; truly
   automorphic nodes are interchangeable, and any remaining tie is
   broken by an order that is arbitrary but deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, List, Sequence, Set, Tuple

from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.ops import functionality_id
from repro.errors import WatermarkError

_LOCALITY_KINDS = (EdgeKind.DATA, EdgeKind.CONTROL)


def fanin_tree_within(
    cdfg: CDFG, node: str, distance: int, universe: Set[str]
) -> Set[str]:
    """Transitive fanin of *node* within *distance*, clipped to *universe*."""
    frontier = {node}
    seen = {node}
    for _ in range(distance):
        nxt: Set[str] = set()
        for current in frontier:
            for pred in cdfg.predecessors(
                current, kinds=_LOCALITY_KINDS, skeleton=True
            ):
                if pred in universe and pred not in seen:
                    seen.add(pred)
                    nxt.add(pred)
        if not nxt:
            break
        frontier = nxt
    return seen


def criterion_c2(cdfg: CDFG, node: str, distance: int, universe: Set[str]) -> int:
    """``K_i(x)``: fanin-tree cardinality of *node* within *distance*."""
    return len(fanin_tree_within(cdfg, node, distance, universe))


def criterion_c3(cdfg: CDFG, node: str, distance: int, universe: Set[str]) -> int:
    """``φ(n_i, x)``: functionality-id sum over the clipped fanin tree."""
    return sum(
        functionality_id(cdfg.op(member))
        for member in fanin_tree_within(cdfg, node, distance, universe)
    )


def structural_hashes(
    cdfg: CDFG, universe: Set[str], rounds: int = 3
) -> Dict[str, str]:
    """WL-style refinement hash of every node of *universe*.

    Name-independent: seeds on operation type and in/out degrees within
    the universe, then iteratively mixes sorted neighbor hashes.
    """
    sub_preds = {
        n: [
            p
            for p in cdfg.predecessors(
                n, kinds=_LOCALITY_KINDS, skeleton=True
            )
            if p in universe
        ]
        for n in universe
    }
    sub_succs = {
        n: [
            s
            for s in cdfg.successors(
                n, kinds=_LOCALITY_KINDS, skeleton=True
            )
            if s in universe
        ]
        for n in universe
    }
    labels = {
        n: sha256(
            f"{cdfg.op(n).name}|{len(sub_preds[n])}|{len(sub_succs[n])}".encode()
        ).hexdigest()
        for n in universe
    }
    for _ in range(rounds):
        new_labels = {}
        for n in universe:
            payload = (
                labels[n]
                + "<"
                + ",".join(sorted(labels[p] for p in sub_preds[n]))
                + ">"
                + ",".join(sorted(labels[s] for s in sub_succs[n]))
            )
            new_labels[n] = sha256(payload.encode()).hexdigest()
        labels = new_labels
    return labels


@dataclass(frozen=True)
class NodeOrdering:
    """Canonical ordering of a locality's nodes.

    Attributes
    ----------
    root:
        The locality root ``n_o``.
    nodes:
        Nodes sorted by decreasing rank (``nodes[0]`` is the greatest
        under the C1→C2→C3 criteria).
    identifier:
        Node name → position in :attr:`nodes` — the unique identifier the
        protocol assigns.
    unambiguous:
        True when C1–C3 plus the structural hash separated every node
        (no arbitrary tie-break was needed).
    """

    root: str
    nodes: Tuple[str, ...]
    identifier: Dict[str, int]
    unambiguous: bool

    def node_for(self, ident: int) -> str:
        """Inverse lookup: identifier → node name."""
        try:
            return self.nodes[ident]
        except IndexError as exc:
            raise WatermarkError(f"identifier {ident} out of range") from exc


def _levels_within(
    cdfg: CDFG, root: str, universe: Set[str]
) -> Dict[str, int]:
    """Criterion C1 restricted to the locality.

    ``L_i`` = longest path from *root* back to ``n_i`` using only
    locality nodes.  Restricting to the locality keeps identification a
    function of the cone alone (see the module docstring's deviation
    note) and avoids walking the whole design per carve.
    """
    sub_succs = {
        n: [
            s
            for s in cdfg.successors(
                n, kinds=_LOCALITY_KINDS, skeleton=True
            )
            if s in universe
        ]
        for n in universe
    }
    # Kahn order over the induced subgraph, processed root-outwards: a
    # node's level is final once all its in-universe successors are.
    out_deg = {n: len(sub_succs[n]) for n in universe}
    sub_preds: Dict[str, List[str]] = {n: [] for n in universe}
    for n, succs in sub_succs.items():
        for s in succs:
            sub_preds[s].append(n)
    levels: Dict[str, int] = {}
    ready = [n for n in universe if out_deg[n] == 0]
    order: List[str] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for pred in sub_preds[current]:
            out_deg[pred] -= 1
            if out_deg[pred] == 0:
                ready.append(pred)
    for current in order:
        if current == root:
            levels[current] = 0
            continue
        best = -1
        for succ in sub_succs[current]:
            succ_level = levels.get(succ, -1)
            if succ_level >= 0:
                best = max(best, succ_level + 1)
        levels[current] = best
    unreachable = [n for n, lvl in levels.items() if lvl < 0]
    if unreachable:
        raise WatermarkError(
            f"nodes outside the fanin cone of {root!r}: "
            f"{sorted(unreachable)}"
        )
    return levels


def _criteria_profiles(
    cdfg: CDFG, universe: Set[str], max_distance: int
) -> Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """C2 and C3 profiles for every node, one clipped BFS per node.

    Returns node → ``(counts, sums)`` where ``counts[d-1] = K_i(d)`` and
    ``sums[d-1] = φ(n_i, d)`` for ``d = 1..max_distance``.
    """
    sub_preds = {
        n: [
            p
            for p in cdfg.predecessors(
                n, kinds=_LOCALITY_KINDS, skeleton=True
            )
            if p in universe
        ]
        for n in universe
    }
    f_ids = {n: functionality_id(cdfg.op(n)) for n in universe}
    profiles: Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    for node in universe:
        seen = {node}
        frontier = [node]
        count = 1
        total = f_ids[node]
        counts: List[int] = []
        sums: List[int] = []
        for _ in range(max_distance):
            nxt: List[str] = []
            for current in frontier:
                for pred in sub_preds[current]:
                    if pred not in seen:
                        seen.add(pred)
                        nxt.append(pred)
                        count += 1
                        total += f_ids[pred]
            counts.append(count)
            sums.append(total)
            frontier = nxt
            if not frontier:
                # Saturated: remaining distances repeat the totals.
                while len(counts) < max_distance:
                    counts.append(count)
                    sums.append(total)
                break
        profiles[node] = (tuple(counts), tuple(sums))
    return profiles


def order_nodes(
    cdfg: CDFG, root: str, universe: Sequence[str], max_distance: int = 4
) -> NodeOrdering:
    """Assign unique identifiers to *universe* per criteria C1–C3.

    Parameters
    ----------
    root:
        The locality root (criterion C1 is relative to it).
    universe:
        The locality node set (typically the fanin cone ``T_o``).
    max_distance:
        Largest ``D_x`` tried for C2/C3 before falling back to the
        structural hash.
    """
    universe_set = set(universe)
    if root not in universe_set:
        raise WatermarkError(f"root {root!r} must belong to the universe")
    levels = _levels_within(cdfg, root, universe_set)
    hashes = structural_hashes(cdfg, universe_set)

    effective = min(max_distance, max(1, len(universe_set)))
    profiles = _criteria_profiles(cdfg, universe_set, effective)
    keys: Dict[str, Tuple] = {}
    for node in universe_set:
        c2, c3 = profiles[node]
        keys[node] = (levels[node], c2, c3, hashes[node])

    unambiguous = len(set(keys.values())) == len(universe_set)
    # Descending rank per the paper's "n_i > n_j" relation; the node name
    # is a final deterministic (but arbitrary) tie-break for automorphic
    # nodes, which are structurally interchangeable anyway.
    ordered = sorted(
        universe_set, key=lambda n: (keys[n], n), reverse=True
    )
    identifier = {node: index for index, node in enumerate(ordered)}
    return NodeOrdering(
        root=root,
        nodes=tuple(ordered),
        identifier=identifier,
        unambiguous=unambiguous,
    )
