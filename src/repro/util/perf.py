"""Lightweight performance counters and phase timers.

One process-wide :class:`PerfRegistry` (module singleton ``PERF``)
accumulates named integer counters and wall-clock phase timings.  The
timing kernel reports how much work the incremental window maintenance
saved (full recomputes avoided, nodes touched per update), the
schedulers and the watermark pipelines report wall time per phase, and
``localmark ... --perf-report`` renders the whole registry after a
command.

Counters are plain dict increments — cheap enough to stay always-on —
and everything is deterministic except the wall-clock timings
themselves, so tests can assert on counter values.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, TypeVar

_F = TypeVar("_F", bound=Callable)


class PerfRegistry:
    """Named counters plus per-phase wall-clock accumulation."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.phase_ms: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under *name*.

        Phases nest and repeat; each entry adds one call and its elapsed
        milliseconds to the phase's totals.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.phase_ms[name] = self.phase_ms.get(name, 0.0) + elapsed_ms
            self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    # ------------------------------------------------------------------
    # lifecycle / reporting
    # ------------------------------------------------------------------
    def reset(self) -> Dict[str, Dict[str, float]]:
        """Zero every counter and phase timing; returns the pre-reset
        :meth:`snapshot` so callers can archive what they discard.

        The CLI calls this at the top of every ``main()`` invocation so
        the process-wide singleton never leaks counters from a previous
        command into the next one (back-to-back jobs in one service
        process, or tests that call ``cli.main`` twice).
        """
        snap = self.snapshot()
        self.counters.clear()
        self.phase_ms.clear()
        self.phase_calls.clear()
        return snap

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A JSON-friendly copy of the registry's current state."""
        return {
            "counters": dict(self.counters),
            "phase_ms": dict(self.phase_ms),
            "phase_calls": dict(self.phase_calls),
        }

    def delta(
        self, baseline: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, float]]:
        """What happened since *baseline* (an earlier :meth:`snapshot`).

        Long-lived processes (the batch service engine) cannot reset the
        shared singleton without clobbering concurrent users, so they
        snapshot at startup and report deltas instead.  Entries that did
        not move since the baseline are omitted.
        """
        result: Dict[str, Dict[str, float]] = {}
        for section in ("counters", "phase_ms", "phase_calls"):
            current: Dict[str, float] = getattr(self, section)
            base = baseline.get(section, {})
            moved = {
                name: value - base.get(name, 0)
                for name, value in current.items()
                if value - base.get(name, 0)
            }
            result[section] = moved
        return result

    def render_report(self) -> str:
        """Human-readable report (the ``--perf-report`` output)."""
        lines = ["perf report:"]
        if self.phase_ms:
            lines.append("  phases (wall ms, calls):")
            for name in sorted(self.phase_ms):
                lines.append(
                    f"    {name:<32} {self.phase_ms[name]:>10.2f} ms"
                    f"  x{self.phase_calls.get(name, 0)}"
                )
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:<32} {self.counters[name]:>10}")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


#: Process-wide registry used by the kernel, schedulers, and pipelines.
PERF = PerfRegistry()


def timed_phase(name: str) -> Callable[[_F], _F]:
    """Decorator: accumulate the function's wall time as phase *name*."""

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with PERF.phase(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
