"""Cross-cutting utilities shared by every subsystem.

Currently one member: :mod:`repro.util.atomicio`, the durable-write
layer (temp file + ``os.replace`` + directory fsync, and fsync'd
append-only JSONL) that the CDFG/record/schedule writers and the
crash-safe campaign runner build on.
"""

from __future__ import annotations

from repro.util.atomicio import (
    JsonlAppender,
    TornTail,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
    read_jsonl,
)

__all__ = [
    "JsonlAppender",
    "TornTail",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "read_jsonl",
]
