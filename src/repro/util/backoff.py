"""One jittered-backoff policy, shared by every retry loop.

Retry backoff used to be written twice — the campaign runner slept
``base * 2**attempt * (0.5 + jitter)`` with jitter drawn from a seeded
PRNG, the service engine slept a plain unjittered ``base * 2**attempt``
— and the two could drift apart.  Both now call
:func:`backoff_delay`:

* **Exponential** — attempt ``n`` (0-based) scales the base delay by
  ``2**n``, capped at *cap_s* so a long retry chain never sleeps
  unboundedly.
* **Seeded jitter** — with a *seed*, the delay is multiplied by a
  factor in ``[0.5, 1.5)`` drawn from ``random.Random(seed * 31 +
  attempt)``.  The factor depends only on ``(seed, attempt)``, so a
  resumed campaign replays byte-identical sleep schedules (the
  crash-safe runner's determinism contract) while distinct trials
  still decorrelate their retry storms.
* **No seed, no jitter** — ``seed=None`` keeps the factor at exactly
  ``1.0`` for callers whose delays must not depend on any PRNG at all
  (the service engine's crash retries).

The helper only *computes* the delay; sleeping (blocking or
``await asyncio.sleep``) stays with the caller, which is what lets one
policy serve both the synchronous runner and the asyncio engine/fleet.
"""

from __future__ import annotations

import random
from typing import Optional


def backoff_delay(
    attempt: int,
    base_s: float,
    cap_s: float,
    seed: Optional[int] = None,
) -> float:
    """Delay in seconds before retry *attempt* (0-based).

    ``min(cap_s, base_s * 2**attempt * factor)`` where *factor* is
    ``0.5 + random.Random(seed * 31 + attempt).random()`` when *seed*
    is given (the campaign runner's historical formula, preserved
    bit-for-bit) and ``1.0`` otherwise.  A non-positive *base_s*
    returns ``0.0`` — callers treat that as "retry immediately".

    >>> backoff_delay(0, 0.1, 2.0)
    0.1
    >>> backoff_delay(3, 0.1, 2.0)
    0.8
    >>> backoff_delay(10, 0.1, 2.0)  # capped
    2.0
    >>> backoff_delay(1, 0.1, 2.0, seed=7) == backoff_delay(
    ...     1, 0.1, 2.0, seed=7
    ... )
    True
    """
    if base_s <= 0:
        return 0.0
    if seed is None:
        factor = 1.0
    else:
        factor = 0.5 + random.Random(seed * 31 + attempt).random()
    return min(cap_s, base_s * (2 ** attempt) * factor)
