"""Atomic, durable file I/O: crash-safe writes and fsync'd JSONL.

Plain ``open(...).write`` / ``Path.write_text`` is not crash-safe: a
process killed mid-write leaves a truncated file, and a killed rename-
free rewrite leaves *no* valid version at all.  Every artifact this
package persists (designs, schedules, watermark records, campaign
tables) goes through this module instead:

* :func:`atomic_write_text` / :func:`atomic_write_json` — write to a
  temporary file in the destination directory, flush + ``fsync`` it,
  ``os.replace`` it over the destination, then ``fsync`` the directory
  so the rename itself is durable.  Readers see either the old complete
  file or the new complete file, never a torn hybrid.
* :class:`JsonlAppender` — an append-only JSON-Lines writer that
  ``fsync``\\ s after every record, for journals whose tail must survive
  SIGKILL at any byte boundary.
* :func:`read_jsonl` — the matching reader; it tolerates a *torn tail*
  (a final line with no newline, or one that is not valid JSON — the
  footprint of a crash mid-append) by reporting it separately instead
  of failing, so a resume can discard it and continue.

Directory fsync is best-effort: some filesystems (and all of Windows)
refuse ``open(dir)``; durability of the rename is then up to the OS,
which is the pre-existing behaviour everywhere else.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, IO, List, Optional, Tuple, Union


def fsync_directory(path: Union[str, Path]) -> None:
    """``fsync`` a directory so a rename inside it is durable.

    Best-effort: silently ignored where directories cannot be opened
    (Windows) or fsync'd (some network filesystems).
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> None:
    """Atomically replace *path*'s contents with *text*.

    The text is written to a temporary sibling, flushed, ``fsync``'d
    (when *durable*), and renamed over *path* with :func:`os.replace`;
    finally the parent directory is fsync'd.  A crash at any point
    leaves either the previous file or the new one, never a torn mix,
    and the temporary file is removed on failure.
    """
    target = Path(path)
    directory = target.parent
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory) or ".", prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(directory)


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    indent: Optional[int] = 2,
    durable: bool = True,
) -> None:
    """:func:`atomic_write_text` for a JSON-serializable *payload*."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent), durable=durable
    )


def load_json_or_none(path: Union[str, Path]) -> Optional[Any]:
    """Read a JSON artifact, returning ``None`` if missing or corrupt.

    The forgiving counterpart of :func:`atomic_write_json` for caches
    and other regenerable artifacts: a file that is absent, unreadable,
    not UTF-8, or not valid JSON (the footprint of a writer that did
    not go through the atomic path, or of media corruption) reads as "no
    entry" instead of an exception, so the caller can heal by deleting
    and recomputing.  Artifacts that must never be silently dropped
    (designs, records, journals) should keep using strict readers.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        return json.loads(text)
    except ValueError:
        return None


@dataclass(frozen=True)
class TornTail:
    """A trailing journal fragment left by a crash mid-append.

    Attributes
    ----------
    offset:
        Byte offset where the torn fragment starts (= the length of the
        longest valid prefix of the file).
    text:
        The fragment itself, decoded with replacement characters.
    reason:
        Why the tail was rejected (``"no trailing newline"`` or
        ``"invalid JSON"``).
    """

    offset: int
    text: str
    reason: str


def read_jsonl(
    path: Union[str, Path],
) -> Tuple[List[Any], Optional[TornTail]]:
    """Read a JSON-Lines file, tolerating a crash-torn final record.

    Returns ``(records, torn)`` where *records* are the parsed complete
    lines and *torn* describes a trailing fragment — a last line missing
    its newline, or a newline-terminated line that is not valid JSON
    (both are the footprint of a process killed mid-append).  Corruption
    *before* the last line is not tolerated and raises ``ValueError``:
    an fsync'd append-only journal can only ever tear at the tail, so
    damage anywhere else means the file is not a journal we wrote.
    """
    raw = Path(path).read_bytes()
    records: List[Any] = []
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            return records, TornTail(
                offset=offset,
                text=raw[offset:].decode("utf-8", "replace"),
                reason="no trailing newline",
            )
        line = raw[offset:newline]
        if line.strip():
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                if newline == len(raw) - 1:
                    return records, TornTail(
                        offset=offset,
                        text=line.decode("utf-8", "replace"),
                        reason="invalid JSON",
                    )
                raise ValueError(
                    f"{path}: corrupt record before the tail "
                    f"(byte {offset}); not a torn append"
                )
        offset = newline + 1
    return records, None


class JsonlAppender:
    """Append-only JSON-Lines writer with per-record durability.

    Every :meth:`append` writes one ``\\n``-terminated JSON document,
    flushes, and ``fsync``\\ s, so a record either reaches the disk whole
    or shows up as a torn tail that :func:`read_jsonl` can discard.
    Opening with ``truncate_at`` drops a previously detected torn tail
    before appending resumes.
    """

    def __init__(
        self,
        path: Union[str, Path],
        truncate_at: Optional[int] = None,
        durable: bool = True,
    ) -> None:
        self.path = Path(path)
        self.durable = durable
        created = not self.path.exists()
        self._handle: IO[bytes] = open(self.path, "ab")
        if truncate_at is not None:
            self._handle.truncate(truncate_at)
            self._handle.seek(0, io.SEEK_END)
        if created and durable:
            # Make the journal's creation itself durable.
            fsync_directory(self.path.parent)

    def append(self, record: Any) -> None:
        """Durably append one record as a single JSON line."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
