"""Control-data flow graph (CDFG) with homogeneous-SDF semantics.

The computation model is the paper's: a hierarchical control-data flow
graph whose underlying semantics is homogeneous synchronous data flow —
every node consumes and produces exactly one sample per firing, so nodes
can be scheduled statically into control steps.

Three edge kinds coexist:

* **data** edges — value flow; always precedence constraints;
* **control** edges — explicit sequencing from the behavioral spec;
* **temporal** edges — the *watermark* constraints added by the local
  watermarking protocol ("a temporal edge enforces that its source
  operation is scheduled before its destination operation").

All three kinds act as precedence constraints for scheduling; they are
distinguished so watermarks can be added, listed, and stripped without
touching the original specification.

Periodic (streaming) workloads add one more dimension: an edge may
carry an iteration ``distance >= 0``.  A distance-``d`` edge constrains
iteration ``k`` of its source against iteration ``k + d`` of its
destination — the homogeneous-SDF "initial tokens" of Millo & de
Simone's marked graphs.  Distance-0 edges are ordinary combinational
precedences and must stay acyclic; positive-distance (back) edges may
close cycles, including self-loops, because the constraint they carry
is resolved by the initiation interval, not by within-iteration order.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import networkx as nx

from repro.cdfg.ops import OpType
from repro.errors import CDFGError, CycleError, UnknownNodeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.timing.kernel import CDFGView


@unique
class EdgeKind(str, Enum):
    """Kind of a CDFG edge."""

    DATA = "data"
    CONTROL = "control"
    TEMPORAL = "temporal"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeKind.{self.name}"


class CDFG:
    """A control-data flow graph.

    Nodes are identified by string names and carry an :class:`OpType`
    plus an integer latency (control steps).  The graph must stay acyclic
    over the union of all edge kinds.

    Examples
    --------
    >>> g = CDFG("demo")
    >>> g.add_operation("a", OpType.ADD)
    >>> g.add_operation("b", OpType.MUL)
    >>> g.add_data_edge("a", "b")
    >>> g.num_operations
    2
    >>> list(g.successors("a"))
    ['b']
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self._g = nx.DiGraph()
        #: Mutation counter: bumped by every structural mutation so the
        #: cached :class:`~repro.timing.kernel.CDFGView` (and everything
        #: derived from it) knows when it is stale.
        self._version = 0
        self._view: Optional["CDFGView"] = None
        #: Lazy (version, back-edge tuple) memo; dropped on pickle.
        self._periodic_cache: Optional[Tuple[int, Tuple[Tuple[str, str, int], ...]]] = None

    @property
    def mutation_count(self) -> int:
        """Monotonic mutation counter (cache-invalidation token)."""
        return self._version

    def _bump(self) -> None:
        self._version += 1

    def view(self) -> "CDFGView":
        """The cached :class:`~repro.timing.kernel.CDFGView`.

        Rebuilt lazily whenever the mutation counter has moved since the
        cached view was constructed; all timing analyses and the cached
        node-set properties are served from it.
        """
        from repro.timing.kernel import CDFGView

        view = self._view
        if view is None or view.version != self._version:
            view = CDFGView(self)
            self._view = view
        return view

    def _adopt_view(self, view: "CDFGView") -> None:
        """Install a view kept in sync incrementally (kernel internal)."""
        self._view = view

    def __getstate__(self):
        # The cached view holds derived arrays plus a back-reference;
        # drop it so pickled designs (campaign worker processes) stay
        # small and rebuild the cache on first use.
        state = self.__dict__.copy()
        state["_view"] = None
        # The RTL emitter caches its identifier table on the instance;
        # it is derived and cheap to rebuild, so drop it too.
        state.pop("_rtl_names", None)
        # Same deal for the periodic back-edge memo.
        state["_periodic_cache"] = None
        return state

    def __setstate__(self, state) -> None:
        # Designs pickled before the periodic subsystem lack the cache
        # slot; restore with an empty memo either way.
        self.__dict__.update(state)
        self._periodic_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operation(
        self,
        name: str,
        op: OpType,
        latency: Optional[int] = None,
        ppo: bool = False,
    ) -> None:
        """Add an operation node.

        Parameters
        ----------
        name:
            Unique node name.
        op:
            Operation type.
        latency:
            Latency in control steps; defaults to the op type's latency.
        ppo:
            Whether the node's output variable is a pseudo-primary output
            (must remain visible in any template covering).
        """
        if name in self._g:
            raise CDFGError(f"duplicate operation name: {name!r}")
        if latency is None:
            latency = op.latency
        if latency < 0:
            raise CDFGError(f"negative latency for {name!r}")
        self._g.add_node(name, op=op, latency=latency, ppo=bool(ppo))
        self._bump()

    def add_edge(
        self, src: str, dst: str, kind: EdgeKind, distance: int = 0
    ) -> None:
        """Add an edge of the given kind; rejects cycles and duplicates.

        ``distance`` is the inter-iteration distance: 0 for ordinary
        combinational precedence (must stay acyclic), ``d >= 1`` for a
        back edge constraining iteration ``k`` of *src* against
        iteration ``k + d`` of *dst* (may close cycles, including
        self-loops).
        """
        self._require(src)
        self._require(dst)
        if distance < 0:
            raise CDFGError(
                f"negative distance on edge {src!r}->{dst!r}: {distance}"
            )
        if src == dst and distance == 0:
            raise CDFGError(f"self-loop on {src!r}")
        if self._g.has_edge(src, dst):
            existing = self._g.edges[src, dst]["kind"]
            if existing == kind:
                raise CDFGError(f"duplicate {kind.value} edge {src!r}->{dst!r}")
            # A temporal edge that parallels an existing data/control edge
            # is redundant (the precedence already holds); keep the
            # stronger original kind but remember the temporal overlay.
            raise CDFGError(
                f"edge {src!r}->{dst!r} already exists with kind {existing}"
            )
        self._g.add_edge(src, dst, kind=kind, distance=int(distance))
        if distance == 0 and self._creates_cycle(src, dst):
            self._g.remove_edge(src, dst)
            raise CycleError(f"edge {src!r}->{dst!r} would create a cycle")
        self._bump()

    def add_data_edge(self, src: str, dst: str, distance: int = 0) -> None:
        """Add a value-flow edge (``distance >= 1`` for loop feedback)."""
        self.add_edge(src, dst, EdgeKind.DATA, distance=distance)

    def add_control_edge(self, src: str, dst: str) -> None:
        """Add an explicit sequencing edge from the behavioral spec."""
        self.add_edge(src, dst, EdgeKind.CONTROL)

    def add_temporal_edge(self, src: str, dst: str, distance: int = 0) -> None:
        """Add a watermark temporal edge (source before destination).

        With ``distance >= 1`` the constraint spans iteration
        boundaries: *src* of iteration ``k`` before *dst* of iteration
        ``k + distance`` in the steady-state schedule.
        """
        self.add_edge(src, dst, EdgeKind.TEMPORAL, distance=distance)

    def remove_edge(self, src: str, dst: str) -> None:
        """Remove the edge src->dst (any kind)."""
        if not self._g.has_edge(src, dst):
            raise CDFGError(f"no edge {src!r}->{dst!r}")
        self._g.remove_edge(src, dst)
        self._bump()

    def remove_operation(self, name: str) -> None:
        """Remove an operation node and every edge touching it."""
        self._require(name)
        self._g.remove_node(name)
        self._bump()

    def set_op(self, name: str, op: OpType) -> None:
        """Replace a node's operation type (latency is left untouched)."""
        self._require(name)
        self._g.nodes[name]["op"] = op
        self._bump()

    def set_latency(self, name: str, latency: int) -> None:
        """Replace a node's latency in control steps."""
        self._require(name)
        if latency < 0:
            raise CDFGError(f"negative latency for {name!r}")
        self._g.nodes[name]["latency"] = latency
        self._bump()

    def _creates_cycle(self, src: str, dst: str) -> bool:
        # A new distance-0 edge src->dst closes a combinational cycle
        # iff src is reachable from dst over distance-0 edges alone:
        # positive-distance edges break strongly-connected chains at the
        # iteration boundary, so a path through one is not a cycle.  The
        # hand-rolled DFS (instead of ``nx.has_path``) keeps the
        # acyclic fast path O(out-degree): graphs built in topological
        # order give dst no distance-0 successors yet, so the stack
        # drains immediately.
        succ = self._g.succ
        stack = [dst]
        seen = {dst}
        while stack:
            node = stack.pop()
            if node == src:
                return True
            for nxt, attrs in succ[node].items():
                if attrs.get("distance", 0):
                    continue
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _require(self, name: str) -> None:
        if name not in self._g:
            raise UnknownNodeError(f"unknown operation: {name!r}")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._g

    @property
    def operations(self) -> List[str]:
        """All operation names, in insertion order."""
        return list(self._g.nodes)

    @property
    def num_operations(self) -> int:
        """Total number of operation nodes (including IO placeholders)."""
        return self._g.number_of_nodes()

    @property
    def schedulable_operations(self) -> List[str]:
        """Names of operations that occupy a control step (non-IO)."""
        return list(self.view().schedulable_operations)

    def __contains__(self, name: str) -> bool:
        return name in self._g

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def __iter__(self) -> Iterator[str]:
        return iter(self._g.nodes)

    def op(self, name: str) -> OpType:
        """Operation type of a node."""
        self._require(name)
        return self._g.nodes[name]["op"]

    def latency(self, name: str) -> int:
        """Latency of a node in control steps."""
        self._require(name)
        return self._g.nodes[name]["latency"]

    def is_ppo(self, name: str) -> bool:
        """Whether a node's output variable is a pseudo-primary output."""
        self._require(name)
        return self._g.nodes[name]["ppo"]

    def set_ppo(self, name: str, value: bool = True) -> None:
        """Mark/unmark a node's output variable as pseudo-primary output."""
        self._require(name)
        self._g.nodes[name]["ppo"] = bool(value)
        self._bump()

    @property
    def ppo_nodes(self) -> List[str]:
        """All nodes currently marked as pseudo-primary outputs."""
        return [n for n in self._g.nodes if self._g.nodes[n]["ppo"]]

    def edge_kind(self, src: str, dst: str) -> EdgeKind:
        """Kind of the edge src->dst."""
        if not self._g.has_edge(src, dst):
            raise CDFGError(f"no edge {src!r}->{dst!r}")
        return self._g.edges[src, dst]["kind"]

    def edge_distance(self, src: str, dst: str) -> int:
        """Inter-iteration distance of the edge src->dst (0 = same iter)."""
        if not self._g.has_edge(src, dst):
            raise CDFGError(f"no edge {src!r}->{dst!r}")
        return self._g.edges[src, dst].get("distance", 0)

    @property
    def back_edges(self) -> List[Tuple[str, str, int]]:
        """All positive-distance edges as ``(src, dst, distance)``.

        Memoized per mutation-counter value: scheduling dispatch and
        view construction consult this on hot paths, and most designs
        are acyclic so the common answer is the empty list.
        """
        cache = self._periodic_cache
        if cache is None or cache[0] != self._version:
            found = tuple(
                (u, v, d)
                for u, v, d in self._g.edges(data="distance", default=0)
                if d
            )
            self._periodic_cache = cache = (self._version, found)
        return list(cache[1])

    @property
    def has_back_edges(self) -> bool:
        """Whether any edge carries a positive inter-iteration distance."""
        return bool(self.back_edges)

    def edges(self, kind: Optional[EdgeKind] = None) -> List[Tuple[str, str]]:
        """All edges, optionally filtered by kind."""
        if kind is None:
            return list(self._g.edges)
        return [
            (u, v) for u, v, k in self._g.edges(data="kind") if k == kind
        ]

    @property
    def data_edges(self) -> List[Tuple[str, str]]:
        """All data edges."""
        return self.edges(EdgeKind.DATA)

    @property
    def temporal_edges(self) -> List[Tuple[str, str]]:
        """All watermark temporal edges."""
        return self.edges(EdgeKind.TEMPORAL)

    def predecessors(
        self,
        name: str,
        kinds: Optional[Iterable[EdgeKind]] = None,
        skeleton: bool = False,
    ) -> List[str]:
        """Predecessors of a node, optionally restricted to edge kinds.

        With ``skeleton=True`` only distance-0 (intra-iteration) edges
        are followed — the traversal watermark localities and canonical
        node identification use, since cross-iteration edges constrain
        iterations against each other, not structure within one.
        """
        self._require(name)
        edges = self._g.edges
        wanted = None if kinds is None else set(kinds)
        return [
            u
            for u in self._g.predecessors(name)
            if (wanted is None or edges[u, name]["kind"] in wanted)
            and not (skeleton and edges[u, name].get("distance", 0))
        ]

    def successors(
        self,
        name: str,
        kinds: Optional[Iterable[EdgeKind]] = None,
        skeleton: bool = False,
    ) -> List[str]:
        """Successors of a node, optionally restricted to edge kinds.

        ``skeleton=True`` mirrors :meth:`predecessors`: positive-distance
        edges are skipped.
        """
        self._require(name)
        edges = self._g.edges
        wanted = None if kinds is None else set(kinds)
        return [
            v
            for v in self._g.successors(name)
            if (wanted is None or edges[name, v]["kind"] in wanted)
            and not (skeleton and edges[name, v].get("distance", 0))
        ]

    def data_predecessors(self, name: str) -> List[str]:
        """Predecessors over data edges only."""
        return self.predecessors(name, kinds=(EdgeKind.DATA,))

    def data_successors(self, name: str) -> List[str]:
        """Successors over data edges only."""
        return self.successors(name, kinds=(EdgeKind.DATA,))

    @property
    def primary_inputs(self) -> List[str]:
        """Nodes with no data predecessors (graph sources)."""
        return list(self.view().primary_inputs)

    @property
    def primary_outputs(self) -> List[str]:
        """Nodes with no data successors (graph sinks)."""
        return list(self.view().primary_outputs)

    @property
    def num_variables(self) -> int:
        """Number of distinct data values flowing through the design.

        Every node that produces a value (every non-OUTPUT node)
        contributes one variable; this is the "variables" metric of the
        paper's Table II.
        """
        return sum(1 for n in self._g.nodes if self.op(n) is not OpType.OUTPUT)

    def _skeleton_view(self) -> nx.DiGraph:
        """Read-only view of the distance-0 (combinational) subgraph."""
        edges = self._g.edges
        return nx.subgraph_view(
            self._g,
            filter_edge=lambda u, v: not edges[u, v].get("distance", 0),
        )

    def skeleton_graph(self) -> nx.DiGraph:
        """The distance-0 subgraph as a read-only networkx view.

        Always a DAG (enforced by :meth:`add_edge`); reachability over it
        is what decides whether one within-iteration ordering implies
        another, regardless of any cross-iteration edges present.
        """
        return self._skeleton_view()

    def topological_order(self) -> List[str]:
        """Nodes in a deterministic topological order (all edge kinds).

        Periodic designs are ordered over the distance-0 skeleton —
        back edges constrain iterations against each other, not nodes
        within one iteration, so they carry no intra-iteration order.
        """
        if self.has_back_edges:
            return list(nx.lexicographical_topological_sort(self._skeleton_view()))
        return list(nx.lexicographical_topological_sort(self._g))

    def validate(self) -> None:
        """Raise :class:`CDFGError` if structural invariants are broken."""
        if not nx.is_directed_acyclic_graph(self._skeleton_view()):
            raise CycleError(f"CDFG {self.name!r} contains a combinational cycle")
        for name in self._g.nodes:
            if self.latency(name) < 0:
                raise CDFGError(f"negative latency on {name!r}")
        for u, v, d in self._g.edges(data="distance", default=0):
            if d < 0:
                raise CDFGError(f"negative distance on edge {u!r}->{v!r}")

    # ------------------------------------------------------------------
    # watermark-oriented queries
    # ------------------------------------------------------------------
    def fanin_tree(self, root: str, max_distance: int) -> Set[str]:
        """The transitive fanin set of *root* within *max_distance* hops.

        Distance counts data/control edges traversed in reverse; the root
        itself is at distance zero and always included.  Temporal edges
        are *not* followed: the locality of a watermark is defined on the
        original specification, not on previously added constraints.
        Cross-iteration (positive-distance) edges are not followed
        either — a locality lives within one iteration.
        """
        self._require(root)
        if max_distance < 0:
            raise CDFGError("max_distance must be non-negative")
        frontier = {root}
        seen = {root}
        for _ in range(max_distance):
            nxt: Set[str] = set()
            for node in frontier:
                for pred in self.predecessors(
                    node,
                    kinds=(EdgeKind.DATA, EdgeKind.CONTROL),
                    skeleton=True,
                ):
                    if pred not in seen:
                        seen.add(pred)
                        nxt.add(pred)
            if not nxt:
                break
            frontier = nxt
        return seen

    def fanin_distance(self, root: str) -> Dict[str, int]:
        """Shortest reverse-edge distance from *root* to each fanin node."""
        self._require(root)
        distances = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for pred in self.predecessors(
                    node,
                    kinds=(EdgeKind.DATA, EdgeKind.CONTROL),
                    skeleton=True,
                ):
                    if pred not in distances:
                        distances[pred] = distances[node] + 1
                        nxt.append(pred)
            frontier = nxt
        return distances

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "CDFG":
        """Deep copy; optionally renamed."""
        clone = CDFG(name or self.name)
        clone._g = self._g.copy()
        return clone

    def without_temporal_edges(self) -> "CDFG":
        """A copy with every watermark temporal edge removed."""
        clone = self.copy()
        for src, dst in clone.temporal_edges:
            clone.remove_edge(src, dst)
        return clone

    def subgraph(self, nodes: Iterable[str], name: Optional[str] = None) -> "CDFG":
        """Induced subgraph copy on the given node set."""
        node_set = set(nodes)
        for node in node_set:
            self._require(node)
        clone = CDFG(name or f"{self.name}.sub")
        clone._g = self._g.subgraph(node_set).copy()
        return clone

    def renamed(self, mapping: Dict[str, str], name: Optional[str] = None) -> "CDFG":
        """A copy with node names replaced per *mapping*.

        Used by attack models and embedded-IP tests: a canonical
        watermark must survive arbitrary renaming because node
        identification is structural (criteria C1–C3), never name-based.
        """
        missing = set(mapping) - set(self._g.nodes)
        if missing:
            raise UnknownNodeError(f"unknown operations in mapping: {missing}")
        targets = [mapping.get(n, n) for n in self._g.nodes]
        if len(set(targets)) != len(targets):
            raise CDFGError("renaming would merge distinct operations")
        clone = CDFG(name or self.name)
        clone._g = nx.relabel_nodes(self._g, mapping, copy=True)
        return clone

    def merged_with(
        self,
        other: "CDFG",
        connections: Iterable[Tuple[str, str]] = (),
        prefix: str = "",
        name: Optional[str] = None,
    ) -> "CDFG":
        """Embed *other* into a copy of this graph.

        Parameters
        ----------
        other:
            The CDFG to embed (e.g. a misappropriated core dropped into a
            larger host system).
        connections:
            Pairs ``(host_node, core_node)`` or ``(core_node, host_node)``
            of data edges to add between the two graphs; names referring
            to *other* must already carry *prefix*.
        prefix:
            Prefix applied to every node of *other* to avoid collisions.
        """
        renamed = other.renamed({n: prefix + n for n in other.operations})
        clone = self.copy(name or f"{self.name}+{other.name}")
        for node in renamed.operations:
            if node in clone:
                raise CDFGError(f"name collision while merging: {node!r}")
        clone._g = nx.compose(clone._g, renamed._g)
        for src, dst in connections:
            clone.add_data_edge(src, dst)
        return clone

    # ------------------------------------------------------------------
    # equality / hashing helpers
    # ------------------------------------------------------------------
    def structure_signature(self) -> FrozenSet[Tuple[str, str, str, str]]:
        """A name-independent-ish summary used in tests.

        Returns the multiset of edges as (src_op, dst_op, kind) triples
        plus node degrees; two isomorphic graphs share it (the converse
        does not hold — this is a cheap test helper, not an isomorphism
        certificate).
        """
        items = set()
        for u, v, k in self._g.edges(data="kind"):
            items.add(
                (
                    self.op(u).name,
                    self.op(v).name,
                    k.value if isinstance(k, EdgeKind) else str(k),
                    f"{self._g.in_degree(u)}-{self._g.out_degree(v)}",
                )
            )
        return frozenset(items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CDFG({self.name!r}, ops={self.num_operations}, "
            f"edges={self._g.number_of_edges()})"
        )
