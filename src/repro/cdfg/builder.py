"""Fluent builder for CDFGs.

Writing graphs node-by-node is verbose; the builder lets designs be
expressed as value-producing expressions:

>>> from repro.cdfg.builder import CDFGBuilder
>>> from repro.cdfg.ops import OpType
>>> b = CDFGBuilder("biquad")
>>> x = b.input("x")
>>> s1 = b.input("s1")
>>> m = b.op("C1", OpType.CONST_MUL, s1)
>>> y = b.op("A1", OpType.ADD, x, m)
>>> g = b.build()
>>> sorted(g.data_edges)
[('C1', 'A1'), ('s1', 'C1'), ('x', 'A1')]
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType
from repro.errors import CDFGError


class CDFGBuilder:
    """Incrementally build a :class:`CDFG`.

    Every method that creates a node returns the node's name so results
    can be fed directly into later operations.
    """

    def __init__(self, name: str = "cdfg") -> None:
        self._cdfg = CDFG(name)
        self._auto_counter = 0

    def _fresh_name(self, stem: str) -> str:
        self._auto_counter += 1
        return f"{stem}_{self._auto_counter}"

    def input(self, name: Optional[str] = None) -> str:
        """Add a primary input node and return its name."""
        node = name or self._fresh_name("in")
        self._cdfg.add_operation(node, OpType.INPUT)
        return node

    def output(self, source: str, name: Optional[str] = None) -> str:
        """Add a primary output fed by *source* and return its name."""
        node = name or self._fresh_name("out")
        self._cdfg.add_operation(node, OpType.OUTPUT)
        self._cdfg.add_data_edge(source, node)
        return node

    def op(
        self,
        name: Optional[str],
        op: OpType,
        *operands: str,
        latency: Optional[int] = None,
    ) -> str:
        """Add an operation consuming *operands* and return its name."""
        node = name or self._fresh_name(op.name.lower())
        self._cdfg.add_operation(node, op, latency=latency)
        for operand in operands:
            self._cdfg.add_data_edge(operand, node)
        return node

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Convenience: an ADD node over two operands."""
        return self.op(name, OpType.ADD, a, b)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Convenience: a MUL node over two operands."""
        return self.op(name, OpType.MUL, a, b)

    def const_mul(self, a: str, name: Optional[str] = None) -> str:
        """Convenience: multiplication of *a* by a compile-time constant."""
        return self.op(name, OpType.CONST_MUL, a)

    def sub(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Convenience: a SUB node over two operands."""
        return self.op(name, OpType.SUB, a, b)

    def chain(self, start: str, ops: List[OpType], stem: str = "chain") -> str:
        """Append a linear chain of single-operand ops after *start*."""
        current = start
        for index, op in enumerate(ops):
            current = self.op(f"{stem}_{self._auto_counter}_{index}", op, current)
        return current

    def control_edge(self, src: str, dst: str) -> None:
        """Add an explicit sequencing edge."""
        self._cdfg.add_control_edge(src, dst)

    def feedback(self, src: str, dst: str, distance: int = 1) -> None:
        """Add an inter-iteration data edge (loop-carried dependence).

        The value produced by *src* in iteration ``k`` feeds *dst* in
        iteration ``k + distance`` — the state edge of a streaming
        design.  May close cycles (including self-loops); the CDFG stays
        valid because positive-distance edges never join the
        combinational skeleton.
        """
        self._cdfg.add_data_edge(src, dst, distance=distance)

    def build(self, validate: bool = True) -> CDFG:
        """Finalize and return the CDFG (single use)."""
        if self._cdfg is None:
            raise CDFGError("builder already consumed")
        graph = self._cdfg
        self._cdfg = None
        if validate:
            graph.validate()
        return graph
