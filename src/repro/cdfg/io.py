"""CDFG (de)serialization.

A simple explicit JSON schema:

.. code-block:: json

    {
      "name": "iir4",
      "nodes": [{"name": "A1", "op": "ADD", "latency": 1, "ppo": false}],
      "edges": [{"src": "x", "dst": "A1", "kind": "data"}]
    }

Round-tripping is lossless for everything the library stores.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.ops import OpType
from repro.errors import CDFGError
from repro.util.atomicio import atomic_write_text


def to_dict(cdfg: CDFG) -> Dict[str, Any]:
    """Serialize a CDFG to a plain dictionary."""
    return {
        "name": cdfg.name,
        "nodes": [
            {
                "name": node,
                "op": cdfg.op(node).name,
                "latency": cdfg.latency(node),
                "ppo": cdfg.is_ppo(node),
            }
            for node in cdfg.operations
        ],
        "edges": [_edge_dict(cdfg, src, dst) for src, dst in cdfg.edges()],
    }


def _edge_dict(cdfg: CDFG, src: str, dst: str) -> Dict[str, Any]:
    # ``distance`` is emitted only when nonzero: acyclic designs — the
    # overwhelmingly common case and everything serialized before the
    # periodic subsystem existed — keep byte-identical JSON.
    edge: Dict[str, Any] = {
        "src": src,
        "dst": dst,
        "kind": cdfg.edge_kind(src, dst).value,
    }
    distance = cdfg.edge_distance(src, dst)
    if distance:
        edge["distance"] = distance
    return edge


def from_dict(payload: Dict[str, Any]) -> CDFG:
    """Deserialize a CDFG from :func:`to_dict` output."""
    try:
        cdfg = CDFG(payload["name"])
        for node in payload["nodes"]:
            cdfg.add_operation(
                node["name"],
                OpType[node["op"]],
                latency=node.get("latency"),
                ppo=node.get("ppo", False),
            )
        for edge in payload["edges"]:
            cdfg.add_edge(
                edge["src"],
                edge["dst"],
                EdgeKind(edge["kind"]),
                distance=edge.get("distance", 0),
            )
    except (KeyError, ValueError) as exc:
        raise CDFGError(f"malformed CDFG payload: {exc}") from exc
    cdfg.validate()
    return cdfg


def canonicalize_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical form of a :func:`to_dict`-shaped payload.

    Node and edge order in the JSON schema is presentational — any
    permutation deserializes to the same graph — so content addressing
    (the service's cache keys) must not depend on it.  Nodes are sorted
    by name, edges by ``(src, dst, kind)``; unknown top-level keys are
    preserved so future schema extensions stay part of the identity.
    """
    canonical = dict(payload)
    canonical["nodes"] = sorted(
        (dict(node) for node in payload.get("nodes", ())),
        key=lambda node: node.get("name", ""),
    )
    canonical["edges"] = sorted(
        (dict(edge) for edge in payload.get("edges", ())),
        key=lambda edge: (
            edge.get("src", ""),
            edge.get("dst", ""),
            edge.get("kind", ""),
            edge.get("distance", 0),
        ),
    )
    return canonical


def to_canonical_dict(cdfg: CDFG) -> Dict[str, Any]:
    """:func:`to_dict` in canonical (sorted) form; see
    :func:`canonicalize_dict`."""
    return canonicalize_dict(to_dict(cdfg))


def to_canonical_json(cdfg: CDFG) -> str:
    """Canonical JSON serialization: sorted nodes/edges/keys, compact
    separators.  Two equal graphs — whatever order their nodes and edges
    were added or serialized in — produce byte-identical output, which
    is what the service hashes for its content-addressed cache."""
    return json.dumps(
        to_canonical_dict(cdfg),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def to_json(cdfg: CDFG, indent: int = 2) -> str:
    """Serialize a CDFG to a JSON string."""
    return json.dumps(to_dict(cdfg), indent=indent)


def from_json(text: str) -> CDFG:
    """Deserialize a CDFG from a JSON string."""
    return from_dict(json.loads(text))


def save(cdfg: CDFG, path: Union[str, Path]) -> None:
    """Write a CDFG to a JSON file (atomically: temp file + rename)."""
    atomic_write_text(path, to_json(cdfg))


def load(path: Union[str, Path]) -> CDFG:
    """Read a CDFG from a JSON file."""
    return from_json(Path(path).read_text(encoding="utf-8"))
