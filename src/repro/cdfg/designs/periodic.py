"""Cyclic (periodic/streaming) benchmark designs.

Every design here carries at least one inter-iteration edge
(``distance >= 1``), so it only schedules under an initiation interval:
these are the workloads the modulo kernel, the periodic watermark
protocol, and the ``periodic_windows`` differential oracle exercise.

* :func:`cyclic_iir_biquad` — a direct-form-II biquad whose state
  taps are genuine loop-carried edges (distance 1 and distance 2)
  instead of fresh primary inputs.  The recurrence through the
  ``a1`` tap bounds the II from below — the canonical recMII example.
* :func:`cyclic_pid_controller` — a PID loop with an integrator
  self-loop and an anti-windup back-calculation path, giving one
  long distance-1 cycle through four operations (recMII 4) on top of
  the unit self-loop.
* :func:`cyclic_echo_canceler` — the streaming version of
  :func:`~repro.cdfg.designs.synthetic.scaled_echo_canceler`: the
  decimated-LMS weights are accumulator *state* (distance-1
  self-loops) and each weighted product reads last iteration's
  weight (a distance-1 cross edge), instead of taking weights as
  per-iteration primary inputs.  Scaling in taps and lanes makes it
  the benchmark tier: hundreds of back edges mean the unrolled
  reference materializes hundreds of copies while the modulo kernel
  converges in a handful of sweeps.

All factories are deterministic (no randomness at all), so golden
schedules and verification triples can be byte-pinned against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType


def cyclic_iir_biquad(name: Optional[str] = None) -> CDFG:
    """Direct-form-II biquad with loop-carried state.

    ``w[k] = x[k] + a1*w[k-1] + a2*w[k-2]`` and
    ``y[k] = b0*w[k] + b1*w[k-1] + b2*w[k-2]``.  The ``w[k-1]`` and
    ``w[k-2]`` taps are feedback edges of distance 1 and 2.  The
    binding cycle is ``Aw -> Ca1 -> Af -> Aw`` at distance 1 (three
    unit-latency operations), so the recurrence MII is 3.
    """
    b = CDFGBuilder(name or "cyclic_biquad")
    x = b.input("x")
    # Feedback taps: created without distance-0 operands, fed by the
    # state value `Aw` across iteration boundaries below.
    m_a1 = b.op("Ca1", OpType.CONST_MUL)
    m_a2 = b.op("Ca2", OpType.CONST_MUL)
    s_fb = b.add(m_a1, m_a2, "Af")
    w = b.add(x, s_fb, "Aw")
    b.feedback(w, m_a1, 1)
    b.feedback(w, m_a2, 2)
    m_b0 = b.const_mul(w, "Cb0")
    m_b1 = b.op("Cb1", OpType.CONST_MUL)
    m_b2 = b.op("Cb2", OpType.CONST_MUL)
    b.feedback(w, m_b1, 1)
    b.feedback(w, m_b2, 2)
    y1 = b.add(m_b0, m_b1, "Ay1")
    y = b.add(y1, m_b2, "Ay")
    b.output(y, "y")
    return b.build()


def cyclic_pid_controller(name: Optional[str] = None) -> CDFG:
    """PID loop with integrator state and anti-windup feedback.

    The integrator ``Ii`` accumulates across iterations (distance-1
    self-loop); the derivative term differences the current error
    against last iteration's scaled copy; and the saturated output
    feeds back into the integrator (back-calculation anti-windup),
    closing a four-operation distance-1 cycle
    ``Ii -> Api -> Au -> Sat -> Ii`` — recurrence MII 4.
    """
    b = CDFGBuilder(name or "cyclic_pid")
    e = b.input("e")
    p = b.const_mul(e, "Kp")
    ei = b.const_mul(e, "Ki")
    integ = b.op("Ii", OpType.ADD, ei)
    b.feedback(integ, integ, 1)
    e_mem = b.const_mul(e, "Ed")
    diff = b.op("Dd", OpType.SUB, e)
    b.feedback(e_mem, diff, 1)
    dterm = b.const_mul(diff, "Kd")
    pi = b.add(p, integ, "Api")
    u = b.add(pi, dterm, "Au")
    sat = b.const_mul(u, "Sat")
    b.feedback(sat, integ, 1)
    b.output(u, "u")
    return b.build()


def cyclic_echo_canceler(
    taps: int = 40, lanes: int = 8, name: Optional[str] = None
) -> CDFG:
    """Streaming LMS echo canceler: weights as loop-carried state.

    Structure of :func:`~repro.cdfg.designs.synthetic.scaled_echo_canceler`
    with the decimated weight update made periodic: every fourth tap
    owns a weight accumulator ``u`` (``w += mu*grad``, a distance-1
    self-loop) and scales its sample by *last* iteration's weight (a
    distance-1 edge from the accumulator into the product).  With the
    defaults this is a ~1.4k-node design carrying ``2*lanes*ceil(taps/4)``
    back edges — the ratio that separates the modulo kernel (a few
    sweeps) from the unrolled reference (one graph copy per unit of
    total back-edge distance).
    """
    b = CDFGBuilder(name or f"cyclic_echo_{taps}x{lanes}")
    lane_outputs: List[str] = []
    for lane in range(lanes):
        acc = b.input(f"l{lane}/x0")
        for tap in range(taps):
            sample = b.input(f"l{lane}/x{tap + 1}")
            if tap % 4 == 0:
                gradient = b.const_mul(sample, f"l{lane}/g{tap}")
                weight = b.op(f"l{lane}/u{tap}", OpType.ADD, gradient)
                b.feedback(weight, weight, 1)
                product = b.op(f"l{lane}/p{tap}", OpType.MUL, sample)
                b.feedback(weight, product, 1)
            else:
                product = b.const_mul(sample, f"l{lane}/p{tap}")
            scaled = b.const_mul(acc, f"l{lane}/s{tap}")
            acc = b.add(scaled, product, f"l{lane}/a{tap}")
        lane_outputs.append(acc)
    rank = 0
    while len(lane_outputs) > 1:
        merged: List[str] = []
        for k in range(0, len(lane_outputs) - 1, 2):
            merged.append(
                b.add(
                    lane_outputs[k],
                    lane_outputs[k + 1],
                    f"combine/t{rank}_{k // 2}",
                )
            )
        if len(lane_outputs) % 2:
            merged.append(lane_outputs[-1])
        lane_outputs = merged
        rank += 1
    b.output(lane_outputs[0], "y")
    return b.build()


@dataclass(frozen=True)
class PeriodicDesignSpec:
    """One named cyclic design: name plus deterministic factory."""

    name: str
    factory: Callable[[], CDFG]


#: The cyclic suite, smallest first.  ``echo-cyclic-small`` is the CI
#: smoke tier; ``echo-cyclic-bench`` carries the E15 >=5x gate.
PERIODIC_SUITE: Tuple[PeriodicDesignSpec, ...] = (
    PeriodicDesignSpec("biquad-cyclic", cyclic_iir_biquad),
    PeriodicDesignSpec("pid-cyclic", cyclic_pid_controller),
    PeriodicDesignSpec(
        "echo-cyclic-small",
        lambda: cyclic_echo_canceler(taps=8, lanes=2, name="cyclic_echo_8x2"),
    ),
    PeriodicDesignSpec(
        "echo-cyclic-bench",
        lambda: cyclic_echo_canceler(
            taps=40, lanes=8, name="cyclic_echo_40x8"
        ),
    ),
)


def periodic_design(name: str) -> CDFG:
    """Build one cyclic design by its suite name."""
    for spec in PERIODIC_SUITE:
        if spec.name == name:
            return spec.factory()
    raise KeyError(f"unknown periodic design: {name!r}")
