"""The HYPER benchmark designs of Table II, rebuilt from their statistics.

The paper evaluates template-matching watermarks on eight real-life DSP
designs synthesized with HYPER [9].  The design sources are not
available, so each is reconstructed parametrically to match the
statistics Table II publishes: the *critical path* (column 3) and the
*number of variables* (column 4).  The operation mix of each
reconstruction follows the design's nature (IIR filters are
multiply-add backbones, the GE controller is wide and shallow, the echo
canceler is a long multiply-accumulate chain, …).

One deviation is documented here and in EXPERIMENTS.md: for the Long
Echo Canceler, Table II lists a critical path (2566) larger than the
variable count (1082), which is unsatisfiable in a unit-latency DFG
(each control step on a path needs at least one operation producing a
value).  The table's "variables" most likely counts *named storage
variables* of the behavioral spec rather than data values.  We rebuild
the design as a 1283-tap multiply-accumulate FIR — the canonical echo
canceler — whose critical path is 2566 as published, and report its
actual value count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.generators import backbone_design
from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType


@dataclass(frozen=True)
class DesignSpec:
    """Published Table II statistics for one HYPER design."""

    name: str
    #: Critical path, Table II column 3.
    critical_path: int
    #: Variables, Table II column 4.
    variables: int
    #: Factory building the reconstruction.
    factory: Callable[[], CDFG]


def cf_iir_8th_order() -> CDFG:
    """8th-order continued-fraction IIR: CP 18, 35 variables.

    A continued-fraction structure is a serial chain of alternating
    multiply/add stages — 8 stages of (CONST_MUL, ADD) plus an input
    scale and output accumulate give the published critical path of 18;
    state inputs feed each stage.
    """
    return backbone_design(
        "cf_iir_8",
        num_values=35,
        critical_path=18,
        seed=1801,
        op_cycle=(OpType.CONST_MUL, OpType.ADD),
    )


def linear_ge_controller() -> CDFG:
    """Linear Gaussian-elimination controller: CP 12, 48 variables.

    Wide and shallow: several parallel elimination chains of depth 12.
    """
    return backbone_design(
        "linear_ge_controller",
        num_values=48,
        critical_path=12,
        seed=1202,
        op_cycle=(OpType.MUL, OpType.SUB),
    )


def wavelet_filter() -> CDFG:
    """Wavelet filter: CP 16, 31 variables (multiply-add ladder)."""
    return backbone_design(
        "wavelet_filter",
        num_values=31,
        critical_path=16,
        seed=1603,
        op_cycle=(OpType.CONST_MUL, OpType.ADD),
    )


def modem_filter() -> CDFG:
    """Modem filter: CP 10, 33 variables (short, wide FIR section)."""
    return backbone_design(
        "modem_filter",
        num_values=33,
        critical_path=10,
        seed=1004,
        op_cycle=(OpType.CONST_MUL, OpType.ADD),
    )


def volterra_2nd_order() -> CDFG:
    """2nd-order Volterra filter: CP 12, 28 variables.

    Volterra filters form products of delayed inputs then sum them;
    the backbone alternates MUL (kernel products) and ADD (summation).
    """
    return backbone_design(
        "volterra_2",
        num_values=28,
        critical_path=12,
        seed=1205,
        op_cycle=(OpType.MUL, OpType.ADD),
    )


def volterra_3rd_order() -> CDFG:
    """3rd-order nonlinear Volterra filter: CP 20, 50 variables."""
    return backbone_design(
        "volterra_3",
        num_values=50,
        critical_path=20,
        seed=2006,
        op_cycle=(OpType.MUL, OpType.MUL, OpType.ADD),
    )


def da_converter() -> CDFG:
    """D/A converter: CP 132, 354 variables (long scaling chain)."""
    return backbone_design(
        "da_converter",
        num_values=354,
        critical_path=132,
        seed=13207,
        op_cycle=(OpType.CONST_MUL, OpType.ADD, OpType.ADD),
    )


def long_echo_canceler() -> CDFG:
    """Long echo canceler: CP 2566 (as published), rebuilt as a lattice.

    A 1283-stage adaptive lattice: each stage scales the running value
    and adds a (parallel) tap product, contributing two serial
    operations.  Critical path = 2·1283 = 2566 control steps as in
    Table II.  See the module docstring for the variables-count
    deviation.
    """
    b = CDFGBuilder("long_echo_canceler")
    acc = b.input("x0")
    for tap in range(1283):
        sample = b.input(f"x{tap + 1}")
        product = b.const_mul(sample, f"p{tap}")
        scaled = b.const_mul(acc, f"s{tap}")
        acc = b.add(scaled, product, f"a{tap}")
        if tap % 4 == 0:
            # Decimated LMS coefficient update: w' = w + mu·e·x — an
            # off-critical multiply-accumulate chain per adapted tap.
            weight = b.input(f"w{tap}")
            gradient = b.const_mul(sample, f"g{tap}")
            updated = b.add(weight, gradient, f"u{tap}")
            b.output(updated, f"wnext{tap}")
    b.output(acc, "y")
    return b.build()


#: All eight Table II designs, in the paper's row order.
HYPER_SUITE: List[DesignSpec] = [
    DesignSpec("8th Order CF IIR", 18, 35, cf_iir_8th_order),
    DesignSpec("Linear GE Cntrlr", 12, 48, linear_ge_controller),
    DesignSpec("Wavelet Filter", 16, 31, wavelet_filter),
    DesignSpec("Modem Filter", 10, 33, modem_filter),
    DesignSpec("Volterra 2nd ord.", 12, 28, volterra_2nd_order),
    DesignSpec("Volterra 3rd non-lin.", 20, 50, volterra_3rd_order),
    DesignSpec("D/A Converter", 132, 354, da_converter),
    DesignSpec("Long Echo Canceler", 2566, 1082, long_echo_canceler),
]


def hyper_design(name: str) -> CDFG:
    """Build one HYPER design by its Table II row name."""
    for spec in HYPER_SUITE:
        if spec.name == name:
            return spec.factory()
    raise KeyError(f"unknown HYPER design: {name!r}")


def suite_statistics() -> Dict[str, Dict[str, int]]:
    """Published vs reconstructed statistics for every suite design."""
    stats: Dict[str, Dict[str, int]] = {}
    for spec in HYPER_SUITE:
        design = spec.factory()
        stats[spec.name] = {
            "published_critical_path": spec.critical_path,
            "published_variables": spec.variables,
            "variables": design.num_variables,
            "operations": len(design.schedulable_operations),
        }
    return stats
