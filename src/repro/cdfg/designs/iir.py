"""Fourth-order parallel IIR filter — the paper's motivational example.

The paper demonstrates both protocols on a fourth-order parallel-form
IIR filter (Figs. 3 and 4) whose CDFG contains nine additions A1–A9 and
eight constant multiplications C1–C8.  The scanned figures are not
available, so this module reconstructs the canonical parallel form: two
second-order (biquad) sections fed by the same input and summed at the
output.

Per biquad *k* (direct form II, with unit b0):

.. code-block:: text

    w_k[n] = x[n] + a1_k * w_k[n-1] + a2_k * w_k[n-2]      (feedback side)
    y_k[n] = w_k[n] + b1_k * w_k[n-1] + b2_k * w_k[n-2]    (feedforward side)
    y[n]   = y_1[n] + y_2[n]

In the unrolled single-iteration CDFG, the delayed states ``w_k[n-1]``
and ``w_k[n-2]`` are primary inputs.  That yields exactly:

* 8 constant multiplications C1–C8 (a1, a2, b1, b2 per section) and
* 9 additions A1–A9 (four per section plus the output adder),

matching the node names used throughout the paper's running example
(temporal edges among C1…C8/A2/A3; enforced matchings (A5, A6),
(A9, A7), (A8, C7)).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG

#: Names of the addition nodes in the reconstruction.
IIR4_ADDERS: List[str] = [f"A{i}" for i in range(1, 10)]
#: Names of the constant-multiplication nodes in the reconstruction.
IIR4_CONST_MULS: List[str] = [f"C{i}" for i in range(1, 9)]


def fourth_order_parallel_iir() -> CDFG:
    """Build the fourth-order parallel IIR CDFG (Figs. 3–4 reconstruction).

    Returns a validated CDFG with primary inputs
    ``x, s11, s12, s21, s22`` (input sample and the four delayed biquad
    states), schedulable nodes ``A1..A9, C1..C8``, and primary output
    ``y``.
    """
    b = CDFGBuilder("iir4_parallel")
    x = b.input("x")
    s11 = b.input("s11")  # w_1[n-1]
    s12 = b.input("s12")  # w_1[n-2]
    s21 = b.input("s21")  # w_2[n-1]
    s22 = b.input("s22")  # w_2[n-2]

    # --- biquad section 1 ------------------------------------------------
    c1 = b.const_mul(s11, "C1")  # a1_1 * w1[n-1]
    c2 = b.const_mul(s12, "C2")  # a2_1 * w1[n-2]
    a1 = b.add(x, c1, "A1")      # x + C1
    a2 = b.add(a1, c2, "A2")     # w_1[n]
    c3 = b.const_mul(s11, "C3")  # b1_1 * w1[n-1]
    c4 = b.const_mul(s12, "C4")  # b2_1 * w1[n-2]
    a3 = b.add(a2, c3, "A3")
    a4 = b.add(a3, c4, "A4")     # y_1[n]

    # --- biquad section 2 ------------------------------------------------
    c5 = b.const_mul(s21, "C5")  # a1_2 * w2[n-1]
    c6 = b.const_mul(s22, "C6")  # a2_2 * w2[n-2]
    a5 = b.add(x, c5, "A5")
    a6 = b.add(a5, c6, "A6")     # w_2[n]
    c7 = b.const_mul(s21, "C7")  # b1_2 * w2[n-1]
    c8 = b.const_mul(s22, "C8")  # b2_2 * w2[n-2]
    a7 = b.add(a6, c7, "A7")
    a8 = b.add(a7, c8, "A8")     # y_2[n]

    # --- output summation -------------------------------------------------
    a9 = b.add(a4, a8, "A9")     # y[n]
    b.output(a9, "y")
    # The new state values w_k[n] are also design outputs.
    b.output(a2, "w1_next")
    b.output(a6, "w2_next")
    return b.build()


def iir4_biquad_membership() -> Dict[str, int]:
    """Map each schedulable node to its biquad section (0 = output adder).

    Test helper documenting the reconstruction's structure.
    """
    section: Dict[str, int] = {}
    for node in ("C1", "C2", "C3", "C4", "A1", "A2", "A3", "A4"):
        section[node] = 1
    for node in ("C5", "C6", "C7", "C8", "A5", "A6", "A7", "A8"):
        section[node] = 2
    section["A9"] = 0
    return section
