"""Benchmark designs: the paper's motivational IIR and the Table II suite."""

from repro.cdfg.designs.hyper_suite import (
    HYPER_SUITE,
    DesignSpec,
    cf_iir_8th_order,
    da_converter,
    hyper_design,
    linear_ge_controller,
    long_echo_canceler,
    modem_filter,
    suite_statistics,
    volterra_2nd_order,
    volterra_3rd_order,
    wavelet_filter,
)
from repro.cdfg.designs.synthetic import (
    STITCH_MEMBERS,
    SYNTHETIC_TIERS,
    SyntheticTierSpec,
    scaled_echo_canceler,
    stitched_hyper_composite,
    synthetic_design,
)
from repro.cdfg.designs.periodic import (
    PERIODIC_SUITE,
    PeriodicDesignSpec,
    cyclic_echo_canceler,
    cyclic_iir_biquad,
    cyclic_pid_controller,
    periodic_design,
)
from repro.cdfg.designs.iir import (
    IIR4_ADDERS,
    IIR4_CONST_MULS,
    fourth_order_parallel_iir,
    iir4_biquad_membership,
)

__all__ = [
    "fourth_order_parallel_iir",
    "iir4_biquad_membership",
    "IIR4_ADDERS",
    "IIR4_CONST_MULS",
    "DesignSpec",
    "HYPER_SUITE",
    "hyper_design",
    "suite_statistics",
    "cf_iir_8th_order",
    "linear_ge_controller",
    "wavelet_filter",
    "modem_filter",
    "volterra_2nd_order",
    "volterra_3rd_order",
    "da_converter",
    "long_echo_canceler",
    "SyntheticTierSpec",
    "SYNTHETIC_TIERS",
    "STITCH_MEMBERS",
    "scaled_echo_canceler",
    "stitched_hyper_composite",
    "synthetic_design",
    "PeriodicDesignSpec",
    "PERIODIC_SUITE",
    "cyclic_iir_biquad",
    "cyclic_pid_controller",
    "cyclic_echo_canceler",
    "periodic_design",
]
