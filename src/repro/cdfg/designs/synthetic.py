"""Synthetic large-design tier: 50k–500k-node scaled and stitched CDFGs.

The HYPER reconstructions top out at 6418 nodes (Long Echo Canceler) —
three orders of magnitude below the full-chip scale modern watermarking
work evaluates at.  This module grows deterministic designs into that
regime along the one axis that matters for the array-native kernel:
**width** (nodes per level), since level-batched sweeps amortize their
per-level cost over a level's population.

* :func:`scaled_echo_canceler` — *lanes* parallel decimated-LMS
  lattices (the Long Echo Canceler's per-tap structure) combined by a
  balanced adder tree.  Scaling in lanes rather than taps keeps the
  depth moderate and the width high (~5·taps·lanes nodes over
  ~2·taps levels).
* :func:`stitched_hyper_composite` — independent copies of the small
  and medium HYPER designs instantiated round-robin under per-copy
  prefixes, stitched into one connected design by a balanced adder
  tree over one tapped value per copy.  Depth stays near the deepest
  member (the D/A converter, CP 132) plus the tree height, so a
  120k-node composite runs ~800 nodes wide per level.

Everything is deterministic: the member factories are seeded, the only
randomness is the seeded round-robin shuffle, and node names encode the
copy index.  Construction feeds every edge into a freshly created node
(members are copied in their own topological order), which keeps the
CDFG cycle check O(1) per edge and the whole build linear.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.designs.hyper_suite import HYPER_SUITE
from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.ops import OpType

#: HYPER members used for composites — every design except the Long
#: Echo Canceler, whose 2566-step depth would make composites narrow.
STITCH_MEMBERS: Tuple[str, ...] = (
    "8th Order CF IIR",
    "Linear GE Cntrlr",
    "Wavelet Filter",
    "Modem Filter",
    "Volterra 2nd ord.",
    "Volterra 3rd non-lin.",
    "D/A Converter",
)


def _adder_tree_builder(b: CDFGBuilder, values: List[str], stem: str) -> str:
    """Balanced pairwise ADD tree over *values* inside a builder."""
    rank = 0
    while len(values) > 1:
        merged: List[str] = []
        for k in range(0, len(values) - 1, 2):
            merged.append(
                b.add(values[k], values[k + 1], f"{stem}/t{rank}_{k // 2}")
            )
        if len(values) % 2:
            merged.append(values[-1])
        values = merged
        rank += 1
    return values[0]


def scaled_echo_canceler(
    taps: int = 250, lanes: int = 80, name: Optional[str] = None
) -> CDFG:
    """Width-scaled echo canceler: *lanes* parallel *taps*-stage lattices.

    Each lane reproduces the Long Echo Canceler's structure — a serial
    scale-and-accumulate lattice with a decimated LMS coefficient
    update every fourth tap — and a balanced adder tree combines the
    lane outputs.  ~``5·taps·lanes`` nodes over ``~2·taps`` levels, so
    the default (250, 80) is a ~100k-node design ~200 nodes wide.
    """
    b = CDFGBuilder(name or f"echo_{taps}x{lanes}")
    lane_outputs: List[str] = []
    for lane in range(lanes):
        acc = b.input(f"l{lane}/x0")
        for tap in range(taps):
            sample = b.input(f"l{lane}/x{tap + 1}")
            product = b.const_mul(sample, f"l{lane}/p{tap}")
            scaled = b.const_mul(acc, f"l{lane}/s{tap}")
            acc = b.add(scaled, product, f"l{lane}/a{tap}")
            if tap % 4 == 0:
                weight = b.input(f"l{lane}/w{tap}")
                gradient = b.const_mul(sample, f"l{lane}/g{tap}")
                updated = b.add(weight, gradient, f"l{lane}/u{tap}")
                b.output(updated, f"l{lane}/wnext{tap}")
        lane_outputs.append(acc)
    combined = _adder_tree_builder(b, lane_outputs, stem="combine")
    b.output(combined, "y")
    return b.build()


def _prepare_member(design: CDFG) -> Tuple[List[tuple], str]:
    """Flatten *design* into copyable rows plus the tap node to stitch.

    Rows are ``(name, op, latency, ppo, in_edges)`` in topological
    order, so replaying them adds every edge into a just-created node.
    The tap is the value feeding the design's last primary OUTPUT.
    """
    g = design.graph
    order = design.topological_order()
    rows: List[tuple] = []
    outputs: List[str] = []
    for v in order:
        data = g.nodes[v]
        in_edges = tuple(
            (u, g.edges[u, v]["kind"]) for u in g.predecessors(v)
        )
        rows.append(
            (v, data["op"], data["latency"], bool(data.get("ppo")), in_edges)
        )
        if data["op"] is OpType.OUTPUT:
            outputs.append(v)
    tap = next(iter(g.predecessors(outputs[-1])))
    return rows, tap


def stitched_hyper_composite(
    target_nodes: int, seed: int = 0, name: Optional[str] = None
) -> CDFG:
    """Stitch HYPER copies into one ≥\\ *target_nodes*-node design.

    Members of :data:`STITCH_MEMBERS` are instantiated round-robin (in
    a ``seed``-shuffled order) under ``c<i>/`` prefixes until the node
    count reaches *target_nodes*; one tapped value per copy then feeds
    a balanced adder tree ending in a single OUTPUT, which makes the
    composite connected without deepening it beyond the slowest member
    plus the tree height.
    """
    rng = random.Random(seed)
    prepared: Dict[str, Tuple[List[tuple], str]] = {}
    for spec in HYPER_SUITE:
        if spec.name in STITCH_MEMBERS:
            prepared[spec.name] = _prepare_member(spec.factory())
    cycle = [m for m in STITCH_MEMBERS]
    rng.shuffle(cycle)

    composite = CDFG(name or f"composite_{target_nodes}")
    taps: List[str] = []
    total = 0
    copy_index = 0
    while total < target_nodes:
        member = cycle[copy_index % len(cycle)]
        rows, tap = prepared[member]
        prefix = f"c{copy_index}/"
        for node, op, lat, ppo, in_edges in rows:
            composite.add_operation(prefix + node, op, latency=lat, ppo=ppo)
            for src, kind in in_edges:
                composite.add_edge(prefix + src, prefix + node, kind)
        taps.append(prefix + tap)
        total += len(rows)
        copy_index += 1

    values = taps
    rank = 0
    while len(values) > 1:
        merged: List[str] = []
        for k in range(0, len(values) - 1, 2):
            node = f"stitch/t{rank}_{k // 2}"
            composite.add_operation(node, OpType.ADD)
            composite.add_edge(values[k], node, EdgeKind.DATA)
            composite.add_edge(values[k + 1], node, EdgeKind.DATA)
            merged.append(node)
        if len(values) % 2:
            merged.append(values[-1])
        values = merged
        rank += 1
    composite.add_operation("stitch/y", OpType.OUTPUT)
    composite.add_edge(values[0], "stitch/y", EdgeKind.DATA)
    composite.validate()
    return composite


@dataclass(frozen=True)
class SyntheticTierSpec:
    """One named large-tier design: name, scale target, and factory."""

    name: str
    target_nodes: int
    factory: Callable[[], CDFG]


#: The gated large benchmark tier, smallest first.  ``composite-50k``
#: is the CI smoke design; ``composite-120k`` carries the ≥5x gate;
#: ``composite-500k`` documents headroom and is never built in CI.
SYNTHETIC_TIERS: Tuple[SyntheticTierSpec, ...] = (
    SyntheticTierSpec(
        "composite-50k",
        50_000,
        lambda: stitched_hyper_composite(50_000, seed=50, name="composite_50k"),
    ),
    SyntheticTierSpec(
        "echo-100k",
        100_000,
        lambda: scaled_echo_canceler(taps=250, lanes=80, name="echo_100k"),
    ),
    SyntheticTierSpec(
        "composite-120k",
        120_000,
        lambda: stitched_hyper_composite(
            120_000, seed=120, name="composite_120k"
        ),
    ),
    SyntheticTierSpec(
        "composite-500k",
        500_000,
        lambda: stitched_hyper_composite(
            500_000, seed=500, name="composite_500k"
        ),
    ),
)


def synthetic_design(name: str) -> CDFG:
    """Build one large-tier design by its tier name."""
    for spec in SYNTHETIC_TIERS:
        if spec.name == name:
            return spec.factory()
    raise KeyError(f"unknown synthetic tier: {name!r}")
