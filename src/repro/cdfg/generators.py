"""Seeded CDFG generators.

Two families:

* :func:`random_layered_cdfg` — generic layered DAGs with a realistic
  DSP operation mix; used for property tests, synthetic applications,
  and host designs for embedded-IP experiments.
* :func:`backbone_design` — designs with an *exact* critical-path length
  and an *exact* value count, used to rebuild the HYPER benchmark suite
  of the paper's Table II from its published statistics.

All generators are deterministic in their integer seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType
from repro.errors import CDFGError

#: Default operation mix for DSP-flavoured graphs (weights).
DSP_OP_MIX: Sequence[Tuple[OpType, float]] = (
    (OpType.ADD, 0.42),
    (OpType.MUL, 0.18),
    (OpType.CONST_MUL, 0.20),
    (OpType.SUB, 0.10),
    (OpType.SHIFT, 0.05),
    (OpType.COMPARE, 0.05),
)

#: Operation mix for general-purpose (MediaBench-like) code.
MEDIA_OP_MIX: Sequence[Tuple[OpType, float]] = (
    (OpType.ADD, 0.28),
    (OpType.SUB, 0.10),
    (OpType.MUL, 0.08),
    (OpType.SHIFT, 0.09),
    (OpType.AND, 0.05),
    (OpType.OR, 0.04),
    (OpType.XOR, 0.03),
    (OpType.COMPARE, 0.09),
    (OpType.LOAD, 0.12),
    (OpType.STORE, 0.06),
    (OpType.BRANCH, 0.06),
)


def _pick_op(rng: random.Random, mix: Sequence[Tuple[OpType, float]]) -> OpType:
    total = sum(weight for _, weight in mix)
    roll = rng.random() * total
    acc = 0.0
    for op, weight in mix:
        acc += weight
        if roll <= acc:
            return op
    return mix[-1][0]


def random_layered_cdfg(
    num_ops: int,
    seed: int,
    num_inputs: Optional[int] = None,
    num_layers: Optional[int] = None,
    op_mix: Sequence[Tuple[OpType, float]] = DSP_OP_MIX,
    max_fanin: int = 2,
    name: Optional[str] = None,
) -> CDFG:
    """Generate a random layered DAG of *num_ops* schedulable operations.

    Operations are placed into layers; each consumes 1..*max_fanin*
    values from strictly earlier layers (biased toward recent layers so
    the graph has realistic depth/locality).

    Parameters
    ----------
    num_ops:
        Number of schedulable (non-IO) operations.
    seed:
        Deterministic seed.
    num_inputs:
        Primary inputs; default ``max(2, num_ops // 8)``.
    num_layers:
        Layer count; default ``max(3, int(num_ops ** 0.5))``.
    """
    if num_ops < 1:
        raise CDFGError("num_ops must be positive")
    rng = random.Random(seed)
    if num_inputs is None:
        num_inputs = max(2, num_ops // 8)
    if num_layers is None:
        num_layers = max(3, int(round(num_ops**0.5)))
    num_layers = min(num_layers, num_ops)

    cdfg = CDFG(name or f"random{num_ops}s{seed}")
    inputs = [f"in{i}" for i in range(num_inputs)]
    for node in inputs:
        cdfg.add_operation(node, OpType.INPUT)

    # Distribute ops over layers (every layer gets at least one op).
    counts = [1] * num_layers
    for _ in range(num_ops - num_layers):
        counts[rng.randrange(num_layers)] += 1

    produced: List[List[str]] = [inputs]
    op_index = 0
    for layer, count in enumerate(counts, start=1):
        current: List[str] = []
        for _ in range(count):
            node = f"op{op_index}"
            op_index += 1
            cdfg.add_operation(node, _pick_op(rng, op_mix))
            fanin = rng.randint(1, max_fanin)
            for _ in range(fanin):
                # Bias toward recent producing layers, with a long tail
                # reaching far back — real dataflow mixes short local
                # chains with distant operands, which is what leaves a
                # large share of operations off the critical path.
                src_layer = max(0, layer - 1 - int(rng.expovariate(0.35)))
                src = rng.choice(produced[src_layer])
                try:
                    cdfg.add_data_edge(src, node)
                except CDFGError:
                    pass  # duplicate operand; skip
            current.append(node)
        produced.append(current)
    cdfg.validate()
    return cdfg


def random_cyclic_cdfg(
    num_ops: int,
    seed: int,
    num_back_edges: Optional[int] = None,
    max_distance: int = 3,
    op_mix: Sequence[Tuple[OpType, float]] = DSP_OP_MIX,
    name: Optional[str] = None,
) -> CDFG:
    """Generate a random cyclic CDFG: a layered DAG plus back edges.

    Starts from :func:`random_layered_cdfg` and closes cycles with
    seeded inter-iteration edges: each back edge runs from a node to
    one of its (skeleton) ancestors — or to itself — with a distance
    drawn from ``1..max_distance``.  Distances are positive, so the
    combinational skeleton stays acyclic and every II of at least the
    recurrence MII is feasible; this is the property-test substrate for
    the modulo-vs-unrolled equivalence suite.

    Parameters
    ----------
    num_back_edges:
        Back edges to attempt; default ``max(1, num_ops // 10)``.
        Duplicate pairs are skipped, so the realized count may be
        lower (but at least one is always placed).
    """
    cdfg = random_layered_cdfg(
        num_ops,
        seed,
        op_mix=op_mix,
        name=name or f"cyclic{num_ops}s{seed}",
    )
    rng = random.Random(seed ^ 0xC1C11C)
    if num_back_edges is None:
        num_back_edges = max(1, num_ops // 10)
    order = cdfg.topological_order()
    ops = [n for n in order if cdfg.op(n).is_schedulable]
    position = {n: i for i, n in enumerate(order)}
    placed = 0
    attempts = 0
    while placed < num_back_edges and attempts < 20 * num_back_edges:
        attempts += 1
        src = rng.choice(ops)
        # Destination at or before the source in topological order, so
        # the edge is genuinely "backward" (self-loops included).
        candidates = [n for n in ops if position[n] <= position[src]]
        dst = rng.choice(candidates)
        distance = rng.randint(1, max_distance)
        try:
            cdfg.add_data_edge(src, dst, distance=distance)
        except CDFGError:
            continue  # duplicate pair; redraw
        placed += 1
    if placed == 0:
        # Guarantee cyclicity: a self-loop is always insertable on a
        # fresh node pair unless every pair is already connected.
        cdfg.add_data_edge(ops[0], ops[0], distance=1)
    cdfg.validate()
    return cdfg


def backbone_design(
    name: str,
    num_values: int,
    critical_path: int,
    seed: int,
    op_cycle: Sequence[OpType] = (OpType.CONST_MUL, OpType.ADD),
    side_mix: Sequence[Tuple[OpType, float]] = DSP_OP_MIX,
) -> CDFG:
    """Build a design with exact critical path and exact value count.

    A backbone chain of *critical_path* operations pins the critical
    path; side operations and extra inputs are attached so no path ever
    exceeds the backbone, until exactly *num_values* data values exist
    (a value is produced by every INPUT and every schedulable op — the
    "variables" metric of Table II).

    Requires ``num_values >= critical_path + 1`` (the backbone plus the
    input feeding it).
    """
    if critical_path < 1:
        raise CDFGError("critical_path must be positive")
    if num_values < critical_path + 1:
        raise CDFGError(
            f"num_values={num_values} cannot be below "
            f"critical_path+1={critical_path + 1}"
        )
    rng = random.Random(seed)
    cdfg = CDFG(name)
    cdfg.add_operation("x0", OpType.INPUT)
    depth: Dict[str, int] = {"x0": 0}

    backbone: List[str] = []
    prev = "x0"
    for i in range(critical_path):
        node = f"b{i}"
        cdfg.add_operation(node, op_cycle[i % len(op_cycle)])
        cdfg.add_data_edge(prev, node)
        depth[node] = i + 1
        backbone.append(node)
        prev = node

    values = 1 + critical_path
    # Side structures are grown as *chains* that only meet the backbone
    # at their end: inner chain nodes have a single consumer, so they
    # form matchable multi-op patterns off the critical path (the
    # template-matching experiments need them).  Each open chain tracks
    # the backbone position it will eventually feed, which bounds its
    # length so the critical path never stretches.
    side_index = 0
    open_chains: List[Tuple[str, int, int]] = []  # (head, depth, target_i)

    def close_chain(head: str, target_i: int) -> None:
        cdfg.add_data_edge(head, backbone[target_i])

    while values < num_values:
        roll = rng.random()
        if open_chains and roll < 0.55:
            # Extend an open chain by one operation.  Extensions after a
            # multiply are biased toward addition — DSP side chains are
            # predominantly multiply-accumulate structures.
            index = rng.randrange(len(open_chains))
            head, head_depth, target_i = open_chains[index]
            node = f"s{side_index}"
            side_index += 1
            head_op = cdfg.op(head)
            if head_op in (OpType.CONST_MUL, OpType.MUL) and rng.random() < 0.7:
                chain_op = OpType.ADD
            else:
                chain_op = _pick_op(rng, side_mix)
            cdfg.add_operation(node, chain_op)
            cdfg.add_data_edge(head, node)
            depth[node] = head_depth + 1
            if depth[node] >= target_i:
                # No room left before the target: terminate here.
                close_chain(node, target_i)
                open_chains.pop(index)
            else:
                open_chains[index] = (node, depth[node], target_i)
        elif critical_path >= 3 and roll < 0.85:
            # Start a new chain from an early value, aimed at a later
            # backbone node (leaving room for the chain to grow).  The
            # target is biased toward the end of the backbone so the
            # chain retains laxity slack — these are the nodes the
            # watermarking protocols are allowed to constrain.
            lo_target = max(2, (2 * critical_path) // 3)
            target_i = rng.randrange(min(lo_target, critical_path - 1), critical_path)
            src_candidates = [
                n for n, d in depth.items() if d <= target_i - 2
            ]
            src = rng.choice(src_candidates)
            node = f"s{side_index}"
            side_index += 1
            cdfg.add_operation(node, _pick_op(rng, side_mix))
            cdfg.add_data_edge(src, node)
            depth[node] = depth[src] + 1
            open_chains.append((node, depth[node], target_i))
        else:
            # Add an extra primary input feeding some backbone node.
            node = f"x{values}"
            cdfg.add_operation(node, OpType.INPUT)
            cdfg.add_data_edge(node, backbone[rng.randrange(critical_path)])
            depth[node] = 0
        values += 1
    for head, _, target_i in open_chains:
        close_chain(head, target_i)

    cdfg.add_operation("y", OpType.OUTPUT)
    cdfg.add_data_edge(backbone[-1], "y")
    cdfg.validate()
    return cdfg


def embed_in_host(
    core: CDFG,
    host_ops: int,
    seed: int,
    prefix: str = "core/",
    attach_outputs: int = 2,
) -> CDFG:
    """Embed *core* inside a freshly generated host design.

    Models the adversarial scenario of §I: a misappropriated core is
    augmented into a larger system.  The host consumes the core's
    primary outputs (the core's fanin structure — the watermark locality
    — is left intact, which is precisely the property local watermarks
    exploit).

    Parameters
    ----------
    core:
        The (possibly watermarked) design being misappropriated.
    host_ops:
        Size of the host design around the core.
    attach_outputs:
        How many core outputs the host consumes.
    """
    rng = random.Random(seed)
    host = random_layered_cdfg(host_ops, seed=seed ^ 0x5EED, name="host")
    merged = host.merged_with(core, prefix=prefix, name=f"host+{core.name}")
    core_outputs = [
        prefix + n
        for n in core.primary_outputs
        if core.op(n).is_schedulable or core.op(n) is OpType.OUTPUT
    ]
    host_ops_list = [n for n in host.operations if host.op(n).is_schedulable]
    for out in rng.sample(core_outputs, min(attach_outputs, len(core_outputs))):
        sink = rng.choice(host_ops_list)
        try:
            merged.add_data_edge(out, sink)
        except CDFGError:
            continue
    merged.validate()
    return merged
