"""Operation types for CDFG nodes.

Every node of a CDFG performs one primitive operation.  Each operation
type carries:

* a stable integer *functionality identifier* ``f(n)`` — the paper's
  criterion C3 sums these identifiers over fanin trees ("all possible
  distinct operations are uniquely identified, e.g. addition is
  identified with 1, multiplication with 2, etc.");
* a *resource category* used by resource-constrained scheduling and by
  the VLIW machine model;
* a default *latency* in control steps (behavioral scheduling uses unit
  latencies; the VLIW model overrides some of them).
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Dict


@unique
class ResourceClass(str, Enum):
    """Functional-unit class an operation executes on."""

    ALU = "alu"
    MULTIPLIER = "multiplier"
    MEMORY = "memory"
    BRANCH = "branch"
    IO = "io"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceClass.{self.name}"


@unique
class OpType(Enum):
    """Primitive operation performed by a CDFG node.

    The tuple payload is ``(functionality_id, resource_class, latency)``.
    """

    ADD = (1, ResourceClass.ALU, 1)
    MUL = (2, ResourceClass.MULTIPLIER, 1)
    SUB = (3, ResourceClass.ALU, 1)
    #: Multiplication by a compile-time constant (the "C" nodes of the
    #: paper's IIR example); cheaper than a general multiply.
    CONST_MUL = (4, ResourceClass.MULTIPLIER, 1)
    SHIFT = (5, ResourceClass.ALU, 1)
    AND = (6, ResourceClass.ALU, 1)
    OR = (7, ResourceClass.ALU, 1)
    XOR = (8, ResourceClass.ALU, 1)
    COMPARE = (9, ResourceClass.ALU, 1)
    SELECT = (10, ResourceClass.ALU, 1)
    LOAD = (11, ResourceClass.MEMORY, 1)
    STORE = (12, ResourceClass.MEMORY, 1)
    BRANCH = (13, ResourceClass.BRANCH, 1)
    #: Primary input placeholder (consumes nothing, produces one sample).
    INPUT = (14, ResourceClass.IO, 0)
    #: Primary output placeholder.
    OUTPUT = (15, ResourceClass.IO, 0)
    #: Unit operation with no architectural effect ("addition with a
    #: variable assigned to zero at runtime") — the vehicle the paper uses
    #: to realize temporal edges in compiled code (§V).
    UNIT = (16, ResourceClass.ALU, 1)

    def __init__(
        self, functionality_id: int, resource_class: ResourceClass, latency: int
    ) -> None:
        self.functionality_id = functionality_id
        self.resource_class = resource_class
        self.latency = latency

    @property
    def is_io(self) -> bool:
        """True for INPUT/OUTPUT placeholder operations."""
        return self.resource_class is ResourceClass.IO

    @property
    def is_schedulable(self) -> bool:
        """True if the operation occupies a control step."""
        return not self.is_io

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpType.{self.name}"


#: Map from functionality identifier back to the operation type.
FUNCTIONALITY_TABLE: Dict[int, OpType] = {
    op.functionality_id: op for op in OpType
}


def functionality_id(op: OpType) -> int:
    """Return the paper's unique functionality identifier ``f(n)``."""
    return op.functionality_id
