"""CDFG data model, builders, serialization, generators, and designs."""

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG, EdgeKind
from repro.cdfg.ops import FUNCTIONALITY_TABLE, OpType, ResourceClass, functionality_id

__all__ = [
    "CDFG",
    "EdgeKind",
    "CDFGBuilder",
    "OpType",
    "ResourceClass",
    "functionality_id",
    "FUNCTIONALITY_TABLE",
]
