"""Recover (schedule, binding) from emitted Verilog and re-detect the mark.

The reverse-engineering half of the paper's §II claim, one level below
the abstract controller: given only the text a synthesis flow would hand
to an adversary (or a court), parse the FSMD module back into a
:class:`~repro.rtl.controller.Controller` and a
:class:`~repro.rtl.binding.Binding`, reconstruct the schedule by the
"observe the control signals" argument, and run watermark detection on
the recovered schedule with exactly the behavioral-level evidence.

The parse is *structural*: control steps come from the case-arm state
labels, unit instances from the combinational block nets, operand
registers from the ``r<k>`` tokens of each expression, destination
registers from the write-back assignments, input registers from the
``S_IDLE`` capture assignments.  Only the CDFG node names and opcodes
ride in the ``// op`` / ``// wb`` / ``// pi`` comments (an HLS tool's
preserved source identifiers); everything timing- and binding-relevant
is recovered from synthesizable code, which is what gives the planted
off-by-one / register-swap teeth tests something real to bite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType, ResourceClass
from repro.errors import ReproError
from repro.rtl.binding import Binding
from repro.rtl.controller import (
    Controller,
    MicroOp,
    recover_schedule,
    recovered_schedule_for,
)
from repro.rtl.emit import RTL_FORMAT_TAG
from repro.scheduling.schedule import Schedule


class RTLExtractionError(ReproError):
    """The text is not (or no longer) a well-formed localmark RTL module."""


@dataclass(frozen=True)
class ExtractedRTL:
    """Everything recovered from one emitted module.

    Attributes
    ----------
    module_name:
        Verilog module identifier.
    design_name:
        Original CDFG name (header comment).
    num_steps:
        Control steps the FSM implements.
    controller:
        Recovered FSM: one control word per step, canonical order.
    binding:
        Recovered datapath binding (unit and register assignments,
        including primary-input capture registers).
    outputs:
        Primary-output node names, in port order.
    """

    module_name: str
    design_name: str
    num_steps: int
    controller: Controller
    binding: Binding
    outputs: Tuple[str, ...]


_DESIGN_RE = re.compile(r"^// design: (.*)$")
_STATS_RE = re.compile(r"^// steps: (\d+) registers: (\d+) units: (\d+)$")
_MODULE_RE = re.compile(r"^module (\w+) \($")
_OUT_PORT_RE = re.compile(
    r"^output reg signed \[\d+:0\] out_\w+,  // po (.*)$"
)
_COMB_ARM_RE = re.compile(
    r"^S_(\d+): u_([a-z]+)_(\d+) = (.*);  // op ([A-Z_]+) (.*)$"
)
_SEQ_ARM_RE = re.compile(r"^S_(\d+): begin$")
_CAPTURE_RE = re.compile(r"^r(\d+) <= in_\w+;  // pi (.*)$")
_WRITEBACK_RE = re.compile(
    r"^r(\d+) <= u_([a-z]+)_(\d+);  // wb (.*)$"
)
_SOURCE_REG_RE = re.compile(r"\br(\d+)\b")


def _writeback_register(text: str) -> int:
    """Destination register index of one write-back assignment.

    >>> _writeback_register("7")
    7
    """
    return int(text)


def extract_verilog(text: str) -> ExtractedRTL:
    """Parse emitted Verilog back into controller + binding.

    >>> from repro.cdfg.designs import fourth_order_parallel_iir
    >>> from repro.rtl.emit import emit_verilog
    >>> from repro.scheduling.list_scheduler import list_schedule
    >>> design = fourth_order_parallel_iir()
    >>> schedule = list_schedule(design)
    >>> extracted = extract_verilog(emit_verilog(design, schedule).text)
    >>> extracted.design_name
    'iir4_parallel'
    >>> extracted.num_steps == schedule.makespan(design)
    True
    """
    lines = [line.strip() for line in text.splitlines()]
    if not lines or lines[0] != RTL_FORMAT_TAG:
        raise RTLExtractionError(
            f"missing format tag {RTL_FORMAT_TAG!r}; not localmark RTL"
        )

    design_name: Optional[str] = None
    module_name: Optional[str] = None
    header_steps: Optional[int] = None
    outputs: List[str] = []
    # (step, unit, expr sources, opcode, operation) per combinational arm.
    issues: List[Tuple[int, Tuple[str, int], Tuple[int, ...], str, str]] = []
    # (step, unit) -> (destination register, operation) per write-back.
    writebacks: Dict[Tuple[int, Tuple[str, int]], Tuple[int, str]] = {}
    captures: Dict[str, int] = {}

    in_sequential = False
    current_step: Optional[int] = None
    for line in lines:
        if design_name is None:
            match = _DESIGN_RE.match(line)
            if match:
                design_name = match.group(1)
                continue
        if header_steps is None:
            match = _STATS_RE.match(line)
            if match:
                header_steps = int(match.group(1))
                continue
        if module_name is None:
            match = _MODULE_RE.match(line)
            if match:
                module_name = match.group(1)
                continue
        match = _OUT_PORT_RE.match(line)
        if match:
            outputs.append(match.group(1))
            continue
        if line == "always @(posedge clk) begin":
            in_sequential = True
            continue
        if not in_sequential:
            match = _COMB_ARM_RE.match(line)
            if match:
                step_text, cls, index, expr, opcode, operation = match.groups()
                if opcode not in OpType.__members__:
                    raise RTLExtractionError(f"unknown opcode {opcode!r}")
                sources = tuple(
                    int(token) for token in _SOURCE_REG_RE.findall(expr)
                )
                issues.append(
                    (
                        int(step_text),
                        (cls, int(index)),
                        sources,
                        opcode,
                        operation,
                    )
                )
            continue
        match = _SEQ_ARM_RE.match(line)
        if match:
            current_step = int(match.group(1))
            continue
        if line in ("S_IDLE: begin", "S_DONE: begin"):
            current_step = None
            continue
        match = _CAPTURE_RE.match(line)
        if match:
            captures[match.group(2)] = _writeback_register(match.group(1))
            continue
        match = _WRITEBACK_RE.match(line)
        if match:
            if current_step is None:
                raise RTLExtractionError(
                    f"write-back outside any control-step arm: {line!r}"
                )
            reg_text, cls, index, operation = match.groups()
            key = (current_step, (cls, int(index)))
            if key in writebacks:
                raise RTLExtractionError(
                    f"unit {cls}_{index} written back twice at step "
                    f"{current_step}"
                )
            writebacks[key] = (_writeback_register(reg_text), operation)

    if design_name is None or header_steps is None or module_name is None:
        raise RTLExtractionError("header comments or module line missing")
    if not issues:
        raise RTLExtractionError("no unit case arms found; empty datapath")

    try:
        resource_classes = {
            cls: ResourceClass(cls) for _, (cls, _), _, _, _ in issues
        }
    except ValueError as exc:
        raise RTLExtractionError(str(exc)) from exc

    num_steps = max(header_steps, max(step for step, *_ in issues) + 1)
    controller = Controller(steps=[[] for _ in range(num_steps)])
    binding = Binding()
    seen = set()
    for step, unit, sources, opcode, operation in issues:
        if operation in seen:
            raise RTLExtractionError(
                f"operation {operation!r} issued by two case arms"
            )
        seen.add(operation)
        writeback = writebacks.get((step, unit))
        if writeback is None:
            raise RTLExtractionError(
                f"no write-back for unit {unit[0]}_{unit[1]} at step {step}"
            )
        destination, wb_operation = writeback
        if wb_operation != operation:
            raise RTLExtractionError(
                f"write-back at step {step} latches {wb_operation!r} but "
                f"the unit computes {operation!r}"
            )
        controller.steps[step].append(
            MicroOp(
                operation=operation,
                opcode=opcode,
                unit=unit,
                source_registers=sources,
                destination_register=destination,
            )
        )
        binding.unit_of[operation] = (resource_classes[unit[0]], unit[1])
        binding.register_of[operation] = destination
    if len(writebacks) != len(issues):
        raise RTLExtractionError(
            f"{len(writebacks)} write-back(s) for {len(issues)} case arm(s)"
        )
    for word in controller.steps:
        word.sort(key=lambda m: (m.unit, m.operation))
    binding.register_of.update(captures)

    return ExtractedRTL(
        module_name=module_name,
        design_name=design_name,
        num_steps=num_steps,
        controller=controller,
        binding=binding,
        outputs=tuple(outputs),
    )


def recover_schedule_from_rtl(text: str) -> Schedule:
    """Schedule of the datapath operations, straight from the text.

    >>> from repro.cdfg.designs import fourth_order_parallel_iir
    >>> from repro.rtl.emit import emit_verilog
    >>> from repro.scheduling.list_scheduler import list_schedule
    >>> design = fourth_order_parallel_iir()
    >>> schedule = list_schedule(design)
    >>> recovered = recover_schedule_from_rtl(
    ...     emit_verilog(design, schedule).text
    ... )
    >>> all(
    ...     recovered.start(n) == schedule.start(n)
    ...     for n in design.schedulable_operations
    ... )
    True
    """
    return recover_schedule(extract_verilog(text).controller)


def detect_from_rtl(
    text: str,
    suspect: CDFG,
    watermark,
    model: str = "poisson",
):
    """Full cross-level detection: Verilog text → per-edge evidence.

    Recovers the schedule from the emitted module, completes it with the
    suspect's IO placeholders, and hands it to
    :func:`repro.core.detector.detect_from_recovered_schedule` — so the
    evidence an RTL-level detective reports is, by construction, the
    same *shape* as the behavioral detector's, and the round-trip oracle
    asserts it is the same *content*.

    >>> from repro.cdfg.designs import fourth_order_parallel_iir
    >>> from repro.core.scheduling_wm import (
    ...     SchedulingWatermarker, SchedulingWMParams,
    ... )
    >>> from repro.core.domain import DomainParams
    >>> from repro.crypto.signature import AuthorSignature
    >>> from repro.rtl.emit import emit_verilog
    >>> from repro.scheduling.list_scheduler import list_schedule
    >>> marker = SchedulingWatermarker(
    ...     AuthorSignature("alice"),
    ...     SchedulingWMParams(domain=DomainParams(tau=4), k=2),
    ... )
    >>> marked, record = marker.embed(fourth_order_parallel_iir())
    >>> schedule = list_schedule(marked)
    >>> suspect = marked.without_temporal_edges()
    >>> hit = detect_from_rtl(
    ...     emit_verilog(marked, schedule).text, suspect, record
    ... )
    >>> hit.result.detected
    True
    """
    from repro.core.detector import detect_from_recovered_schedule

    recovered = recovered_schedule_for(
        suspect, recover_schedule(extract_verilog(text).controller)
    )
    return detect_from_recovered_schedule(
        suspect, recovered, watermark, model=model
    )
