"""RTL-level substrate: binding, FSM controllers, Verilog emission (§II)."""

from repro.rtl.binding import (
    Binding,
    Lifetime,
    bind,
    left_edge_registers,
    variable_lifetimes,
)
from repro.rtl.controller import (
    Controller,
    ControllerError,
    MicroOp,
    datapath_summary,
    recover_schedule,
    recovered_schedule_for,
    synthesize_controller,
)
from repro.rtl.emit import (
    EmissionError,
    EmittedRTL,
    RTL_FORMAT_TAG,
    const_coefficient,
    emit_verilog,
    rtl_identifiers,
)
from repro.rtl.extract import (
    ExtractedRTL,
    RTLExtractionError,
    detect_from_rtl,
    extract_verilog,
    recover_schedule_from_rtl,
)

__all__ = [
    "Lifetime",
    "variable_lifetimes",
    "left_edge_registers",
    "Binding",
    "bind",
    "MicroOp",
    "Controller",
    "ControllerError",
    "synthesize_controller",
    "recover_schedule",
    "recovered_schedule_for",
    "datapath_summary",
    "RTL_FORMAT_TAG",
    "EmissionError",
    "EmittedRTL",
    "const_coefficient",
    "emit_verilog",
    "rtl_identifiers",
    "RTLExtractionError",
    "ExtractedRTL",
    "extract_verilog",
    "recover_schedule_from_rtl",
    "detect_from_rtl",
]
