"""RTL-level substrate: binding, FSM controllers, schedule recovery (§II)."""

from repro.rtl.binding import (
    Binding,
    Lifetime,
    bind,
    left_edge_registers,
    variable_lifetimes,
)
from repro.rtl.controller import (
    Controller,
    ControllerError,
    MicroOp,
    datapath_summary,
    recover_schedule,
    recovered_schedule_for,
    synthesize_controller,
)

__all__ = [
    "Lifetime",
    "variable_lifetimes",
    "left_edge_registers",
    "Binding",
    "bind",
    "MicroOp",
    "Controller",
    "ControllerError",
    "synthesize_controller",
    "recover_schedule",
    "recovered_schedule_for",
    "datapath_summary",
]
