"""Deterministic synthesizable-subset Verilog emission (§II, one level down).

The paper's detection story assumes the suspect artifact is an *implementation*
— "once the specification is available, one can easily recover its finite
state machine (FSM) and, thus, the schedule and assignments used in the IC".
Everything below behavioral level in this repo stopped at the abstract
:class:`~repro.rtl.controller.Controller`; this module renders the real thing:
an FSMD-style Verilog module whose datapath comes from the
:class:`~repro.rtl.binding.Binding` (one combinational block per functional
unit instance, one ``r<k>`` register per left-edge register), whose FSM comes
from the :class:`~repro.rtl.controller.Controller` (one state per control
step, write-backs as nonblocking assignments), and whose port list comes from
the CDFG's primary inputs/outputs.

Properties the rest of the stack relies on:

* **Deterministic** — the same (CDFG, schedule, binding, controller) always
  renders byte-identical text (golden tests pin it; the ``rtl_roundtrip``
  oracle re-renders every trial).
* **Structurally faithful** — every micro-op appears as a case arm of its
  unit's combinational block *and* a write-back in the sequential block, so
  :mod:`repro.rtl.extract` can recover the (schedule, binding) pair from the
  synthesizable text itself.  Node names and opcodes ride in structured
  comments (``// op <OPCODE> <name>``), the way HLS tools preserve source
  identifiers; states, units, operand registers, and destination registers
  are all recovered from code, not comments.
* **Synthesizable subset** — single-clock, single-cycle operations
  (every schedulable op must have latency 1), 32-bit signed datapath,
  ``start``/``done`` handshake.  Multi-cycle latencies raise
  :class:`EmissionError` rather than emit wrong timing.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType
from repro.errors import ReproError
from repro.rtl.binding import Binding, bind
from repro.rtl.controller import Controller, MicroOp, synthesize_controller
from repro.scheduling.schedule import Schedule

#: First line of every emitted file; the extractor refuses anything else.
RTL_FORMAT_TAG = "// localmark-rtl-v1"

#: Datapath word width in bits.
WORD_BITS = 32


class EmissionError(ReproError):
    """The design falls outside the synthesizable subset."""


@dataclass(frozen=True)
class EmittedRTL:
    """One rendered Verilog module plus its summary statistics.

    Attributes
    ----------
    module_name:
        Sanitized Verilog module identifier.
    text:
        Complete module source (ends with a newline).
    num_states:
        Control-step states (excluding ``S_IDLE``/``S_DONE``).
    num_registers:
        Datapath registers ``r0..``.
    num_units:
        Functional-unit instances.
    """

    module_name: str
    text: str
    num_states: int
    num_registers: int
    num_units: int

    @property
    def lines(self) -> int:
        """Emitted lines of Verilog."""
        return self.text.count("\n")


def _sanitize_identifier(name: str) -> str:
    """A Verilog-legal identifier derived from *name*."""
    ident = re.sub(r"[^0-9A-Za-z_]", "_", name)
    if not ident:
        ident = "n"
    if ident[0].isdigit():
        ident = "n" + ident
    return ident


def rtl_identifiers(cdfg: CDFG) -> Dict[str, str]:
    """Node → unique Verilog identifier table (cached on the CDFG).

    The table is deterministic (insertion order + suffix dedup) and is
    cached on the design keyed by its mutation counter, exactly like the
    timing view; :meth:`CDFG.__getstate__` drops the cache so pickled
    designs rebuild it on first use.

    >>> from repro.cdfg.builder import CDFGBuilder
    >>> from repro.cdfg.ops import OpType
    >>> b = CDFGBuilder("demo")
    >>> _ = b.input("a/b")
    >>> _ = b.op("a+b", OpType.ADD, "a/b")
    >>> rtl_identifiers(b.build())
    {'a/b': 'a_b', 'a+b': 'a_b_1'}
    """
    cached = getattr(cdfg, "_rtl_names", None)
    if cached is not None and cached[0] == cdfg.mutation_count:
        return cached[1]
    table: Dict[str, str] = {}
    used = set()
    for node in cdfg.operations:
        ident = _sanitize_identifier(node)
        if ident in used:
            suffix = 1
            while f"{ident}_{suffix}" in used:
                suffix += 1
            ident = f"{ident}_{suffix}"
        used.add(ident)
        table[node] = ident
    cdfg._rtl_names = (cdfg.mutation_count, table)
    return table


def _arm_label(step: int) -> str:
    """Case-arm label of control step *step* (``S_<step>``).

    Both the unit combinational blocks and the sequential controller
    block label their arms through this single helper, so the emitted
    FSM states and the write-back states can never drift apart.
    """
    return f"S_{step}"


def const_coefficient(name: str) -> int:
    """Deterministic CONST_MUL coefficient derived from the node name.

    The paper's ``C`` nodes multiply by compile-time constants the CDFG
    does not record; a stable CRC of the node name stands in so emission
    is reproducible across processes.

    >>> const_coefficient("C1") == const_coefficient("C1")
    True
    >>> 1 <= const_coefficient("anything") <= 251
    True
    """
    return 1 + zlib.crc32(name.encode("utf-8")) % 251


#: Binary fold operator per operation type (datapath rendering).
_FOLD_OPERATOR = {
    OpType.ADD: " + ",
    OpType.SUB: " - ",
    OpType.MUL: " * ",
    OpType.CONST_MUL: " * ",
    OpType.AND: " & ",
    OpType.OR: " | ",
    OpType.XOR: " ^ ",
    # Memory/branch/select/compare/shift/unit ops fold operands with +
    # (the opcode comment disambiguates); canonical arities get their
    # idiomatic rendering below.
    OpType.SHIFT: " + ",
    OpType.COMPARE: " + ",
    OpType.SELECT: " + ",
    OpType.LOAD: " + ",
    OpType.STORE: " + ",
    OpType.BRANCH: " + ",
    OpType.UNIT: " + ",
}


def _expression(op: OpType, micro: MicroOp) -> str:
    """The combinational expression computing one micro-op.

    Every source register appears exactly once, in operand order — the
    extractor recovers ``source_registers`` from the ``r<k>`` tokens of
    this text, so the rendering must be faithful, not just plausible.
    """
    regs = [f"r{index}" for index in micro.source_registers]
    if op is OpType.COMPARE and len(regs) == 2:
        return f"(({regs[0]} < {regs[1]}) ? {WORD_BITS}'sd1 : {WORD_BITS}'sd0)"
    if op is OpType.SELECT and len(regs) == 3:
        return f"(({regs[0]} != {WORD_BITS}'sd0) ? {regs[1]} : {regs[2]})"
    terms = list(regs)
    if op is OpType.CONST_MUL:
        terms = [f"{WORD_BITS}'sd{const_coefficient(micro.operation)}"] + terms
    if not terms:
        terms = [f"{WORD_BITS}'sd0"]
    folded = _FOLD_OPERATOR[op].join(terms)
    if op is OpType.SHIFT:
        return f"({folded}) <<< 1"
    return folded


def _unit_name(unit: Tuple[str, int]) -> str:
    """Net name of a functional-unit instance (``u_<class>_<index>``)."""
    cls, index = unit
    return f"u_{cls}_{index}"


def _io_step(cdfg: CDFG, schedule: Schedule, node: str) -> int:
    """Control step of an IO placeholder (scheduled or precedence-implied)."""
    if node in schedule.start_times:
        return schedule.start(node)
    return max(
        (
            schedule.start(p) + cdfg.latency(p)
            for p in cdfg.data_predecessors(node)
            if p in schedule.start_times
        ),
        default=0,
    )


def emit_verilog(
    cdfg: CDFG,
    schedule: Schedule,
    binding: Optional[Binding] = None,
    controller: Optional[Controller] = None,
    module_name: Optional[str] = None,
) -> EmittedRTL:
    """Render a scheduled design as deterministic FSMD Verilog.

    *binding* and *controller* default to :func:`~repro.rtl.binding.bind`
    and :func:`~repro.rtl.controller.synthesize_controller` on the given
    schedule; passing them explicitly guarantees the emitted text
    matches a datapath you already analyzed.

    >>> from repro.cdfg.designs import fourth_order_parallel_iir
    >>> from repro.scheduling.list_scheduler import list_schedule
    >>> design = fourth_order_parallel_iir()
    >>> rtl = emit_verilog(design, list_schedule(design))
    >>> rtl.text.splitlines()[0]
    '// localmark-rtl-v1'
    >>> rtl.num_states == list_schedule(design).makespan(design)
    True
    """
    schedulable = cdfg.schedulable_operations
    if not schedulable:
        raise EmissionError(
            f"design {cdfg.name!r} has no schedulable operations to emit"
        )
    for node in schedulable:
        if cdfg.latency(node) != 1:
            raise EmissionError(
                f"operation {node!r} has latency {cdfg.latency(node)}; the "
                f"synthesizable subset is single-cycle (latency 1) only"
            )
    if binding is None:
        binding = bind(cdfg, schedule)
    if controller is None:
        controller = synthesize_controller(cdfg, schedule, binding)

    idents = rtl_identifiers(cdfg)
    num_steps = controller.num_steps
    num_registers = binding.num_registers
    units = binding.unit_instances()
    unit_keys = [(cls.value, index) for cls, index in units]
    module = _sanitize_identifier(module_name or cdfg.name)

    inputs = sorted(n for n in cdfg.operations if cdfg.op(n) is OpType.INPUT)
    outputs = sorted(cdfg.primary_outputs)

    # Micro-ops grouped per unit instance (for the combinational blocks)
    # and per step (for the sequential write-backs).
    by_unit: Dict[Tuple[str, int], List[Tuple[int, MicroOp]]] = {
        key: [] for key in unit_keys
    }
    for step, word in enumerate(controller.steps):
        for micro in word:
            if micro.destination_register is None:
                raise EmissionError(
                    f"operation {micro.operation!r} has no destination "
                    f"register; cannot emit its write-back"
                )
            if micro.unit not in by_unit:
                raise EmissionError(
                    f"operation {micro.operation!r} runs on unbound unit "
                    f"{micro.unit}"
                )
            by_unit[micro.unit].append((step, micro))

    # Output latches: (arm index or None for S_DONE, port, source, raw).
    latches: List[Tuple[Optional[int], str, str, str]] = []
    for node in outputs:
        op = cdfg.op(node)
        port = f"out_{idents[node]}"
        if op.is_schedulable:
            step: Optional[int] = schedule.start(node)
            cls, index = binding.unit_of[node]
            source = _unit_name((cls.value, index))
        elif op is OpType.OUTPUT:
            preds = cdfg.data_predecessors(node)
            if len(preds) > 1:
                raise EmissionError(
                    f"output {node!r} has {len(preds)} drivers; expected one"
                )
            if preds:
                source = f"r{binding.register_of[preds[0]]}"
                step = _io_step(cdfg, schedule, node)
            else:
                source = f"{WORD_BITS}'sd0"
                step = 0
        else:  # a primary input that is also a sink
            source = f"r{binding.register_of[node]}"
            step = 0
        latches.append((step if step < num_steps else None, port, source, node))

    width = max(1, (num_steps + 1).bit_length())
    lines: List[str] = []
    out = lines.append

    out(RTL_FORMAT_TAG)
    out(f"// design: {cdfg.name}")
    out(
        f"// steps: {num_steps} registers: {num_registers} "
        f"units: {len(units)}"
    )
    out(f"module {module} (")
    out("  input wire clk,")
    out("  input wire rst,")
    out("  input wire start,")
    for node in inputs:
        out(
            f"  input wire signed [{WORD_BITS - 1}:0] in_{idents[node]},"
            f"  // pi {node}"
        )
    for node in outputs:
        out(
            f"  output reg signed [{WORD_BITS - 1}:0] out_{idents[node]},"
            f"  // po {node}"
        )
    out("  output reg done")
    out(");")

    out(f"  localparam [{width - 1}:0] S_IDLE = {width}'d0;")
    for step in range(num_steps):
        out(f"  localparam [{width - 1}:0] S_{step} = {width}'d{step + 1};")
    out(f"  localparam [{width - 1}:0] S_DONE = {width}'d{num_steps + 1};")
    out(f"  reg [{width - 1}:0] state;")
    for index in range(num_registers):
        out(f"  reg signed [{WORD_BITS - 1}:0] r{index};")

    for key in unit_keys:
        net = _unit_name(key)
        out("")
        out(f"  // unit {key[0]}_{key[1]}")
        out(f"  reg signed [{WORD_BITS - 1}:0] {net};")
        out("  always @* begin")
        out(f"    {net} = {WORD_BITS}'sd0;")
        out("    case (state)")
        for step, micro in sorted(
            by_unit[key], key=lambda pair: pair[0]
        ):
            op = OpType[micro.opcode]
            out(
                f"      {_arm_label(step)}: {net} = "
                f"{_expression(op, micro)};"
                f"  // op {micro.opcode} {micro.operation}"
            )
        out("      default: ;")
        out("    endcase")
        out("  end")

    out("")
    out("  always @(posedge clk) begin")
    out("    if (rst) begin")
    out("      state <= S_IDLE;")
    out("      done <= 1'b0;")
    out("    end else begin")
    out("      case (state)")
    out("        S_IDLE: begin")
    out("          if (start) begin")
    for node in inputs:
        out(
            f"            r{binding.register_of[node]} <= "
            f"in_{idents[node]};  // pi {node}"
        )
    out("            done <= 1'b0;")
    out(f"            state <= {_arm_label(0) if num_steps else 'S_DONE'};")
    out("          end")
    out("        end")
    for step in range(num_steps):
        out(f"        {_arm_label(step)}: begin")
        for micro in controller.steps[step]:
            out(
                f"          r{micro.destination_register} <= "
                f"{_unit_name(micro.unit)};  // wb {micro.operation}"
            )
        for arm, port, source, raw in latches:
            if arm == step:
                out(f"          {port} <= {source};  // po {raw}")
        nxt = _arm_label(step + 1) if step + 1 < num_steps else "S_DONE"
        out(f"          state <= {nxt};")
        out("        end")
    out("        S_DONE: begin")
    for arm, port, source, raw in latches:
        if arm is None:
            out(f"          {port} <= {source};  // po {raw}")
    out("          done <= 1'b1;")
    out("          state <= S_DONE;")
    out("        end")
    out("        default: state <= S_IDLE;")
    out("      endcase")
    out("    end")
    out("  end")
    out("endmodule")

    return EmittedRTL(
        module_name=module,
        text="\n".join(lines) + "\n",
        num_states=num_steps,
        num_registers=num_registers,
        num_units=len(units),
    )
