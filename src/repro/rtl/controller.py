"""FSM controller synthesis and schedule recovery.

§II grounds the whole detection story in reverse engineering: "once the
specification is available, one can easily recover its finite state
machine (FSM) and, thus, the schedule and assignments used in the IC …
by observing control signals to multiplexers and other control logic".
This module models both directions:

* :func:`synthesize_controller` — the forward step a synthesis tool
  performs: from (CDFG, schedule, binding), emit the FSM as one control
  word per control step, each listing the micro-operations issued that
  step (which unit fires which operation, reading/writing which
  registers).
* :func:`recover_schedule` — the reverse-engineering step the detector
  relies on: given only the controller (what a netlist analysis of the
  control logic yields), reconstruct the schedule.  Recovery is exact:
  an operation starts at the step whose control word issues it.

The integration tests close the paper's loop: embed → schedule → bind →
synthesize controller ("the IC") → recover schedule → detect watermark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.errors import ReproError
from repro.rtl.binding import Binding, bind
from repro.scheduling.schedule import Schedule


class ControllerError(ReproError):
    """Malformed controller or unrecoverable schedule."""


@dataclass(frozen=True)
class MicroOp:
    """One datapath action issued by a control word.

    Attributes
    ----------
    operation:
        The CDFG operation name (what the op computes).
    opcode:
        Operation type name (visible as the unit's function select).
    unit:
        ``(resource class value, instance index)`` executing it.
    source_registers:
        Registers the operand multiplexers select.
    destination_register:
        Register enabled to latch the result (None for outputs).
    """

    operation: str
    opcode: str
    unit: Tuple[str, int]
    source_registers: Tuple[int, ...]
    destination_register: Optional[int]


@dataclass
class Controller:
    """An FSM: one control word (list of micro-ops) per control step."""

    steps: List[List[MicroOp]] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        """Schedule length the controller implements."""
        return len(self.steps)

    @property
    def num_microops(self) -> int:
        """Total datapath actions across all steps."""
        return sum(len(word) for word in self.steps)

    def as_table(self) -> Tuple[Tuple[MicroOp, ...], ...]:
        """Canonical immutable form (tuple of control words).

        Two controllers implement the same FSM exactly when their tables
        are equal; the RTL round-trip oracle compares extracted
        controllers against synthesized ones through this form.

        >>> Controller(steps=[[]]).as_table()
        ((),)
        """
        return tuple(tuple(word) for word in self.steps)

    def control_word(self, step: int) -> List[MicroOp]:
        """Micro-ops issued at *step*."""
        try:
            return self.steps[step]
        except IndexError as exc:
            raise ControllerError(f"no control word for step {step}") from exc


def synthesize_controller(
    cdfg: CDFG,
    schedule: Schedule,
    binding: Optional[Binding] = None,
) -> Controller:
    """Emit the FSM implementing (CDFG, schedule, binding)."""
    if binding is None:
        binding = bind(cdfg, schedule)
    num_steps = schedule.makespan(cdfg)
    controller = Controller(steps=[[] for _ in range(max(num_steps, 1))])
    for node in cdfg.schedulable_operations:
        cls, index = binding.unit_of[node]
        sources = tuple(
            binding.register_of[p]
            for p in cdfg.data_predecessors(node)
            if p in binding.register_of
        )
        destination = binding.register_of.get(node)
        controller.steps[schedule.start(node)].append(
            MicroOp(
                operation=node,
                opcode=cdfg.op(node).name,
                unit=(cls.value, index),
                source_registers=sources,
                destination_register=destination,
            )
        )
    for word in controller.steps:
        word.sort(key=lambda m: (m.unit, m.operation))
    return controller


def recover_schedule(controller: Controller) -> Schedule:
    """Reverse-engineer the schedule from the controller (§II).

    Every operation starts at the step whose control word issues it;
    this is exactly what "observing control signals to multiplexers"
    yields on real silicon.
    """
    start_times: Dict[str, int] = {}
    for step, word in enumerate(controller.steps):
        for micro in word:
            if micro.operation in start_times:
                raise ControllerError(
                    f"operation {micro.operation!r} issued twice"
                )
            start_times[micro.operation] = step
    if not start_times:
        raise ControllerError("controller issues no operations")
    return Schedule(start_times)


def recovered_schedule_for(cdfg: CDFG, recovered: Schedule) -> Schedule:
    """Complete a recovered schedule with the IO placeholders.

    Reverse engineering sees only datapath actions; the zero-latency
    IO placeholders are re-attached at their precedence-implied steps so
    the schedule verifies against the full CDFG.
    """
    completed = recovered.copy()
    for node in cdfg.topological_order():
        if node in completed.start_times:
            continue
        if not cdfg.op(node).is_io:
            raise ControllerError(
                f"datapath operation {node!r} missing from the controller"
            )
        preds = cdfg.predecessors(node)
        completed.start_times[node] = max(
            (
                completed.start_times[p] + cdfg.latency(p)
                for p in preds
                if p in completed.start_times
            ),
            default=0,
        )
    return completed


def datapath_summary(binding: Binding) -> Dict[str, int]:
    """Datapath cost summary (units per class + registers)."""
    summary = {
        f"units_{cls.value}": count
        for cls, count in binding.units_per_class().items()
    }
    summary["registers"] = binding.num_registers
    return summary
