"""Register and functional-unit binding.

After scheduling, behavioral synthesis binds every operation to a functional
unit instance and every variable to a register.  The paper leans on this
step twice: scheduling "determines … the lifetimes of variables" (§IV-A)
and the bound datapath is what a reverse engineer sees (§II).

* **Functional-unit binding** — operations of one resource class that
  run in disjoint control steps share a unit instance (greedy step scan).
* **Register binding** — classic left-edge algorithm over variable
  lifetimes: variables whose lifetimes do not overlap share a register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import OpType, ResourceClass
from repro.errors import SchedulingError
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class Lifetime:
    """A variable's live interval: [birth, death) in control steps."""

    variable: str
    birth: int
    death: int

    def overlaps(self, other: "Lifetime") -> bool:
        """Whether two lifetimes are simultaneously live."""
        return self.birth < other.death and other.birth < self.death


def variable_lifetimes(cdfg: CDFG, schedule: Schedule) -> List[Lifetime]:
    """Live interval of every produced value.

    A value is born when its producer finishes and dies after its last
    consumer starts; values with no consumer (primary outputs) live one
    step past their birth.
    """
    lifetimes = []
    for node in cdfg.operations:
        op = cdfg.op(node)
        if op is OpType.OUTPUT:
            continue
        birth = schedule.start(node) + cdfg.latency(node)
        consumers = cdfg.data_successors(node)
        if consumers:
            death = max(schedule.start(c) for c in consumers) + 1
        else:
            death = birth + 1
        death = max(death, birth + 1)
        lifetimes.append(Lifetime(node, birth, death))
    return lifetimes


@dataclass
class Binding:
    """Complete datapath binding.

    Attributes
    ----------
    unit_of:
        Operation → (resource class, unit index).
    register_of:
        Variable (producing node) → register index.
    """

    unit_of: Dict[str, Tuple[ResourceClass, int]] = field(default_factory=dict)
    register_of: Dict[str, int] = field(default_factory=dict)

    @property
    def num_registers(self) -> int:
        """Registers the datapath needs."""
        if not self.register_of:
            return 0
        return max(self.register_of.values()) + 1

    def unit_instances(self) -> List[Tuple[ResourceClass, int]]:
        """All bound functional-unit instances, sorted by (class, index).

        The Verilog emitter iterates this to declare one combinational
        block per instance in a stable order.

        >>> binding = Binding(unit_of={
        ...     "a": (ResourceClass.ALU, 0),
        ...     "m": (ResourceClass.MULTIPLIER, 0),
        ...     "b": (ResourceClass.ALU, 1),
        ... })
        >>> [(cls.value, i) for cls, i in binding.unit_instances()]
        [('alu', 0), ('alu', 1), ('multiplier', 0)]
        """
        return sorted(
            set(self.unit_of.values()), key=lambda u: (u[0].value, u[1])
        )

    def units_per_class(self) -> Dict[ResourceClass, int]:
        """Functional-unit instances per class."""
        counts: Dict[ResourceClass, int] = {}
        for cls, index in self.unit_of.values():
            counts[cls] = max(counts.get(cls, 0), index + 1)
        return counts

    def verify(self, cdfg: CDFG, schedule: Schedule) -> None:
        """Raise :class:`SchedulingError` on any binding conflict."""
        busy: Dict[Tuple[ResourceClass, int, int], str] = {}
        for node, (cls, index) in self.unit_of.items():
            for step in range(
                schedule.start(node),
                schedule.start(node) + cdfg.latency(node),
            ):
                key = (cls, index, step)
                if key in busy:
                    raise SchedulingError(
                        f"unit conflict: {node!r} and {busy[key]!r} share "
                        f"{cls.value}[{index}] at step {step}"
                    )
                busy[key] = node
        lifetimes = {
            lt.variable: lt for lt in variable_lifetimes(cdfg, schedule)
        }
        for a, reg_a in self.register_of.items():
            for b, reg_b in self.register_of.items():
                if a >= b or reg_a != reg_b:
                    continue
                if lifetimes[a].overlaps(lifetimes[b]):
                    raise SchedulingError(
                        f"register conflict: {a!r} and {b!r} share "
                        f"r{reg_a} while both live"
                    )


def left_edge_registers(lifetimes: List[Lifetime]) -> Dict[str, int]:
    """Left-edge register allocation: minimal registers for the intervals."""
    assignment: Dict[str, int] = {}
    remaining = sorted(lifetimes, key=lambda lt: (lt.birth, lt.death))
    register = 0
    while remaining:
        current_end = None
        leftover = []
        for lifetime in remaining:
            if current_end is None or lifetime.birth >= current_end:
                assignment[lifetime.variable] = register
                current_end = lifetime.death
            else:
                leftover.append(lifetime)
        remaining = leftover
        register += 1
    return assignment


def bind(cdfg: CDFG, schedule: Schedule) -> Binding:
    """Bind a scheduled design to units and registers."""
    binding = Binding()
    # Functional units: greedy per-class step scan.
    occupied: Dict[ResourceClass, List[int]] = {}  # unit -> busy-until step
    by_start = sorted(
        (n for n in cdfg.schedulable_operations),
        key=lambda n: (schedule.start(n), n),
    )
    for node in by_start:
        cls = cdfg.op(node).resource_class
        start = schedule.start(node)
        finish = start + cdfg.latency(node)
        units = occupied.setdefault(cls, [])
        for index, busy_until in enumerate(units):
            if busy_until <= start:
                units[index] = finish
                binding.unit_of[node] = (cls, index)
                break
        else:
            units.append(finish)
            binding.unit_of[node] = (cls, len(units) - 1)
    # Registers: left edge over lifetimes.
    binding.register_of = left_edge_registers(
        variable_lifetimes(cdfg, schedule)
    )
    binding.verify(cdfg, schedule)
    return binding
