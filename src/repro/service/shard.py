"""Engine shards: the units a serving fleet routes jobs across.

A *shard* is one job engine plus a transport the fleet router can
submit through.  Two implementations share the :class:`Shard`
interface:

* :class:`LocalShard` — an in-process :class:`~repro.service.engine.
  JobEngine` on the router's own event loop.  Cheapest transport, one
  worker pool per shard; ``kill()`` marks it dead (new submits raise
  :class:`~repro.errors.ShardDiedError`) and SIGKILLs its pool, but an
  in-process shard cannot take the router down with it by construction.
* :class:`TcpShard` — a ``localmark serve --tcp 0`` **subprocess**
  speaking the JSON-lines protocol over one persistent connection.
  This is the real fault domain: SIGKILLing the process (``kill()``)
  tears the transport mid-batch, every in-flight request fails with
  :class:`ShardDiedError`, and the fleet reroutes.  ``terminate()``
  sends SIGTERM, which the serve loop turns into a graceful drain
  (finish in-flight jobs, flush responses, exit 0).

Both shards grade job failures exactly like a bare engine — a shard
only ever *raises* for transport death, never for a job outcome — so
the fleet can tell "this job failed" (pass the graded outcome through)
from "this shard failed" (reroute the job) by exception type alone.

All shards of a fleet share one on-disk cache directory: the disk tier
plus its lock-file claim protocol (cross-process single-flight) is
what makes rerouting and hedging side-effect-safe.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import sys
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

import repro
from repro.errors import ShardDiedError, ShardError
from repro.service.engine import JobEngine, JobOutcome, ServiceConfig
from repro.util.perf import PERF, PerfRegistry

#: ``localmark serve --tcp`` announces its bound address on stderr.
_READY_RE = re.compile(r"serving on ([^:\s]+):(\d+)")


class Shard:
    """Interface the fleet router drives; see the module docstring."""

    def __init__(self, name: str) -> None:
        self.name = name

    async def start(self) -> "Shard":
        raise NotImplementedError

    async def submit(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> JobOutcome:
        """One job; graded outcome, or :class:`ShardDiedError`."""
        raise NotImplementedError

    async def probe(self, restart: bool = False) -> bool:
        """Health check (optionally resurrecting a dead shard)."""
        raise NotImplementedError

    def kill(self) -> None:
        """SIGKILL-hard death; in-flight work is torn, not drained."""
        raise NotImplementedError

    async def drain(self, grace_s: float = 10.0) -> None:
        """Graceful shutdown: finish in-flight work, then stop."""
        raise NotImplementedError

    async def close(self) -> None:
        await self.drain(grace_s=0.0)

    @property
    def alive(self) -> bool:
        raise NotImplementedError


# ----------------------------------------------------------------------
# in-process shard
# ----------------------------------------------------------------------
class LocalShard(Shard):
    """A :class:`JobEngine` behind the :class:`Shard` interface."""

    def __init__(
        self,
        name: str,
        config: ServiceConfig = ServiceConfig(),
        registry: PerfRegistry = PERF,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.registry = registry
        self.engine: Optional[JobEngine] = None
        self._dead = False

    async def start(self) -> "LocalShard":
        self.engine = await JobEngine(
            self.config, registry=self.registry
        ).start()
        self._dead = False
        return self

    async def submit(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> JobOutcome:
        if self._dead or self.engine is None:
            raise ShardDiedError(f"shard {self.name!r} is dead")
        return await self.engine.submit(op, params)

    async def probe(self, restart: bool = False) -> bool:
        if self._dead or self.engine is None:
            if not restart:
                return False
            await self.start()
        try:
            outcome = await self.submit("stats")
        except ShardDiedError:
            return False
        return outcome.ok

    def kill(self) -> None:
        """Mark dead and SIGKILL the worker pool.

        New submits raise immediately; in-process memory (and thus jobs
        already past the transport) survives by construction — true
        mid-flight death is :class:`TcpShard` territory.
        """
        self._dead = True
        if self.engine is not None and self.engine._pool is not None:
            from repro.resilience.runner import kill_executor

            kill_executor(self.engine._pool)

    async def drain(self, grace_s: float = 10.0) -> None:
        self._dead = True
        if self.engine is not None:
            await self.engine.close()  # waits out in-flight jobs
            self.engine = None

    @property
    def alive(self) -> bool:
        return not self._dead and self.engine is not None


# ----------------------------------------------------------------------
# TCP subprocess shard
# ----------------------------------------------------------------------
class TcpShard(Shard):
    """A ``localmark serve --tcp 0`` subprocess shard.

    One persistent JSON-lines connection carries all of this shard's
    traffic; requests are correlated by a per-shard ``id`` counter, so
    responses may arrive out of order (the subprocess engine coalesces
    and reorders freely).  Transport death — the process SIGKILLed, the
    connection reset — fails every pending request with
    :class:`ShardDiedError` and flips :attr:`alive`.
    """

    def __init__(
        self,
        name: str,
        config: ServiceConfig = ServiceConfig(),
        registry: PerfRegistry = PERF,
        spawn_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.registry = registry
        self.spawn_timeout_s = spawn_timeout_s
        self.port: Optional[int] = None
        self._proc: Optional[asyncio.subprocess.Process] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._stderr_task: Optional[asyncio.Task] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._write_lock = asyncio.Lock()
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._dead = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _command(self) -> list:
        config = self.config
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--tcp", "0",
            "--workers", str(config.workers),
            "--queue-limit", str(config.queue_limit),
            "--retries", str(config.retries),
        ]
        if config.job_timeout_s is not None:
            argv += ["--job-timeout", str(config.job_timeout_s)]
        if config.cache_dir is not None:
            argv += ["--cache-dir", str(config.cache_dir)]
            if config.cache_durable:
                argv += ["--cache-durable"]
        return argv

    def _environment(self) -> Dict[str, str]:
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else os.pathsep.join((package_root, existing))
        )
        return env

    async def start(self) -> "TcpShard":
        # Its own session: the shard's worker pool (forkserver and
        # friends) lives in the shard's process group, so kill() can
        # take the whole tree down — orphaned workers would otherwise
        # outlive a SIGKILLed shard and hold its stderr pipe open.
        self._proc = await asyncio.create_subprocess_exec(
            *self._command(),
            stdin=asyncio.subprocess.DEVNULL,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
            env=self._environment(),
            start_new_session=True,
        )
        assert self._proc.stderr is not None
        try:
            host, port = await asyncio.wait_for(
                self._await_ready(self._proc.stderr), self.spawn_timeout_s
            )
        except (asyncio.TimeoutError, ShardError):
            self.kill()
            raise ShardError(
                f"shard {self.name!r} never announced a port"
            ) from None
        reader, self._writer = await asyncio.open_connection(host, port)
        self.port = port
        self._dead = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._pump_responses(reader)
        )
        self._stderr_task = asyncio.get_running_loop().create_task(
            self._drain_stderr(self._proc.stderr)
        )
        return self

    async def _await_ready(self, stderr: asyncio.StreamReader):
        while True:
            line = await stderr.readline()
            if not line:
                raise ShardError(
                    f"shard {self.name!r} exited before binding"
                )
            match = _READY_RE.search(line.decode("utf-8", "replace"))
            if match:
                return match.group(1), int(match.group(2))

    @staticmethod
    async def _drain_stderr(stderr: asyncio.StreamReader) -> None:
        # Keep the pipe from filling (and the subprocess from blocking)
        # after the ready line; shard logs are not the fleet's problem.
        try:
            while await stderr.readline():
                pass
        except (OSError, ValueError):  # pragma: no cover - pipe torn
            pass

    async def _pump_responses(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except ValueError:  # pragma: no cover - foreign noise
                    continue
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionError, OSError):
            pass
        finally:
            self._fail_pending(f"shard {self.name!r} connection lost")

    def _fail_pending(self, message: str) -> None:
        self._dead = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ShardDiedError(message))

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> JobOutcome:
        if self._dead or self._writer is None:
            raise ShardDiedError(f"shard {self.name!r} is dead")
        request_id = self._next_id
        self._next_id += 1
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        line = json.dumps(
            {"id": request_id, "op": op, "params": dict(params or {})},
            separators=(",", ":"),
        ) + "\n"
        try:
            async with self._write_lock:
                self._writer.write(line.encode("utf-8"))
                await self._writer.drain()
            payload = await future
        except (ConnectionError, OSError) as exc:
            self._fail_pending(f"shard {self.name!r} write failed: {exc}")
            raise ShardDiedError(
                f"shard {self.name!r} died mid-request"
            ) from exc
        finally:
            self._pending.pop(request_id, None)  # hedge-loser cancel path
        return JobOutcome(
            op=payload.get("op", op),
            ok=bool(payload.get("ok")),
            code=int(payload.get("code", 500)),
            result=payload.get("result"),
            error=payload.get("error"),
            cached=bool(payload.get("cached")),
            coalesced=bool(payload.get("coalesced")),
            attempts=int(payload.get("attempts", 0)),
            wall_ms=float(payload.get("wall_ms", 0.0)),
        )

    async def probe(self, restart: bool = False) -> bool:
        if self._dead:
            if not restart:
                return False
            try:
                await self.restart()
            except (ShardError, OSError):
                return False
        try:
            outcome = await self.submit("stats")
        except ShardDiedError:
            return False
        return outcome.ok

    # ------------------------------------------------------------------
    # death, drain, resurrection
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL the shard's whole process group.

        The group (its own session, see :meth:`start`) covers the serve
        process *and* its worker pool, so a kill leaves no orphaned
        workers behind holding the stderr pipe open.  Pending requests
        die with it.
        """
        if self._proc is not None and self._proc.returncode is None:
            try:
                os.killpg(self._proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                try:
                    self._proc.kill()
                except ProcessLookupError:  # pragma: no cover - gone
                    pass
        self._fail_pending(f"shard {self.name!r} was SIGKILLed")

    async def drain(self, grace_s: float = 10.0) -> None:
        """Half-close, collect in-flight answers, SIGTERM, wait.

        ``write_eof`` (FIN, read side stays open) tells the shard's
        serve loop no more requests are coming; it finishes every job
        it already accepted and flushes the responses, which resolve
        our pending futures — so a drain never loses work the shard
        accepted.  Only then is SIGTERM sent (the serve loop's graceful
        exit).  A shard that overruns *grace_s* is SIGKILLed — bounded
        drains beat wedged shutdowns.
        """
        self._dead = True  # no new submits; pending ones finish below
        pending = list(self._pending.values())
        if self._writer is not None:
            try:
                if self._writer.can_write_eof():
                    self._writer.write_eof()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if pending:
            await asyncio.wait(pending, timeout=max(grace_s, 0.001))
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if self._proc is not None and self._proc.returncode is None:
            try:
                self._proc.send_signal(signal.SIGTERM)
            except ProcessLookupError:  # pragma: no cover - racing exit
                pass
            try:
                await asyncio.wait_for(
                    self._proc.wait(), max(grace_s, 0.001)
                )
            except asyncio.TimeoutError:
                self.kill()
                await self._proc.wait()
        await self._reap_pumps()
        self._fail_pending(f"shard {self.name!r} drained")

    async def restart(self) -> "TcpShard":
        """Respawn a dead shard (the probe loop's recovery path)."""
        if self._proc is not None and self._proc.returncode is None:
            self.kill()
        if self._proc is not None:
            await self._proc.wait()
        await self._reap_pumps()
        return await self.start()

    async def _reap_pumps(self) -> None:
        """Retire the pump tasks so every transport closes in-loop.

        The pumps are given a moment to hit EOF first — a dead process
        EOFs its pipes immediately, and reading stderr to EOF is what
        lets asyncio's subprocess transport finish closing itself
        (cancelling mid-read would leak it to interpreter-exit GC).
        """
        tasks = [
            task
            for task in (self._reader_task, self._stderr_task)
            if task is not None and not task.done()
        ]
        if not tasks:
            return
        _, pending = await asyncio.wait(tasks, timeout=1.0)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    @property
    def alive(self) -> bool:
        return (
            not self._dead
            and self._proc is not None
            and self._proc.returncode is None
        )
