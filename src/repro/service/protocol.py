"""JSON-lines wire protocol and serving loops (stdio / TCP).

One request per line, one response per line; requests are handled
concurrently (each line becomes a task), so identical in-flight requests
coalesce inside the engine and responses may arrive out of order —
clients correlate by ``id``.

Request::

    {"id": 7, "op": "embed", "params": {"design": {...}, "author": "A"}}

Response::

    {"id": 7, "ok": true, "code": 200, "cached": false,
     "coalesced": false, "attempts": 1, "wall_ms": 12.3, "result": {...}}

``op`` is one of ``embed | schedule | verify | detect | stats``; a
malformed line or request shape answers ``ok=false, code=400`` (with
``id`` echoed when it could be parsed) instead of killing the serving
loop.  ``localmark serve`` speaks this protocol over stdin/stdout by
default, or over TCP with ``--tcp PORT``; EOF (or closing the
connection) drains in-flight jobs and shuts down cleanly.

The serving loops dispatch through anything with the engine's
``async submit(op, params) -> JobOutcome`` shape — a
:class:`~repro.service.engine.JobEngine`, or a
:class:`~repro.service.fleet.Fleet` routing across engine shards.

**Graceful drain**: every loop takes an optional *shutdown* event
(``localmark serve`` sets it on SIGTERM).  Once set, no further
requests are read, every request already accepted is finished and its
response flushed, and the loop returns — so SIGTERM never loses or
cuts short accepted work, it only refuses new work.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from typing import Any, Awaitable, Callable, Dict, Mapping, Optional, Union

from repro.errors import ServiceError
from repro.service.engine import CODE_BAD_REQUEST, JobEngine, JobOutcome

PROTOCOL_VERSION = 1

Responder = Callable[[Dict[str, Any]], Awaitable[None]]


def parse_request(line: Union[str, bytes]) -> Dict[str, Any]:
    """Validate one request line; raises :class:`ServiceError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServiceError(f"request is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ServiceError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError("request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ServiceError("request needs a string 'op'")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError("'params' must be a JSON object")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(
        request_id, (str, int, float)
    ):
        raise ServiceError("'id' must be a string or number")
    return {"id": request_id, "op": op, "params": params}


def outcome_response(
    request_id: Optional[Any], outcome: JobOutcome
) -> Dict[str, Any]:
    """Wire shape of a graded outcome."""
    return {"id": request_id, **outcome.to_dict()}


def error_response(
    request_id: Optional[Any], message: str, code: int = CODE_BAD_REQUEST
) -> Dict[str, Any]:
    """Wire shape of a request that never reached the engine."""
    return {"id": request_id, "ok": False, "code": code, "error": message}


def _request_id_best_effort(line: Union[str, bytes]) -> Optional[Any]:
    """Echo the id of a structurally invalid request when possible."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(payload, dict):
        request_id = payload.get("id")
        if isinstance(request_id, (str, int, float)):
            return request_id
    return None


async def handle_line(
    engine: JobEngine, line: Union[str, bytes], respond: Responder
) -> None:
    """Parse, execute, and answer one request line."""
    try:
        request = parse_request(line)
    except ServiceError as exc:
        await respond(error_response(_request_id_best_effort(line), str(exc)))
        return
    outcome = await engine.submit(request["op"], request["params"])
    await respond(outcome_response(request["id"], outcome))


async def serve_stream(
    engine: JobEngine,
    reader: asyncio.StreamReader,
    respond: Responder,
    shutdown: Optional[asyncio.Event] = None,
) -> int:
    """Serve one line stream until EOF; returns requests handled.

    Every line is dispatched as its own task so concurrent duplicates
    coalesce; EOF — or the *shutdown* event (graceful drain) — stops
    reading and waits for all in-flight responses before returning.
    """
    loop = asyncio.get_running_loop()
    tasks: set = set()
    handled = 0
    stop = (
        loop.create_task(shutdown.wait()) if shutdown is not None else None
    )
    try:
        while True:
            read = loop.create_task(reader.readline())
            if stop is not None:
                await asyncio.wait(
                    {read, stop}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():  # drain requested mid-read
                    read.cancel()
                    await asyncio.gather(read, return_exceptions=True)
                    break
            line = await read
            if not line:
                break
            if not line.strip():
                continue
            handled += 1
            task = loop.create_task(handle_line(engine, line, respond))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if stop is not None and not stop.done():
            stop.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    return handled


async def serve_stdio(
    engine: JobEngine, shutdown: Optional[asyncio.Event] = None
) -> int:
    """Serve JSON-lines over stdin/stdout until EOF (or drain)."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    try:
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
    except (ValueError, OSError):
        # stdin is a regular file (`localmark serve < batch.jsonl`) —
        # pipe transports refuse those, so pump it from a thread.
        def pump() -> None:
            for line in sys.stdin.buffer:
                loop.call_soon_threadsafe(reader.feed_data, line)
            loop.call_soon_threadsafe(reader.feed_eof)

        threading.Thread(
            target=pump, name="repro-serve-stdin", daemon=True
        ).start()
    write_lock = asyncio.Lock()

    async def respond(payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        async with write_lock:
            sys.stdout.write(line)
            sys.stdout.flush()

    return await serve_stream(engine, reader, respond, shutdown)


async def serve_tcp(
    engine: JobEngine,
    host: str,
    port: int,
    ready: Optional[Callable[[str, int], None]] = None,
    shutdown: Optional[asyncio.Event] = None,
) -> int:
    """Serve JSON-lines connections on ``host:port``.

    All connections share one engine (and therefore one cache and one
    backpressure bound).  *ready* is called with the bound address once
    listening — the CLI prints it, tests use it to connect.  Without a
    *shutdown* event the server runs until cancelled; with one, setting
    it stops accepting, finishes (and answers) every request already
    read on every open connection, and returns the total handled.
    """
    handled_total = 0
    connections: set = set()

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        nonlocal handled_total
        task = asyncio.current_task()
        if task is not None:
            connections.add(task)
        write_lock = asyncio.Lock()

        async def respond(payload: Dict[str, Any]) -> None:
            data = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
            async with write_lock:
                writer.write(data)
                await writer.drain()

        try:
            handled_total += await serve_stream(
                engine, reader, respond, shutdown
            )
        finally:
            if task is not None:
                connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # peer already gone
                pass

    server = await asyncio.start_server(on_connection, host, port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    async with server:
        if shutdown is None:
            await server.serve_forever()
            return handled_total  # pragma: no cover - cancelled above
        await shutdown.wait()
        server.close()
        # Each connection handler saw the same shutdown event: it stops
        # reading, finishes its in-flight jobs, flushes, and exits.
        if connections:
            await asyncio.gather(*tuple(connections), return_exceptions=True)
    return handled_total
