"""Sharded serving fleet: a consistent-hash router over engine shards.

One :class:`Fleet` fronts N :class:`~repro.service.shard.Shard` engines
(in-process :class:`~repro.service.shard.LocalShard` or subprocess
:class:`~repro.service.shard.TcpShard`) and keeps serving through shard
death, slow shards, and planned shutdowns:

* **Consistent-hash routing** — a job's content address
  (:func:`repro.service.cache.job_key`) is hashed onto a virtual-node
  ring, so duplicates of the same job always land on the same shard
  (maximizing that shard's memory-tier hit rate) and removing one shard
  only remaps its own arc, not the whole key space.
* **Health tracking** — a shard whose transport dies
  (:class:`~repro.errors.ShardDiedError`) takes a consecutive-failure
  circuit breaker *open*: it drops out of routing until a background
  probe (the ``stats`` job, optionally respawning the process) succeeds
  and closes the breaker.
* **Bounded rerouting** — a job in flight on a dying shard is re-routed
  to the next healthy shard along the ring, at most ``max_reroutes``
  times with jittered exponential backoff
  (:func:`repro.util.backoff.backoff_delay`, the same policy as the
  campaign runner and the engine's crash retries).  Only transport
  death reroutes; a *graded* job failure (422/500/503/504) is the
  answer and passes through unchanged.
* **Hedged retries** — when a shard sits on a request past the hedge
  delay (fixed ``hedge_ms``, or dynamically the fleet's p95 latency for
  that op once enough samples exist), the same job is *hedged* to the
  next shard on the ring; the first response wins and the loser is
  cancelled.
* **Graceful drain** — :meth:`Fleet.drain_shard` removes a shard from
  routing and lets it finish (and answer) everything it already
  accepted before it exits; queued work migrates to the survivors via
  normal routing.  SIGTERM to a ``localmark serve`` front end drains
  the whole fleet the same way.

Duplicated computation under hedging and rerouting is made
side-effect-safe by the shared tier: all shards point at one on-disk
content-addressed cache whose lock-file claim protocol
(cross-process single-flight, with stale-claim stealing) guarantees at
most one process computes a key while the rest wait and read the
leader's bytes — so a hedge loser or a rerouted duplicate can only ever
re-serve, never re-compute, and results stay bit-identical to the
single-engine path.

Every outcome a fleet returns is a plain engine
:class:`~repro.service.engine.JobOutcome` annotated with the routing
path (``shard``, ``hedged``, ``reroutes``); like the engine, the fleet
grades failures and never raises them at callers.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServiceError, ShardDiedError
from repro.service.cache import job_key
from repro.service.engine import (
    CODE_BAD_REQUEST,
    CODE_CRASHED,
    CODE_OK,
    CODE_OVERLOADED,
    JobOutcome,
    ServiceConfig,
    _OpStats,
)
from repro.service.shard import LocalShard, Shard, TcpShard
from repro.util.backoff import backoff_delay
from repro.util.perf import PERF, PerfRegistry


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class HashRing:
    """Virtual-node consistent-hash ring over shard names.

    Each shard contributes ``replicas`` points (SHA-256 of
    ``"name#i"``), which evens the arc lengths out; a key routes to the
    first point clockwise of its own hash.  :meth:`walk` returns *all*
    shards in ring order from the key, which is simultaneously the
    primary, the hedge target, and the reroute ladder.
    """

    def __init__(self, names: Sequence[str], replicas: int = 64) -> None:
        if replicas < 1:
            raise ServiceError("ring replicas must be >= 1")
        self._points: List[Tuple[int, str]] = sorted(
            (self._point(f"{name}#{index}"), name)
            for name in names
            for index in range(replicas)
        )

    @staticmethod
    def _point(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
        )

    def walk(self, key: str) -> List[str]:
        """Distinct shard names in ring order starting at *key*."""
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, (self._point(key), ""))
        seen: set = set()
        order: List[str] = []
        for offset in range(len(self._points)):
            _, name = self._points[(start + offset) % len(self._points)]
            if name not in seen:
                seen.add(name)
                order.append(name)
        return order


# ----------------------------------------------------------------------
# configuration and health
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetConfig:
    """Router knobs: topology, hedging, breaker, rerouting, drain.

    ``hedge_ms`` fixes the hedge delay; ``None`` hedges dynamically at
    the fleet-observed p95 latency of the op (never below
    ``hedge_floor_ms``, and only once ``hedge_min_samples`` responses
    have been seen); ``0`` (or negative) disables hedging.  A fleet
    that builds its own shards requires ``service.cache_dir`` — the
    shared disk tier is what makes hedges and reroutes side-effect-safe
    (callers wiring custom shards take on that responsibility
    themselves).
    """

    shards: int = 3
    shard_kind: str = "tcp"  # "tcp" (subprocess) or "local" (in-process)
    service: ServiceConfig = ServiceConfig()
    ring_replicas: int = 64
    hedge_ms: Optional[float] = None
    hedge_floor_ms: float = 50.0
    hedge_min_samples: int = 8
    max_reroutes: int = 4
    breaker_threshold: int = 1
    probe_interval_s: float = 0.25
    restart_dead: bool = True
    reroute_backoff_s: float = 0.02
    reroute_backoff_cap_s: float = 0.5
    drain_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError("a fleet needs at least one shard")
        if self.shard_kind not in ("tcp", "local"):
            raise ServiceError("shard_kind must be 'tcp' or 'local'")
        if self.max_reroutes < 0:
            raise ServiceError("max_reroutes must be >= 0")
        if self.breaker_threshold < 1:
            raise ServiceError("breaker_threshold must be >= 1")
        if self.probe_interval_s <= 0:
            raise ServiceError("probe_interval_s must be positive")
        if self.hedge_min_samples < 1:
            raise ServiceError("hedge_min_samples must be >= 1")


@dataclass
class _Health:
    """Per-shard breaker state (transport failures only)."""

    consecutive_failures: int = 0
    breaker_open: bool = False


# ----------------------------------------------------------------------
# the fleet router
# ----------------------------------------------------------------------
class Fleet:
    """The front-end router; see the module docstring.

    Use as an async context manager, or :meth:`start` / :meth:`close`
    explicitly.  ``shards`` overrides the config-built topology with
    pre-constructed shard objects (tests wire slow/faulty shards in
    this way).
    """

    def __init__(
        self,
        config: FleetConfig = FleetConfig(),
        shards: Optional[Sequence[Shard]] = None,
        registry: PerfRegistry = PERF,
    ) -> None:
        self.config = config
        self.registry = registry
        if shards is None:
            if config.service.cache_dir is None:
                raise ServiceError(
                    "a fleet needs service.cache_dir: the shared disk "
                    "tier (with cross-process single-flight) is what "
                    "makes hedging and rerouting side-effect-safe"
                )
            kind = LocalShard if config.shard_kind == "local" else TcpShard
            shards = [
                kind(f"shard-{index}", config.service, registry=registry)
                for index in range(config.shards)
            ]
        if not shards:
            raise ServiceError("a fleet needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate shard names: {names}")
        self.shards: Dict[str, Shard] = {s.name: s for s in shards}
        self._ring = HashRing(names, config.ring_replicas)
        self._health: Dict[str, _Health] = {name: _Health() for name in names}
        self._draining: set = set()
        self._op_stats: Dict[str, _OpStats] = {}
        self._probe_task: Optional["asyncio.Task[None]"] = None
        self._baseline = registry.snapshot()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Fleet":
        await asyncio.gather(*(s.start() for s in self.shards.values()))
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop()
        )
        return self

    async def close(self, grace_s: Optional[float] = None) -> None:
        """Drain every shard (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
        await asyncio.gather(
            *(self.drain_shard(name, grace_s) for name in self.shards),
            return_exceptions=True,
        )

    async def __aenter__(self) -> "Fleet":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # health and routing
    # ------------------------------------------------------------------
    def _routable(self, name: str) -> bool:
        return (
            name not in self._draining
            and not self._health[name].breaker_open
            and self.shards[name].alive
        )

    def _route_order(self, key: str) -> List[str]:
        return [name for name in self._ring.walk(key) if self._routable(name)]

    def _note_death(self, name: str) -> None:
        health = self._health[name]
        health.consecutive_failures += 1
        if health.consecutive_failures >= self.config.breaker_threshold:
            health.breaker_open = True
        self.registry.add("fleet.shard_deaths")

    def _note_ok(self, name: str) -> None:
        health = self._health[name]
        health.consecutive_failures = 0
        health.breaker_open = False

    async def _probe_loop(self) -> None:
        """Recover open-breaker shards: probe, optionally respawn."""
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            for name, shard in self.shards.items():
                if name in self._draining or self._routable(name):
                    continue
                self.registry.add("fleet.probes")
                try:
                    healthy = await shard.probe(
                        restart=self.config.restart_dead
                    )
                except asyncio.CancelledError:
                    raise
                except Exception:  # a probe must never kill the loop
                    healthy = False
                if healthy:
                    self._note_ok(name)
                    self.registry.add("fleet.recoveries")

    async def drain_shard(
        self, name: str, grace_s: Optional[float] = None
    ) -> None:
        """Gracefully retire one shard: no new work, finish the rest.

        The shard leaves the routing set immediately; everything it
        already accepted is completed and answered before its transport
        shuts down, so a drain never loses or duplicates work (the
        in-flight jobs were routed, not queued at the fleet).
        """
        shard = self.shards.get(name)
        if shard is None:
            raise ServiceError(f"no shard named {name!r}")
        self._draining.add(name)
        self.registry.add("fleet.drains")
        await shard.drain(
            self.config.drain_grace_s if grace_s is None else grace_s
        )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _hedge_delay_s(self, op: str) -> Optional[float]:
        """Seconds to wait before hedging *op*, or ``None`` for never."""
        if self.config.hedge_ms is not None:
            if self.config.hedge_ms <= 0:
                return None
            return self.config.hedge_ms / 1000.0
        stats = self._op_stats.get(op)
        if stats is None or len(stats.latencies_ms) < (
            self.config.hedge_min_samples
        ):
            return None  # not enough signal to call anything "slow" yet
        p95_ms = stats.summary()["p95_ms"]
        return max(self.config.hedge_floor_ms, p95_ms) / 1000.0

    async def submit(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> JobOutcome:
        """Route one job; graded outcome annotated with its path."""
        started = time.perf_counter()
        params = dict(params or {})

        def finish(
            outcome: JobOutcome,
            shard: Optional[str] = None,
            hedged: bool = False,
            reroutes: int = 0,
        ) -> JobOutcome:
            wall_ms = (time.perf_counter() - started) * 1000.0
            outcome = dataclasses.replace(
                outcome,
                wall_ms=wall_ms,
                shard=shard or "fleet",
                hedged=hedged,
                reroutes=reroutes,
            )
            self._op_stats.setdefault(op, _OpStats()).record(wall_ms)
            return outcome

        if op == "stats":
            return finish(
                JobOutcome("stats", True, CODE_OK, result=await self.stats())
            )
        try:
            key = job_key(op, params)
        except (TypeError, ValueError) as exc:
            return finish(
                JobOutcome(
                    op, False, CODE_BAD_REQUEST,
                    error=f"unserializable job parameters: {exc}",
                )
            )
        self.registry.add("fleet.routed")

        reroutes = 0
        while True:
            order = self._route_order(key)
            if order:
                raced = await self._attempt(op, params, order)
                if raced is not None:
                    outcome, shard_name, hedged = raced
                    return finish(
                        outcome, shard=shard_name, hedged=hedged,
                        reroutes=reroutes,
                    )
            if reroutes >= self.config.max_reroutes:
                if order:
                    return finish(
                        JobOutcome(
                            op, False, CODE_CRASHED,
                            error=f"shards kept dying mid-job "
                            f"({reroutes} reroute(s) exhausted)",
                        ),
                        reroutes=reroutes,
                    )
                return finish(
                    JobOutcome(
                        op, False, CODE_OVERLOADED,
                        error=f"no healthy shard after {reroutes} "
                        f"reroute(s); retry later",
                    ),
                    reroutes=reroutes,
                )
            reroutes += 1
            self.registry.add(
                "fleet.reroutes" if order else "fleet.no_healthy_waits"
            )
            delay = backoff_delay(
                reroutes - 1,
                self.config.reroute_backoff_s,
                self.config.reroute_backoff_cap_s,
            )
            # Give the probe loop a chance to resurrect someone before
            # the next pass when the whole routing set is dark.
            if not order:
                delay = max(delay, self.config.probe_interval_s)
            if delay > 0:
                await asyncio.sleep(delay)

    async def _attempt(
        self, op: str, params: Mapping[str, Any], order: Sequence[str]
    ) -> Optional[Tuple[JobOutcome, str, bool]]:
        """One routing attempt: primary, optionally raced by a hedge.

        Returns ``(outcome, shard_name, hedged)`` from whichever task
        answers first, or ``None`` when every raced shard died (the
        caller reroutes).  Losers are cancelled; their shard can only
        have re-served the key (shared-tier single-flight), so a cancel
        abandons no side effect.
        """
        loop = asyncio.get_running_loop()
        primary = self.shards[order[0]]
        tasks: Dict["asyncio.Task[JobOutcome]", Shard] = {
            loop.create_task(primary.submit(op, params)): primary
        }
        hedge_task: Optional["asyncio.Task[JobOutcome]"] = None
        hedge_delay_s = self._hedge_delay_s(op)
        if hedge_delay_s is not None:
            done, _ = await asyncio.wait(set(tasks), timeout=hedge_delay_s)
            hedge_name = next(
                (n for n in order[1:] if self._routable(n)), None
            )
            if not done and hedge_name is not None:
                self.registry.add("fleet.hedges")
                hedge = self.shards[hedge_name]
                hedge_task = loop.create_task(hedge.submit(op, params))
                tasks[hedge_task] = hedge

        while tasks:
            done, _ = await asyncio.wait(
                set(tasks), return_when=asyncio.FIRST_COMPLETED
            )
            winner: Optional["asyncio.Task[JobOutcome]"] = None
            for task in done:
                shard = tasks.pop(task)
                error = task.exception()
                if error is None:
                    winner = task
                    self._note_ok(shard.name)
                elif isinstance(error, ShardDiedError):
                    self._note_death(shard.name)
                else:  # pragma: no cover - shards only raise transport
                    raise error
                if winner is not None:
                    for loser in tasks:
                        loser.cancel()
                    if tasks:
                        await asyncio.gather(
                            *tasks, return_exceptions=True
                        )
                    hedged = winner is hedge_task
                    if hedged:
                        self.registry.add("fleet.hedge_wins")
                    return winner.result(), shard.name, hedged
        return None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    async def stats(self) -> Dict[str, Any]:
        """Fleet topology/counters plus each live shard's own stats."""

        async def one(shard: Shard) -> Optional[Dict[str, Any]]:
            if not shard.alive:
                return None
            try:
                outcome = await shard.submit("stats")
            except ShardDiedError:
                return None
            return outcome.result if outcome.ok else None

        gathered = await asyncio.gather(
            *(one(shard) for shard in self.shards.values())
        )
        delta = self.registry.delta(self._baseline)
        counters = {
            name.split(".", 1)[1]: value
            for name, value in delta.get("counters", {}).items()
            if name.startswith("fleet.")
        }
        return {
            "fleet": {
                **counters,
                "latency_ms": {
                    op: stats.summary()
                    for op, stats in self._op_stats.items()
                },
            },
            "shards": {
                name: {
                    "alive": shard.alive,
                    "draining": name in self._draining,
                    "breaker_open": self._health[name].breaker_open,
                    "consecutive_failures": (
                        self._health[name].consecutive_failures
                    ),
                    "stats": stats,
                }
                for (name, shard), stats in zip(
                    self.shards.items(), gathered
                )
            },
        }
