"""Asyncio job engine: the batch watermarking service's core.

One :class:`JobEngine` multiplexes many concurrent embed / schedule /
verify / detect jobs over the package's deterministic pipelines:

* **Content-addressed memoization** — each job is keyed by
  :func:`repro.service.cache.job_key`; a hit is served without touching
  a worker, and N concurrent identical misses *coalesce* onto a single
  computation (an event-loop-native single-flight keyed by the same
  content address).
* **Process isolation** — CPU-bound work runs on a bounded
  :class:`~concurrent.futures.ProcessPoolExecutor` (the same isolation
  model as the crash-safe campaign runner).  A worker SIGKILLed mid-job
  surfaces as a retryable crash with bounded retries; a job overrunning
  the hard per-job timeout gets the pool killed (via
  :func:`repro.resilience.runner.kill_executor`) and grades ``504``.
  Inside the worker, embed/schedule searches also run under a
  cooperative :class:`repro.resilience.budget.Budget` when the job
  carries ``budget_ms``.
* **Backpressure** — at most ``queue_limit`` non-coalesced jobs may be
  in flight; job N+1 is rejected with an explicit ``503``-style outcome
  instead of queueing without bound.
* **Observability** — cache hit/miss/coalesced/rejection counters go to
  a :class:`~repro.util.perf.PerfRegistry`, and the built-in ``stats``
  job reports them (as a delta since engine start) together with queue
  depth and p50/p95 latency per job type.

Every outcome is a :class:`JobOutcome` — job failures are *graded*
(``code`` 422/500/503/504), never raised, so one poisoned request can
never take down a serving loop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.cdfg.io import from_dict as cdfg_from_dict
from repro.cdfg.io import to_dict as cdfg_to_dict
from repro.core.detector import scan_for_watermark
from repro.core.domain import DomainParams
from repro.core.records import (
    scheduling_watermark_from_dict,
    scheduling_watermark_to_dict,
)
from repro.core.scheduling_wm import SchedulingWatermarker, SchedulingWMParams
from repro.crypto.signature import AuthorSignature
from repro.errors import ReproError, ServiceError
from repro.resilience.budget import Budget
from repro.resilience.runner import kill_executor
from repro.scheduling.exact import exact_schedule
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.resources import UNLIMITED
from repro.scheduling.schedule import Schedule
from repro.service.cache import DiskClaim, ResultCache, job_key
from repro.timing.windows import critical_path_length
from repro.util.backoff import backoff_delay
from repro.util.perf import PERF, PerfRegistry

#: The six cacheable job operations (plus the built-in ``stats``).
JOB_TYPES = ("embed", "schedule", "verify", "detect", "attack", "periodic")

#: HTTP-flavored outcome codes (documented in the README's protocol
#: table): jobs are graded, never raised, so clients can pattern-match.
CODE_OK = 200
CODE_BAD_REQUEST = 400
CODE_FAILED = 422
CODE_CRASHED = 500
CODE_OVERLOADED = 503
CODE_TIMED_OUT = 504


# ----------------------------------------------------------------------
# job implementations (worker side, all pure functions of their params)
# ----------------------------------------------------------------------
def _budget_from(params: Mapping[str, Any]) -> Optional[Budget]:
    budget_ms = params.get("budget_ms")
    if budget_ms is None:
        return None
    budget_ms = float(budget_ms)
    if budget_ms <= 0:
        raise ServiceError("budget_ms must be a positive number")
    return Budget(wall_ms=budget_ms)


def _design_from(params: Mapping[str, Any]):
    try:
        payload = params["design"]
    except KeyError as exc:
        raise ServiceError("job needs a 'design' payload") from exc
    if not isinstance(payload, Mapping):
        raise ServiceError("'design' must be a CDFG JSON object")
    return cdfg_from_dict(dict(payload))


def _schedule_from(params: Mapping[str, Any]) -> Schedule:
    payload = params.get("schedule")
    if not isinstance(payload, Mapping) or "start_times" not in payload:
        raise ServiceError("job needs a 'schedule' with start_times")
    return Schedule(
        {str(node): int(step) for node, step in payload["start_times"].items()}
    )


def _record_from(params: Mapping[str, Any]):
    payload = params.get("record")
    if not isinstance(payload, Mapping):
        raise ServiceError("job needs a 'record' payload")
    return scheduling_watermark_from_dict(dict(payload))


def _wm_params_from(params: Mapping[str, Any]) -> SchedulingWMParams:
    return SchedulingWMParams(
        domain=DomainParams(
            tau=int(params.get("tau", 5)),
            min_domain_size=int(params.get("min_domain", 5)),
            include_probability=float(params.get("include_probability", 0.75)),
        ),
        k=int(params["k"]) if params.get("k") is not None else None,
        epsilon=float(params.get("epsilon", 0.15)),
        eligibility=str(params.get("eligibility", "laxity")),
    )


def _job_embed(params: Mapping[str, Any]) -> Dict[str, Any]:
    design = _design_from(params)
    author = params.get("author")
    if not author:
        raise ServiceError("embed needs an 'author'")
    marker = SchedulingWatermarker(
        AuthorSignature(str(author)), _wm_params_from(params)
    )
    marked, watermark = marker.embed(design, budget=_budget_from(params))
    return {
        "marked": cdfg_to_dict(marked),
        "record": scheduling_watermark_to_dict(watermark),
        "root": watermark.root,
        "k": watermark.k,
    }


def _job_schedule(params: Mapping[str, Any]) -> Dict[str, Any]:
    design = _design_from(params)
    scheduler = str(params.get("scheduler", "list"))
    horizon = params.get("horizon")
    horizon = int(horizon) if horizon else critical_path_length(design)
    budget = _budget_from(params)
    if scheduler == "list":
        schedule = list_schedule(design)
    elif scheduler == "exact":
        schedule = exact_schedule(design, horizon, UNLIMITED, budget=budget)
    elif scheduler == "force-directed":
        schedule = force_directed_schedule(design, horizon, budget=budget)
    else:
        raise ServiceError(f"unknown scheduler {scheduler!r}")
    return {
        "design": design.name,
        "scheduler": scheduler,
        "start_times": dict(schedule.start_times),
        "makespan": schedule.makespan(design),
    }


def _job_verify(params: Mapping[str, Any]) -> Dict[str, Any]:
    design = _design_from(params)
    schedule = _schedule_from(params)
    watermark = _record_from(params)
    marker = SchedulingWatermarker(
        AuthorSignature(str(params.get("author") or "_"))
    )
    result = marker.verify(design, schedule, watermark)
    return {
        "satisfied": result.satisfied,
        "total": result.total,
        "confidence": result.confidence,
        "detected": result.detected,
    }


def _job_detect(params: Mapping[str, Any]) -> Dict[str, Any]:
    suspect = _design_from(params)
    schedule = _schedule_from(params)
    watermark = _record_from(params)
    author = params.get("author")
    if not author:
        raise ServiceError("detect needs an 'author'")
    tau = params.get("tau")
    hits = scan_for_watermark(
        suspect,
        schedule,
        watermark,
        AuthorSignature(str(author)),
        DomainParams(
            tau=int(tau) if tau is not None else watermark.tau,
            min_domain_size=int(params.get("min_domain", 5)),
        ),
        min_fraction=float(params.get("min_fraction", 1.0)),
    )
    max_hits = int(params.get("max_hits", 5))
    return {
        "hits": [
            {
                "root": hit.root,
                "satisfied": hit.result.satisfied,
                "total": hit.result.total,
                "confidence": hit.confidence,
            }
            for hit in hits[:max_hits]
        ]
    }


def _marks_from(params: Mapping[str, Any]):
    payload = params.get("marks")
    if not isinstance(payload, (list, tuple)) or not payload:
        raise ServiceError("attack needs a non-empty 'marks' list")
    return tuple(
        scheduling_watermark_from_dict(dict(mark)) for mark in payload
    )


def _job_attack(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One arena attack-then-detect trial as a cacheable service job.

    Delegates to :func:`repro.arena.sweep.attack_once` — the same pure
    function the arena runner's workers call — so a fleet-dispatched
    trial is bit-identical to the local library path by construction.
    The import is deferred: :mod:`repro.arena.dispatch` imports the
    service layer, so a module-level import here would be a cycle.
    """
    from repro.arena.embedding import ARENA_TAU
    from repro.arena.sweep import attack_once

    design = _design_from(params)
    schedule = _schedule_from(params)
    marks = _marks_from(params)
    attack = params.get("attack")
    if not attack:
        raise ServiceError("attack needs an 'attack' name")
    if params.get("seed") is None:
        raise ServiceError("attack needs a 'seed'")
    return attack_once(
        design,
        schedule,
        marks,
        attack=str(attack),
        strength=float(params.get("strength", 1.0)),
        seed=int(params["seed"]),
        fault_rate=float(params.get("fault_rate", 0.0)),
        fault_kinds=tuple(
            str(kind) for kind in params.get("fault_kinds", ())
        ),
        tau=int(params.get("tau", ARENA_TAU)),
    )


def _job_periodic(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Streaming workload: modulo-schedule a cyclic design at an II.

    Optionally embeds a periodic watermark first (when an ``author`` is
    given), so one cached job covers the streaming pipeline end to end.
    The job is a pure function of its params — the design JSON, the II,
    and the author signature — so the engine's content-addressed cache
    key *is* ``(design, II, signature)``: resubmitting the same
    streaming design at the same interval is a cache hit regardless of
    job id or submission order.
    """
    from repro.resilience.pipeline import robust_schedule

    design = _design_from(params)
    ii = params.get("ii")
    ii = int(ii) if ii is not None else design.view().min_ii()
    record = None
    target = design
    author = params.get("author")
    if author:
        marker = SchedulingWatermarker(
            AuthorSignature(str(author)), _wm_params_from(params)
        )
        target, watermark = marker.embed(
            design, budget=_budget_from(params), ii=ii
        )
        record = scheduling_watermark_to_dict(watermark)
    horizon = params.get("horizon")
    result = robust_schedule(
        target,
        horizon=int(horizon) if horizon else None,
        budget=_budget_from(params),
        ii=ii,
    )
    out = {
        "design": design.name,
        "scheduler": result.scheduler,
        "ii": result.ii,
        "min_ii": design.view().min_ii(),
        "start_times": dict(result.schedule.start_times),
        "makespan": result.makespan,
        "met_horizon": result.met_horizon,
    }
    if record is not None:
        out["record"] = record
    return out


_JOB_IMPLS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {
    "embed": _job_embed,
    "schedule": _job_schedule,
    "verify": _job_verify,
    "detect": _job_detect,
    "attack": _job_attack,
    "periodic": _job_periodic,
}


def execute_job(op: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one service job directly, in-process.

    This is the single source of truth the pool workers execute, so a
    service result is bit-identical to a direct call by construction;
    tests pin that equivalence against the underlying library APIs.
    """
    impl = _JOB_IMPLS.get(op)
    if impl is None:
        raise ServiceError(
            f"unknown job op {op!r}; known: {', '.join(JOB_TYPES)}"
        )
    identity = {k: v for k, v in params.items() if k != "_hook"}
    return impl(identity)


def _apply_worker_hook(hook: Optional[Mapping[str, Any]]) -> None:
    """Test-facing fault hook, mirroring the campaign runner's.

    ``{"sleep_s": x}`` wedges the job (timeout reaping);
    ``{"kill_unless_marker": path}`` SIGKILLs the worker once, leaving a
    marker file so the retry survives; ``{"kill_always": true}``
    SIGKILLs on every attempt (retry exhaustion); ``{"append_to":
    path}`` appends one pid line — a countable side effect, used to
    prove a job computed exactly once under hedging/rerouting.
    """
    if not hook:
        return
    append = hook.get("append_to")
    if append is not None:
        with open(append, "a", encoding="ascii") as handle:
            handle.write(f"{os.getpid()}\n")
    sleep_s = hook.get("sleep_s")
    if sleep_s is not None:
        time.sleep(float(sleep_s))
    marker = hook.get("kill_unless_marker")
    if marker is not None and not Path(marker).exists():
        Path(marker).touch()
        os.kill(os.getpid(), 9)
    if hook.get("kill_always"):
        os.kill(os.getpid(), 9)


def _job_worker(op: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Pool-side entry point: hook first, then the real job."""
    _apply_worker_hook(params.get("_hook"))
    return execute_job(op, params)


# ----------------------------------------------------------------------
# outcomes and configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobOutcome:
    """The graded result of one submitted job.

    ``shard`` / ``hedged`` / ``reroutes`` are populated only when the
    job travelled through a :class:`repro.service.fleet.Fleet` router:
    which shard answered, whether the winning response came from a
    hedge, and how many times the job was re-routed off a dead or
    overloaded shard before completing.
    """

    op: str
    ok: bool
    code: int
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cached: bool = False
    coalesced: bool = False
    attempts: int = 0
    wall_ms: float = 0.0
    shard: Optional[str] = None
    hedged: bool = False
    reroutes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "op": self.op,
            "ok": self.ok,
            "code": self.code,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "attempts": self.attempts,
            "wall_ms": round(self.wall_ms, 3),
        }
        if self.shard is not None:  # fleet-routed: annotate the path
            payload["shard"] = self.shard
            payload["hedged"] = self.hedged
            payload["reroutes"] = self.reroutes
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
        return payload


@dataclass(frozen=True)
class ServiceConfig:
    """Engine knobs: pool width, backpressure, cache, timeouts.

    ``cross_process_flight`` single-flights cache misses *across
    processes* through the disk store's lock-file claim protocol; it
    only takes effect when ``cache_dir`` is set (without a shared disk
    tier there is no other process to coordinate with).  Fleet shards
    sharing one cache directory rely on it for the exactly-one-side-
    effect guarantee under hedging and rerouting.
    """

    workers: int = 2
    queue_limit: int = 16
    retries: int = 2
    job_timeout_s: Optional[float] = None
    cache_enabled: bool = True
    cache_dir: Optional[Union[str, Path]] = None
    cache_entries: int = 1024
    cache_bytes: int = 64 << 20
    cache_durable: bool = False
    retry_backoff_s: float = 0.05
    retry_backoff_cap_s: float = 2.0
    cross_process_flight: bool = True
    claim_ttl_s: float = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.queue_limit < 1:
            raise ServiceError("queue_limit must be >= 1")
        if self.retries < 0:
            raise ServiceError("retries must be >= 0")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ServiceError("job_timeout_s must be positive")
        if self.claim_ttl_s <= 0:
            raise ServiceError("claim_ttl_s must be positive")


def _pool_context():
    """The worker-pool multiprocessing context (forkserver preferred)."""
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # platform without forkserver support
        return multiprocessing.get_context()


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass
class _OpStats:
    count: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    #: Latency samples kept per op; enough for stable p95 without
    #: letting a soak run grow the list without bound.
    WINDOW = 4096

    def record(self, wall_ms: float) -> None:
        self.count += 1
        if len(self.latencies_ms) >= self.WINDOW:
            self.latencies_ms.pop(0)
        self.latencies_ms.append(wall_ms)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self.latencies_ms)
        return {
            "count": self.count,
            "p50_ms": round(_percentile(ordered, 0.50), 3) if ordered else 0.0,
            "p95_ms": round(_percentile(ordered, 0.95), 3) if ordered else 0.0,
        }


class JobEngine:
    """The asyncio service core; see the module docstring.

    Use as an async context manager, or call :meth:`start` /
    :meth:`close` explicitly.  All methods must run on one event loop
    (the :class:`~repro.service.client.ServiceClient` hosts a private
    loop on a background thread for synchronous callers).
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        registry: PerfRegistry = PERF,
    ) -> None:
        self.config = config
        self.registry = registry
        self.cache = ResultCache(
            max_entries=config.cache_entries,
            max_bytes=config.cache_bytes,
            directory=config.cache_dir,
            durable=config.cache_durable,
            registry=registry,
            claim_ttl_s=config.claim_ttl_s,
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[str, "asyncio.Task[JobOutcome]"] = {}
        self._active = 0
        self._max_depth = 0
        self._op_stats: Dict[str, _OpStats] = {}
        self._baseline = registry.snapshot()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "JobEngine":
        self._ensure_pool()
        return self

    async def close(self) -> None:
        """Wait out in-flight jobs, then shut the worker pool down."""
        self._closed = True
        pending = [task for task in self._inflight.values() if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def __aenter__(self) -> "JobEngine":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Workers must NOT inherit the serving sockets: with plain
            # fork, a worker spawned after a TCP connection is accepted
            # holds a duplicate of the client fd, so closing the
            # connection never delivers EOF to the peer.  The forkserver
            # daemon is exec'd fresh (no inherited fds), so workers
            # forked from it can't capture them.
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=_pool_context(),
            )
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor, kill: bool) -> None:
        """Retire a broken/poisoned pool (idempotent across racers)."""
        if self._pool is pool:
            self._pool = None
        if kill:
            kill_executor(pool)
        else:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> JobOutcome:
        """Run one job through cache, coalescing, and the worker pool."""
        started = time.perf_counter()
        params = dict(params or {})

        def finish(outcome: JobOutcome) -> JobOutcome:
            wall_ms = (time.perf_counter() - started) * 1000.0
            outcome = dataclasses.replace(outcome, wall_ms=wall_ms)
            self._op_stats.setdefault(op, _OpStats()).record(wall_ms)
            return outcome

        if op == "stats":
            return finish(
                JobOutcome("stats", True, CODE_OK, result=self.stats())
            )
        if op not in JOB_TYPES:
            return finish(
                JobOutcome(
                    op, False, CODE_BAD_REQUEST,
                    error=f"unknown op {op!r}; known: "
                    f"{', '.join(JOB_TYPES)} (plus stats)",
                )
            )
        try:
            key = job_key(op, params)
        except (TypeError, ValueError) as exc:
            return finish(
                JobOutcome(
                    op, False, CODE_BAD_REQUEST,
                    error=f"unserializable job parameters: {exc}",
                )
            )

        if self.config.cache_enabled:
            cached = self.cache.get(key)
            if cached is not None:
                self.registry.add("service.cache_hits")
                return finish(
                    JobOutcome(
                        op, True, CODE_OK, result=cached, cached=True
                    )
                )
            task = self._inflight.get(key)
            if task is not None:
                self.registry.add("service.coalesced")
                outcome = await asyncio.shield(task)
                return finish(
                    dataclasses.replace(outcome, coalesced=True)
                )
            self.registry.add("service.cache_misses")

        if self._active >= self.config.queue_limit:
            self.registry.add("service.rejected")
            return finish(
                JobOutcome(
                    op, False, CODE_OVERLOADED,
                    error=f"queue full ({self.config.queue_limit} job(s) "
                    f"in flight); retry later",
                )
            )
        self._active += 1
        self._max_depth = max(self._max_depth, self._active)
        task = asyncio.get_running_loop().create_task(
            self._compute(key, op, params)
        )
        if self.config.cache_enabled:
            self._inflight[key] = task
        return finish(await asyncio.shield(task))

    def _flight_enabled(self) -> bool:
        return (
            self.config.cache_enabled
            and self.config.cross_process_flight
            and self.cache.directory is not None
        )

    async def _acquire_flight(
        self, key: str
    ) -> Tuple[Optional[DiskClaim], Optional[Any]]:
        """Cross-process leadership for *key*: ``(claim, cached)``.

        Either returns a held disk claim (this engine computes) or the
        result another process computed while we waited.  A leader that
        dies mid-compute leaves a stale claim; ``try_claim`` steals it,
        so the wait always terminates.
        """
        waited = False
        while True:
            claim = self.cache.try_claim(key)
            if claim is not None:
                cached = self.cache.get(key)  # landed while we claimed
                if cached is not None:
                    claim.release()
                    return None, cached
                return claim, None
            cached = self.cache.get(key)
            if cached is not None:
                self.registry.add("service.flight_shared_hits")
                return None, cached
            if not waited:
                waited = True
                self.registry.add("service.flight_waits")
            await asyncio.sleep(self.cache.claim_poll_s)

    async def _compute(
        self, key: str, op: str, params: Mapping[str, Any]
    ) -> JobOutcome:
        """Leader path: pool execution with retries and hard timeout."""
        claim: Optional[DiskClaim] = None
        try:
            if self._flight_enabled():
                claim, cached = await self._acquire_flight(key)
                if cached is not None:
                    return JobOutcome(
                        op, True, CODE_OK, result=cached, cached=True
                    )
            attempts = 0
            last_error = "never attempted"
            while attempts <= self.config.retries:
                attempts += 1
                pool = self._ensure_pool()
                try:
                    future = pool.submit(_job_worker, op, params)
                except BrokenProcessPool as exc:
                    self._discard_pool(pool, kill=False)
                    last_error = f"worker pool broke at submit ({exc})"
                    self.registry.add("service.worker_crashes")
                    continue
                wrapped = asyncio.wrap_future(future)
                try:
                    if self.config.job_timeout_s is not None:
                        result = await asyncio.wait_for(
                            wrapped, self.config.job_timeout_s
                        )
                    else:
                        result = await wrapped
                except asyncio.TimeoutError:
                    # The worker may be wedged: SIGKILL the pool (other
                    # in-flight jobs surface BrokenProcessPool and
                    # consume one of their retries — same collateral
                    # model as the campaign runner's hard timeouts).
                    self._discard_pool(pool, kill=True)
                    self.registry.add("service.job_timeouts")
                    return JobOutcome(
                        op, False, CODE_TIMED_OUT,
                        error=f"hard timeout after "
                        f"{self.config.job_timeout_s}s; worker SIGKILLed",
                        attempts=attempts,
                    )
                except BrokenProcessPool as exc:
                    self._discard_pool(pool, kill=False)
                    last_error = f"worker process died ({exc})"
                    self.registry.add("service.worker_crashes")
                    if attempts <= self.config.retries:
                        await asyncio.sleep(
                            backoff_delay(
                                attempts - 1,
                                self.config.retry_backoff_s,
                                self.config.retry_backoff_cap_s,
                            )
                        )
                    continue
                except ReproError as exc:
                    return JobOutcome(
                        op, False, CODE_FAILED, error=str(exc),
                        attempts=attempts,
                    )
                except Exception as exc:  # malformed params etc.
                    return JobOutcome(
                        op, False, CODE_FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts,
                    )
                if self.config.cache_enabled:
                    self.cache.put(key, result)
                return JobOutcome(
                    op, True, CODE_OK, result=result, attempts=attempts
                )
            return JobOutcome(
                op, False, CODE_CRASHED,
                error=f"crashed: {last_error} "
                f"(after {attempts} attempt(s))",
                attempts=attempts,
            )
        finally:
            if claim is not None:
                # Released *after* put on success, so other processes
                # see either the entry or a free key — never a wedge; a
                # failed compute frees the key for them to try.
                claim.release()
            self._active -= 1
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``stats`` job's payload: counters, queue, latencies."""
        delta = self.registry.delta(self._baseline)
        counters = delta.get("counters", {})
        service = {
            name.split(".", 1)[1]: value
            for name, value in counters.items()
            if name.startswith("service.")
        }
        return {
            "jobs": {
                op: stats.count for op, stats in self._op_stats.items()
            },
            "queue": {
                "depth": self._active,
                "max_depth": self._max_depth,
                "limit": self.config.queue_limit,
            },
            "cache": {**self.cache.stats(), **service},
            "latency_ms": {
                op: stats.summary() for op, stats in self._op_stats.items()
            },
            "perf": delta,
        }
