"""Synchronous programmatic clients over an in-process engine or fleet.

:class:`ServiceClient` hosts a private event loop on a daemon thread and
runs a :class:`~repro.service.engine.JobEngine` on it, so ordinary
synchronous code — the stress/verify batch harnesses, the load tests,
the service benchmark — can multiplex batches of jobs through the
cache, coalescing, and the worker pool without touching asyncio:

>>> from repro.service import ServiceClient, ServiceConfig  # doctest: +SKIP
>>> with ServiceClient(ServiceConfig(workers=2)) as client:  # doctest: +SKIP
...     outcomes = client.submit_many(
...         [("schedule", {"design": payload})] * 100
...     )

:class:`FleetClient` is the same blocking shape over a
:class:`~repro.service.fleet.Fleet` of engine shards, plus thread-safe
fault/drain controls (``kill_shard`` / ``drain_shard``) so soak tests
and benchmarks can kill shards mid-batch from the calling thread.

``submit`` blocks for one outcome; ``submit_many`` submits a whole
batch concurrently (duplicates coalesce server-side) and returns the
outcomes in submission order.  Job failures are graded outcomes, never
exceptions; only client misuse (submitting after ``close``) raises.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.engine import JobEngine, JobOutcome, ServiceConfig
from repro.util.perf import PERF, PerfRegistry


class _LoopHost:
    """A private event loop on a daemon thread, with blocking calls."""

    def __init__(self, thread_name: str) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=thread_name, daemon=True
        )
        self._thread.start()
        self._closed = False

    def _call(self, coroutine: Any, timeout: Optional[float] = None) -> Any:
        if self._closed:
            raise ServiceError("service client is closed")
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout)

    def _stop(self) -> None:
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


class ServiceClient(_LoopHost):
    """Thread-hosted engine with a blocking submit API."""

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        registry: PerfRegistry = PERF,
    ) -> None:
        super().__init__("repro-service-client")
        self.engine: JobEngine = self._call(
            self._start_engine(config, registry)
        )

    @staticmethod
    async def _start_engine(
        config: ServiceConfig, registry: PerfRegistry
    ) -> JobEngine:
        return await JobEngine(config, registry=registry).start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> JobOutcome:
        """Run one job and block for its graded outcome."""
        return self._call(self.engine.submit(op, params), timeout)

    def submit_many(
        self,
        jobs: Sequence[Tuple[str, Mapping[str, Any]]],
        max_pending: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[JobOutcome]:
        """Submit a batch concurrently; outcomes in submission order.

        *max_pending* throttles client-side concurrency (useful to stay
        under the engine's queue limit when the batch is all-unique);
        without it the whole batch is in flight at once, which is what
        maximizes coalescing on duplicate-heavy workloads.
        """
        engine = self.engine

        async def run() -> List[JobOutcome]:
            semaphore = (
                asyncio.Semaphore(max_pending) if max_pending else None
            )

            async def one(op: str, params: Mapping[str, Any]) -> JobOutcome:
                if semaphore is None:
                    return await engine.submit(op, params)
                async with semaphore:
                    return await engine.submit(op, params)

            return list(
                await asyncio.gather(
                    *(one(op, params) for op, params in jobs)
                )
            )

        return self._call(run(), timeout)

    def stats(self) -> Dict[str, Any]:
        """The engine's observability snapshot (the ``stats`` job)."""
        outcome = self.submit("stats")
        assert outcome.result is not None
        return outcome.result

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the engine and stop the background loop (idempotent)."""
        if self._closed:
            return
        try:
            self._call(self.engine.close())
        finally:
            self._stop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FleetClient(_LoopHost):
    """Thread-hosted :class:`~repro.service.fleet.Fleet` with the same
    blocking submit shape as :class:`ServiceClient`, plus shard
    fault/drain controls for soak harnesses."""

    def __init__(
        self,
        config: Optional["Any"] = None,
        shards: Optional[Sequence["Any"]] = None,
        registry: PerfRegistry = PERF,
    ) -> None:
        from repro.service.fleet import Fleet, FleetConfig

        super().__init__("repro-fleet-client")
        self.fleet: "Fleet" = self._call(
            self._start_fleet(
                config if config is not None else FleetConfig(),
                shards,
                registry,
            )
        )

    @staticmethod
    async def _start_fleet(config, shards, registry):
        from repro.service.fleet import Fleet

        return await Fleet(config, shards=shards, registry=registry).start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> JobOutcome:
        """Route one job and block for its graded outcome."""
        return self._call(self.fleet.submit(op, params), timeout)

    def submit_many(
        self,
        jobs: Sequence[Tuple[str, Mapping[str, Any]]],
        max_pending: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[JobOutcome]:
        """Route a batch concurrently; outcomes in submission order."""
        fleet = self.fleet

        async def run() -> List[JobOutcome]:
            semaphore = (
                asyncio.Semaphore(max_pending) if max_pending else None
            )

            async def one(op: str, params: Mapping[str, Any]) -> JobOutcome:
                if semaphore is None:
                    return await fleet.submit(op, params)
                async with semaphore:
                    return await fleet.submit(op, params)

            return list(
                await asyncio.gather(
                    *(one(op, params) for op, params in jobs)
                )
            )

        return self._call(run(), timeout)

    def stats(self) -> Dict[str, Any]:
        """The fleet's aggregated observability snapshot."""
        outcome = self.submit("stats")
        assert outcome.result is not None
        return outcome.result

    # ------------------------------------------------------------------
    # shard fault/drain controls (thread-safe; for soaks and benches)
    # ------------------------------------------------------------------
    def kill_shard(self, name: str) -> None:
        """SIGKILL one shard from the calling thread, mid-batch."""

        async def kill() -> None:
            self.fleet.shards[name].kill()

        self._call(kill())

    def drain_shard(
        self, name: str, grace_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Gracefully drain one shard (blocks until it finished)."""
        self._call(self.fleet.drain_shard(name, grace_s), timeout)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the fleet and stop the background loop (idempotent)."""
        if self._closed:
            return
        try:
            self._call(self.fleet.close())
        finally:
            self._stop()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
