"""Batch watermarking service: async job engine + content-addressed cache.

The production-facing layer over the package's deterministic pipelines:
:class:`JobEngine` multiplexes concurrent embed/schedule/verify/detect
jobs over a bounded worker pool with content-addressed memoization,
single-flight coalescing, explicit backpressure, and graded failure
outcomes; ``localmark serve`` exposes it as a JSON-lines protocol
(stdio or TCP) and :class:`ServiceClient` as a blocking batch API.

:class:`Fleet` scales that engine out: a consistent-hash router over N
engine shards (:class:`LocalShard` in-process, :class:`TcpShard`
subprocess) with circuit-breaker health tracking, hedged retries,
bounded rerouting off dead shards, and graceful drain — all over one
shared on-disk cache whose lock-file claim protocol makes duplicated
computation side-effect-safe.  ``localmark serve --shards N`` serves
through it; :class:`FleetClient` is the blocking batch API.
"""

from repro.service.cache import (
    CODE_VERSION,
    DiskClaim,
    ResultCache,
    SingleFlight,
    canonical_json,
    canonical_params,
    job_key,
)
from repro.service.client import FleetClient, ServiceClient
from repro.service.fleet import Fleet, FleetConfig, HashRing
from repro.service.shard import LocalShard, Shard, TcpShard
from repro.service.engine import (
    CODE_BAD_REQUEST,
    CODE_CRASHED,
    CODE_FAILED,
    CODE_OK,
    CODE_OVERLOADED,
    CODE_TIMED_OUT,
    JOB_TYPES,
    JobEngine,
    JobOutcome,
    ServiceConfig,
    execute_job,
)

__all__ = [
    "CODE_VERSION",
    "DiskClaim",
    "ResultCache",
    "SingleFlight",
    "canonical_json",
    "canonical_params",
    "job_key",
    "ServiceClient",
    "FleetClient",
    "Fleet",
    "FleetConfig",
    "HashRing",
    "Shard",
    "LocalShard",
    "TcpShard",
    "JobEngine",
    "JobOutcome",
    "ServiceConfig",
    "execute_job",
    "JOB_TYPES",
    "CODE_OK",
    "CODE_BAD_REQUEST",
    "CODE_FAILED",
    "CODE_CRASHED",
    "CODE_OVERLOADED",
    "CODE_TIMED_OUT",
]
