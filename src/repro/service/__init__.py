"""Batch watermarking service: async job engine + content-addressed cache.

The production-facing layer over the package's deterministic pipelines:
:class:`JobEngine` multiplexes concurrent embed/schedule/verify/detect
jobs over a bounded worker pool with content-addressed memoization,
single-flight coalescing, explicit backpressure, and graded failure
outcomes; ``localmark serve`` exposes it as a JSON-lines protocol
(stdio or TCP) and :class:`ServiceClient` as a blocking batch API.
"""

from repro.service.cache import (
    CODE_VERSION,
    ResultCache,
    SingleFlight,
    canonical_json,
    canonical_params,
    job_key,
)
from repro.service.client import ServiceClient
from repro.service.engine import (
    CODE_BAD_REQUEST,
    CODE_CRASHED,
    CODE_FAILED,
    CODE_OK,
    CODE_OVERLOADED,
    CODE_TIMED_OUT,
    JOB_TYPES,
    JobEngine,
    JobOutcome,
    ServiceConfig,
    execute_job,
)

__all__ = [
    "CODE_VERSION",
    "ResultCache",
    "SingleFlight",
    "canonical_json",
    "canonical_params",
    "job_key",
    "ServiceClient",
    "JobEngine",
    "JobOutcome",
    "ServiceConfig",
    "execute_job",
    "JOB_TYPES",
    "CODE_OK",
    "CODE_BAD_REQUEST",
    "CODE_FAILED",
    "CODE_CRASHED",
    "CODE_OVERLOADED",
    "CODE_TIMED_OUT",
]
