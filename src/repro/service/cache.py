"""Content-addressed result cache for the batch watermarking service.

Every service job is a pure function of its operation name and its
parameters (designs, records, schedules are all value objects), so its
result can be addressed by content: the cache key is the SHA-256 of a
canonical JSON encoding of ``{version, op, params}`` where

* the code version (:data:`CODE_VERSION` plus the package version) is
  part of the key, so a release that changes semantics can never serve
  stale results;
* design payloads are canonicalized through
  :func:`repro.cdfg.io.canonicalize_dict` (nodes/edges sorted), so the
  key is invariant under the presentational order of a design's JSON;
* all object keys are sorted and separators are compact, so two
  structurally equal parameter sets hash identically.

Two tiers back the key space:

* an **in-process LRU** bounded by entry count *and* total encoded
  bytes (a service must not trade its heap for hit rate), and
* an optional **crash-safe on-disk store** — one
  ``objects/<kk>/<key>.json`` file per entry, written with
  :func:`repro.util.atomicio.atomic_write_text` so SIGKILL at any byte
  boundary leaves either no entry or a whole entry.  A torn or foreign
  file (from a non-atomic writer or media corruption) is *healed on
  read*: detected, deleted, and treated as a miss.

:class:`SingleFlight` adds request coalescing for threaded callers: N
concurrent computations of the same key run the supplier once and share
the result.  (The asyncio engine has its own event-loop-native
coalescing; this class serves :class:`ResultCache.get_or_compute` and
any multi-threaded embedder.)

Across **processes** the disk store is the shared tier of the serving
fleet, and it coordinates two ways:

* *Writers* of the same key race benignly — both write byte-identical
  content through an atomic rename, the survivor is one whole entry.
* *Computations* of the same key are single-flighted with a
  **lock-file claim protocol** (:meth:`ResultCache.try_claim`): the
  first process to ``O_CREAT|O_EXCL`` the key's claim file computes;
  every other process polls the store until the entry (or a release)
  appears.  A claim is kept fresh by a heartbeat thread (``mtime``
  touches); a claim whose owner pid is dead, or whose heartbeat went
  silent past ``claim_ttl_s``, is **stale** and is *stolen* — renamed
  aside by exactly one stealer (``os.replace`` is the arbiter) so a
  shard SIGKILLed mid-compute never wedges the key for the fleet.
* *Invalidation is by version*: the code version is part of every
  content address, so entries written by old code are unreachable by
  construction; on open, a store whose recorded version differs from
  the running one has those unreachable objects purged
  (``meta.json``), keeping the shared tier's disk footprint bounded
  across releases.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro import __version__ as _PACKAGE_VERSION
from repro.cdfg.io import canonicalize_dict
from repro.util.atomicio import atomic_write_text, load_json_or_none
from repro.util.perf import PERF, PerfRegistry

#: Bumped whenever job semantics change in a way that invalidates
#: previously cached results; combined with the package version.  The
#: ``attack`` op joining the cacheable set did not bump it: the op name
#: is part of every key, so new ops never collide with old entries.
CODE_VERSION = "service-v1"

#: Job parameter fields holding a CDFG payload whose node/edge order is
#: presentational and must be canonicalized before hashing.
_DESIGN_FIELDS = ("design",)

#: Execution-shaping fields excluded from content addressing: they
#: change *how* a job runs (test fault hooks), never what it computes.
_NON_IDENTITY_FIELDS = ("_hook",)


def canonical_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Identity-relevant, canonicalized copy of a job's parameters."""
    canonical: Dict[str, Any] = {}
    for name, value in params.items():
        if name in _NON_IDENTITY_FIELDS:
            continue
        if name in _DESIGN_FIELDS and isinstance(value, Mapping):
            value = canonicalize_dict(dict(value))
        canonical[name] = value
    return canonical


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact, ASCII."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def job_key(op: str, params: Mapping[str, Any]) -> str:
    """SHA-256 content address of one service job."""
    payload = {
        "version": f"{CODE_VERSION}+{_PACKAGE_VERSION}",
        "op": op,
        "params": canonical_params(params),
    }
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


# ----------------------------------------------------------------------
# single-flight coalescing
# ----------------------------------------------------------------------
class _Call:
    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key computation coalescing for concurrent threads.

    The first caller of :meth:`run` for a key becomes the *leader* and
    executes the supplier; every caller that arrives while the leader is
    still computing blocks and receives the leader's result (or its
    exception).  Once the leader finishes, the key is released and a
    later call computes afresh — coalescing is about concurrency, not
    memoization (that is the cache's job).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[str, _Call] = {}

    def run(self, key: str, supplier: Callable[[], Any]) -> Tuple[Any, bool]:
        """Compute (or join) *key*; returns ``(value, was_leader)``."""
        with self._lock:
            call = self._calls.get(key)
            leader = call is None
            if leader:
                call = _Call()
                self._calls[key] = call
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.result, False
        try:
            call.result = supplier()
            return call.result, True
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()


# ----------------------------------------------------------------------
# cross-process single-flight: lock-file claims
# ----------------------------------------------------------------------
class DiskClaim:
    """An exclusive right to compute one key, held as a lock file.

    While held, a daemon heartbeat thread touches the file's mtime
    every ``ttl_s / 4`` so other processes can tell a *live* long
    computation (fresh mtime) from a *dead* claimant (stale mtime or
    dead pid) and steal only the latter.  :meth:`release` stops the
    heartbeat and unlinks the file; releasing a claim that was stolen
    in the meantime is a no-op.
    """

    def __init__(self, path: Path, ttl_s: float) -> None:
        self.path = path
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if ttl_s > 0:
            self._thread = threading.Thread(
                target=self._heartbeat,
                args=(ttl_s / 4.0,),
                name="repro-cache-claim",
                daemon=True,
            )
            self._thread.start()

    def _heartbeat(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            try:
                os.utime(self.path)
            except OSError:  # released or stolen: stop beating
                return

    def release(self) -> None:
        """Drop the claim (idempotent; survives being stolen first)."""
        self._stop.set()
        try:
            os.unlink(self.path)
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=1.0)


# ----------------------------------------------------------------------
# the two-tier cache
# ----------------------------------------------------------------------
class ResultCache:
    """In-process LRU over an optional crash-safe on-disk store.

    Values are JSON-serializable job results; the memory tier stores the
    canonical encoding so the byte cap is exact.  All public methods are
    thread-safe (the service client runs the engine's event loop on a
    background thread while tests inspect the cache from the main one).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        max_bytes: int = 64 << 20,
        directory: Optional[Union[str, Path]] = None,
        durable: bool = False,
        registry: PerfRegistry = PERF,
        claim_ttl_s: float = 5.0,
        claim_poll_s: float = 0.02,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if claim_ttl_s <= 0:
            raise ValueError("claim_ttl_s must be positive")
        if claim_poll_s <= 0:
            raise ValueError("claim_poll_s must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.directory = None if directory is None else Path(directory)
        self.durable = durable
        self.registry = registry
        self.claim_ttl_s = claim_ttl_s
        self.claim_poll_s = claim_poll_s
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._memory_bytes = 0
        self._lock = threading.Lock()
        self._flight = SingleFlight()
        if self.directory is not None:
            self._reconcile_store_version()

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / "objects" / key[:2] / f"{key}.json"

    def _claim_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / "flight" / key[:2] / f"{key}.claim"

    def _reconcile_store_version(self) -> None:
        """Record the store's code version; purge on a version change.

        The version lives inside every content address, so entries
        written by different code are *unreachable*, never wrong — but
        they would accumulate forever.  When the recorded version
        differs from ours, the (unreachable) objects and any leftover
        claims are deleted before the new version is recorded.
        """
        assert self.directory is not None
        version = f"{CODE_VERSION}+{_PACKAGE_VERSION}"
        meta_path = self.directory / "meta.json"
        payload = load_json_or_none(meta_path)
        if isinstance(payload, Mapping) and payload.get("version") == version:
            return
        if meta_path.exists():
            for subdir in ("objects", "flight"):
                root = self.directory / subdir
                if not root.is_dir():
                    continue
                for stale in sorted(root.rglob("*")):
                    if stale.is_file():
                        try:
                            stale.unlink()
                        except OSError:  # racing purger
                            pass
            self.registry.add("service.cache_version_purges")
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            meta_path, canonical_json({"version": version}),
            durable=self.durable,
        )

    def _memory_put(self, key: str, encoded: bytes) -> None:
        if len(encoded) > self.max_bytes:
            return  # a single oversized value never evicts the world
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= len(old)
        self._memory[key] = encoded
        self._memory_bytes += len(encoded)
        while (
            len(self._memory) > self.max_entries
            or self._memory_bytes > self.max_bytes
        ):
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= len(evicted)
            self.registry.add("service.cache_evictions")

    def _disk_get(self, key: str) -> Optional[Any]:
        if self.directory is None:
            return None
        path = self._entry_path(key)
        if not path.exists():
            return None
        payload = load_json_or_none(path)
        if (
            not isinstance(payload, Mapping)
            or payload.get("key") != key
            or "result" not in payload
        ):
            # Torn or foreign entry: heal by deletion, report a miss.
            self.registry.add("service.cache_disk_torn")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing healer
                pass
            return None
        self.registry.add("service.cache_disk_hits")
        return payload["result"]

    def _disk_put(self, key: str, result: Any) -> None:
        if self.directory is None:
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path,
            canonical_json({"key": key, "result": result}),
            durable=self.durable,
        )

    # ------------------------------------------------------------------
    # cross-process single-flight
    # ------------------------------------------------------------------
    def _claim_is_stale(self, path: Path) -> bool:
        """Dead owner pid, or heartbeat silent for longer than the TTL."""
        try:
            stat = path.stat()
        except OSError:
            return False  # already gone; the caller just retries
        payload = load_json_or_none(path)
        owner = payload.get("pid") if isinstance(payload, Mapping) else None
        if isinstance(owner, int):
            try:
                os.kill(owner, 0)
            except ProcessLookupError:
                return True  # owner died; no heartbeat will ever come
            except (OSError, PermissionError):  # alive under another uid
                pass
        return (time.time() - stat.st_mtime) > self.claim_ttl_s

    def _steal_claim(self, path: Path) -> None:
        """Remove a stale claim; ``os.replace`` arbitrates racing
        stealers (exactly one rename succeeds, the rest see ENOENT)."""
        tomb = path.with_name(f"{path.name}.stale.{os.getpid()}")
        try:
            os.replace(path, tomb)
        except OSError:
            return  # someone else stole (or the owner released) first
        try:
            os.unlink(tomb)
        except OSError:  # pragma: no cover - racing cleaner
            pass
        self.registry.add("service.flight_steals")

    def try_claim(self, key: str) -> Optional[DiskClaim]:
        """Try to become *key*'s cross-process computation leader.

        Returns a held :class:`DiskClaim` (release it after ``put``,
        successful or not), or ``None`` when another live process
        already holds the claim.  A stale claim — dead owner or expired
        heartbeat — is stolen and re-acquired in the same call.
        Requires a disk tier; without one there is nothing to claim
        (and no other process to coordinate with), so ``None``.
        """
        if self.directory is None:
            return None
        path = self._claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):  # second pass only after stealing
            try:
                fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._claim_is_stale(path):
                    return None
                self._steal_claim(path)
                continue
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(
                    canonical_json({"key": key, "pid": os.getpid()})
                )
            self.registry.add("service.flight_claims")
            return DiskClaim(path, self.claim_ttl_s)
        return None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """Look *key* up: memory first, then disk (promoting a hit)."""
        with self._lock:
            encoded = self._memory.get(key)
            if encoded is not None:
                self._memory.move_to_end(key)
                return json.loads(encoded)
        result = self._disk_get(key)
        if result is not None:
            with self._lock:
                self._memory_put(key, canonical_json(result).encode("ascii"))
        return result

    def put(self, key: str, result: Any) -> None:
        """Store a job result in both tiers."""
        encoded = canonical_json(result).encode("ascii")
        with self._lock:
            self._memory_put(key, encoded)
        self._disk_put(key, result)

    def get_or_compute(
        self, key: str, supplier: Callable[[], Any],
        cross_process: bool = False,
    ) -> Tuple[Any, str]:
        """Serve *key* from cache or compute it exactly once.

        Returns ``(result, how)`` with *how* one of ``"hit"``,
        ``"miss"`` (this caller led the computation) or ``"coalesced"``
        (another thread was already computing the same key).

        With ``cross_process=True`` (and a disk tier), leadership is
        arbitrated *across processes* through the lock-file claim
        protocol: exactly one process computes while the others poll
        the shared store and return the leader's entry as a ``"hit"``.
        A leader that dies mid-compute leaves a stale claim that a
        waiter steals, so the key can never wedge.
        """
        cached = self.get(key)
        if cached is not None:
            return cached, "hit"

        def compute() -> Any:
            again = self.get(key)  # filled while we raced for leadership
            if again is not None:
                return again
            value = supplier()
            self.put(key, value)
            return value

        computed = False

        def compute_flighted() -> Any:
            nonlocal computed
            while True:
                again = self.get(key)
                if again is not None:
                    return again
                claim = self.try_claim(key)
                if claim is not None:
                    try:
                        again = self.get(key)  # landed while we claimed
                        if again is not None:
                            return again
                        computed = True
                        value = supplier()
                        self.put(key, value)
                        return value
                    finally:
                        claim.release()
                self.registry.add("service.flight_wait_polls")
                time.sleep(self.claim_poll_s)

        if cross_process and self.directory is not None:
            value, led = self._flight.run(key, compute_flighted)
            if led and not computed:
                return value, "hit"  # another process's claim fed us
        else:
            value, led = self._flight.run(key, compute)
        return value, "miss" if led else "coalesced"

    def stats(self) -> Dict[str, Any]:
        """Occupancy counters for the ``stats`` job."""
        with self._lock:
            return {
                "memory_entries": len(self._memory),
                "memory_bytes": self._memory_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "disk": str(self.directory) if self.directory else None,
            }

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier survives restarts)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
