"""Content-addressed result cache for the batch watermarking service.

Every service job is a pure function of its operation name and its
parameters (designs, records, schedules are all value objects), so its
result can be addressed by content: the cache key is the SHA-256 of a
canonical JSON encoding of ``{version, op, params}`` where

* the code version (:data:`CODE_VERSION` plus the package version) is
  part of the key, so a release that changes semantics can never serve
  stale results;
* design payloads are canonicalized through
  :func:`repro.cdfg.io.canonicalize_dict` (nodes/edges sorted), so the
  key is invariant under the presentational order of a design's JSON;
* all object keys are sorted and separators are compact, so two
  structurally equal parameter sets hash identically.

Two tiers back the key space:

* an **in-process LRU** bounded by entry count *and* total encoded
  bytes (a service must not trade its heap for hit rate), and
* an optional **crash-safe on-disk store** — one
  ``objects/<kk>/<key>.json`` file per entry, written with
  :func:`repro.util.atomicio.atomic_write_text` so SIGKILL at any byte
  boundary leaves either no entry or a whole entry.  A torn or foreign
  file (from a non-atomic writer or media corruption) is *healed on
  read*: detected, deleted, and treated as a miss.

:class:`SingleFlight` adds request coalescing for threaded callers: N
concurrent computations of the same key run the supplier once and share
the result.  (The asyncio engine has its own event-loop-native
coalescing; this class serves :class:`ResultCache.get_or_compute` and
any multi-threaded embedder.)  Across *processes* there is deliberately
no lock: concurrent writers of the same key race benignly, because both
write byte-identical content through an atomic rename.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro import __version__ as _PACKAGE_VERSION
from repro.cdfg.io import canonicalize_dict
from repro.util.atomicio import atomic_write_text, load_json_or_none
from repro.util.perf import PERF, PerfRegistry

#: Bumped whenever job semantics change in a way that invalidates
#: previously cached results; combined with the package version.
CODE_VERSION = "service-v1"

#: Job parameter fields holding a CDFG payload whose node/edge order is
#: presentational and must be canonicalized before hashing.
_DESIGN_FIELDS = ("design",)

#: Execution-shaping fields excluded from content addressing: they
#: change *how* a job runs (test fault hooks), never what it computes.
_NON_IDENTITY_FIELDS = ("_hook",)


def canonical_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Identity-relevant, canonicalized copy of a job's parameters."""
    canonical: Dict[str, Any] = {}
    for name, value in params.items():
        if name in _NON_IDENTITY_FIELDS:
            continue
        if name in _DESIGN_FIELDS and isinstance(value, Mapping):
            value = canonicalize_dict(dict(value))
        canonical[name] = value
    return canonical


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact, ASCII."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def job_key(op: str, params: Mapping[str, Any]) -> str:
    """SHA-256 content address of one service job."""
    payload = {
        "version": f"{CODE_VERSION}+{_PACKAGE_VERSION}",
        "op": op,
        "params": canonical_params(params),
    }
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


# ----------------------------------------------------------------------
# single-flight coalescing
# ----------------------------------------------------------------------
class _Call:
    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key computation coalescing for concurrent threads.

    The first caller of :meth:`run` for a key becomes the *leader* and
    executes the supplier; every caller that arrives while the leader is
    still computing blocks and receives the leader's result (or its
    exception).  Once the leader finishes, the key is released and a
    later call computes afresh — coalescing is about concurrency, not
    memoization (that is the cache's job).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[str, _Call] = {}

    def run(self, key: str, supplier: Callable[[], Any]) -> Tuple[Any, bool]:
        """Compute (or join) *key*; returns ``(value, was_leader)``."""
        with self._lock:
            call = self._calls.get(key)
            leader = call is None
            if leader:
                call = _Call()
                self._calls[key] = call
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.result, False
        try:
            call.result = supplier()
            return call.result, True
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()


# ----------------------------------------------------------------------
# the two-tier cache
# ----------------------------------------------------------------------
class ResultCache:
    """In-process LRU over an optional crash-safe on-disk store.

    Values are JSON-serializable job results; the memory tier stores the
    canonical encoding so the byte cap is exact.  All public methods are
    thread-safe (the service client runs the engine's event loop on a
    background thread while tests inspect the cache from the main one).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        max_bytes: int = 64 << 20,
        directory: Optional[Union[str, Path]] = None,
        durable: bool = False,
        registry: PerfRegistry = PERF,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.directory = None if directory is None else Path(directory)
        self.durable = durable
        self.registry = registry
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._memory_bytes = 0
        self._lock = threading.Lock()
        self._flight = SingleFlight()

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / "objects" / key[:2] / f"{key}.json"

    def _memory_put(self, key: str, encoded: bytes) -> None:
        if len(encoded) > self.max_bytes:
            return  # a single oversized value never evicts the world
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= len(old)
        self._memory[key] = encoded
        self._memory_bytes += len(encoded)
        while (
            len(self._memory) > self.max_entries
            or self._memory_bytes > self.max_bytes
        ):
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= len(evicted)
            self.registry.add("service.cache_evictions")

    def _disk_get(self, key: str) -> Optional[Any]:
        if self.directory is None:
            return None
        path = self._entry_path(key)
        if not path.exists():
            return None
        payload = load_json_or_none(path)
        if (
            not isinstance(payload, Mapping)
            or payload.get("key") != key
            or "result" not in payload
        ):
            # Torn or foreign entry: heal by deletion, report a miss.
            self.registry.add("service.cache_disk_torn")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing healer
                pass
            return None
        self.registry.add("service.cache_disk_hits")
        return payload["result"]

    def _disk_put(self, key: str, result: Any) -> None:
        if self.directory is None:
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path,
            canonical_json({"key": key, "result": result}),
            durable=self.durable,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """Look *key* up: memory first, then disk (promoting a hit)."""
        with self._lock:
            encoded = self._memory.get(key)
            if encoded is not None:
                self._memory.move_to_end(key)
                return json.loads(encoded)
        result = self._disk_get(key)
        if result is not None:
            with self._lock:
                self._memory_put(key, canonical_json(result).encode("ascii"))
        return result

    def put(self, key: str, result: Any) -> None:
        """Store a job result in both tiers."""
        encoded = canonical_json(result).encode("ascii")
        with self._lock:
            self._memory_put(key, encoded)
        self._disk_put(key, result)

    def get_or_compute(
        self, key: str, supplier: Callable[[], Any]
    ) -> Tuple[Any, str]:
        """Serve *key* from cache or compute it exactly once.

        Returns ``(result, how)`` with *how* one of ``"hit"``,
        ``"miss"`` (this caller led the computation) or ``"coalesced"``
        (another thread was already computing the same key).
        """
        cached = self.get(key)
        if cached is not None:
            return cached, "hit"

        def compute() -> Any:
            again = self.get(key)  # filled while we raced for leadership
            if again is not None:
                return again
            value = supplier()
            self.put(key, value)
            return value

        value, led = self._flight.run(key, compute)
        return value, "miss" if led else "coalesced"

    def stats(self) -> Dict[str, Any]:
        """Occupancy counters for the ``stats`` job."""
        with self._lock:
            return {
                "memory_entries": len(self._memory),
                "memory_bytes": self._memory_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "disk": str(self.directory) if self.directory else None,
            }

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier survives restarts)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
