"""Resource-constrained list scheduling.

The classic heuristic the paper's experiments rely on as an off-the-shelf
synthesis step: operations become ready when their predecessors finish,
and at every control step the ready operations are issued in priority
order while functional units remain.  The default priority is *least
ALAP first* (most urgent first), the standard choice.

The scheduler treats watermark temporal edges exactly like data edges —
the protocol is transparent to the tool, as §IV-A requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.errors import InfeasibleScheduleError
from repro.scheduling.resources import ResourceSet, UNLIMITED
from repro.scheduling.schedule import Schedule
from repro.timing.windows import alap_schedule, critical_path_length

PriorityFn = Callable[[str], float]


def list_schedule(
    cdfg: CDFG,
    resources: ResourceSet = UNLIMITED,
    horizon: Optional[int] = None,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Schedule *cdfg* with list scheduling under *resources*.

    Parameters
    ----------
    cdfg:
        The graph to schedule; all edge kinds are precedence constraints.
    resources:
        Functional-unit limits; unlimited classes issue freely.
    horizon:
        Optional deadline in control steps; used only to compute ALAP
        priorities and to reject overruns at the end.
    priority:
        Optional priority function (lower = more urgent).  Defaults to
        the node's ALAP start (critical operations first).

    Raises
    ------
    InfeasibleScheduleError
        If the result misses the given horizon.
    """
    cp = critical_path_length(cdfg)
    alap_horizon = horizon if horizon is not None and horizon >= cp else cp
    if priority is None:
        alap = alap_schedule(cdfg, alap_horizon)

        def priority(node: str) -> float:
            return alap[node]

    # Dense adjacency from the cached view: successor lists preserve the
    # graph's own iteration order, so ready-queue tie-breaks (stable
    # sort on insertion order) are unchanged.
    view = cdfg.view()
    nodes = view.nodes
    succs: Dict[str, list] = {
        n: [nodes[s] for s in view.succs[i]] for i, n in enumerate(nodes)
    }
    in_deg: Dict[str, int] = {
        n: len(view.preds[i]) for i, n in enumerate(nodes)
    }

    start_times: Dict[str, int] = {}
    finish: Dict[str, int] = {}
    ready = sorted((n for n, d in in_deg.items() if d == 0), key=priority)
    running: Dict[str, int] = {}  # node -> finish step
    step = 0
    remaining = len(in_deg)
    max_steps_guard = (cp + len(in_deg) + 2) * 4 + (horizon or 0)

    while remaining > 0:
        if step > max_steps_guard:  # pragma: no cover - defensive
            raise InfeasibleScheduleError("list scheduler failed to converge")
        # Retire operations finishing at or before this step.
        for node in [n for n, f in running.items() if f <= step]:
            del running[node]
            for succ in succs[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        ready.sort(key=priority)
        # Units busy this step (multi-cycle ops hold their unit).
        busy: Dict[ResourceClass, int] = {}
        for node in running:
            cls = cdfg.op(node).resource_class
            if cls is not ResourceClass.IO:
                busy[cls] = busy.get(cls, 0) + 1
        issued = []
        for node in ready:
            cls = cdfg.op(node).resource_class
            if cls is not ResourceClass.IO:
                cap = resources.limit(cls)
                if cap is not None and busy.get(cls, 0) >= cap:
                    continue
                busy[cls] = busy.get(cls, 0) + 1
            start_times[node] = step
            finish[node] = step + cdfg.latency(node)
            issued.append(node)
            remaining -= 1
            latency = cdfg.latency(node)
            if latency == 0:
                # Zero-latency IO nodes release successors immediately.
                for succ in succs[node]:
                    in_deg[succ] -= 1
                    if in_deg[succ] == 0:
                        ready.append(succ)
            else:
                running[node] = step + latency
        for node in issued:
            ready.remove(node)
        if issued and any(in_deg[n] == 0 and n not in start_times for n in ready):
            # Zero-latency issues may have readied more work this step.
            continue
        step += 1

    schedule = Schedule(start_times)
    if horizon is not None and schedule.makespan(cdfg) > horizon:
        raise InfeasibleScheduleError(
            f"list schedule needs {schedule.makespan(cdfg)} steps, "
            f"horizon is {horizon}"
        )
    return schedule
