"""Schedulers: list, force-directed, exact, and exhaustive enumeration."""

from repro.scheduling.enumeration import (
    EnumerationLimitError,
    count_schedules,
    count_schedules_satisfying,
    enumerate_as_schedules,
    iter_schedules,
    pairwise_distances,
    pairwise_psi,
    periodic_pairwise_distances,
)
from repro.scheduling.exact import (
    DEFAULT_UNIT_COSTS,
    exact_schedule,
    minimum_cost_schedule,
)
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.modulo import (
    MAX_II_ESCALATIONS,
    ModuloScheduleResult,
    modulo_schedule,
    resource_min_ii,
)
from repro.scheduling.resources import UNLIMITED, ResourceSet, minimum_units
from repro.scheduling.schedule import Schedule

__all__ = [
    "Schedule",
    "ResourceSet",
    "UNLIMITED",
    "minimum_units",
    "list_schedule",
    "force_directed_schedule",
    "modulo_schedule",
    "ModuloScheduleResult",
    "resource_min_ii",
    "MAX_II_ESCALATIONS",
    "exact_schedule",
    "minimum_cost_schedule",
    "DEFAULT_UNIT_COSTS",
    "iter_schedules",
    "count_schedules",
    "count_schedules_satisfying",
    "pairwise_psi",
    "pairwise_distances",
    "periodic_pairwise_distances",
    "enumerate_as_schedules",
    "EnumerationLimitError",
]
