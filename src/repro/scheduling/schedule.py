"""Schedule representation and verification.

A :class:`Schedule` maps every operation to its start control step.  It
knows how to verify itself against a CDFG (precedence over every edge
kind, window bounds, resource limits) — the single source of truth every
scheduler and every watermark verification path goes through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.errors import SchedulingError
from repro.scheduling.resources import ResourceSet, minimum_units


@dataclass
class Schedule:
    """Start control step of every operation of a CDFG.

    Attributes
    ----------
    start_times:
        Node name → 0-based start step.
    """

    start_times: Dict[str, int] = field(default_factory=dict)

    def start(self, node: str) -> int:
        """Start step of a node."""
        try:
            return self.start_times[node]
        except KeyError as exc:
            raise SchedulingError(f"node {node!r} is not scheduled") from exc

    def makespan(self, cdfg: CDFG) -> int:
        """Number of control steps the schedule occupies."""
        if not self.start_times:
            return 0
        return max(
            t + cdfg.latency(n) for n, t in self.start_times.items() if n in cdfg
        )

    def step_usage(self, cdfg: CDFG) -> Dict[int, Dict[ResourceClass, int]]:
        """Per-step functional-unit usage."""
        usage: Dict[int, Dict[ResourceClass, int]] = {}
        for node, start in self.start_times.items():
            if node not in cdfg:
                continue
            op = cdfg.op(node)
            if op.resource_class is ResourceClass.IO:
                continue
            for step in range(start, start + cdfg.latency(node)):
                step_map = usage.setdefault(step, {})
                step_map[op.resource_class] = step_map.get(op.resource_class, 0) + 1
        return usage

    def implied_units(self, cdfg: CDFG) -> Dict[ResourceClass, int]:
        """Peak per-class concurrency — the unit counts this schedule needs."""
        return minimum_units(self.step_usage(cdfg))

    def modulo_step_usage(
        self, cdfg: CDFG, ii: int
    ) -> Dict[int, Dict[ResourceClass, int]]:
        """Per-slot functional-unit usage folded modulo the II.

        In a periodic schedule every iteration re-executes the steady
        state shifted by one initiation interval, so two operations
        collide on a unit iff their busy steps coincide **modulo II** —
        the modulo reservation table of list-modulo scheduling.
        """
        usage: Dict[int, Dict[ResourceClass, int]] = {}
        for node, start in self.start_times.items():
            if node not in cdfg:
                continue
            op = cdfg.op(node)
            if op.resource_class is ResourceClass.IO:
                continue
            for step in range(start, start + cdfg.latency(node)):
                slot_map = usage.setdefault(step % ii, {})
                slot_map[op.resource_class] = (
                    slot_map.get(op.resource_class, 0) + 1
                )
        return usage

    def verify(
        self,
        cdfg: CDFG,
        resources: Optional[ResourceSet] = None,
        horizon: Optional[int] = None,
        ii: Optional[int] = None,
    ) -> None:
        """Raise :class:`SchedulingError` unless the schedule is legal.

        Checks, in order: completeness (every CDFG node scheduled),
        non-negative starts, precedence over *all* edge kinds, the
        horizon bound, and resource limits.

        For a periodic design (any edge with ``distance >= 1``) *ii*
        is mandatory: a distance-``d`` edge is satisfied iff
        ``start(dst) + ii*d >= start(src) + lat(src)`` — the
        destination belongs to the iteration ``d`` intervals later —
        and resource limits apply to the usage folded modulo II
        (iterations overlap in the steady state).
        """
        for node in cdfg.operations:
            if node not in self.start_times:
                raise SchedulingError(f"node {node!r} missing from schedule")
        for node, start in self.start_times.items():
            if node not in cdfg:
                continue
            if start < 0:
                raise SchedulingError(f"negative start time for {node!r}")
        for src, dst in cdfg.edges():
            distance = cdfg.edge_distance(src, dst)
            if distance and ii is None:
                raise SchedulingError(
                    f"edge {src!r}->{dst!r} carries distance {distance}; "
                    "verifying a periodic design requires ii"
                )
            slack = (ii or 0) * distance
            if self.start(dst) + slack < self.start(src) + cdfg.latency(src):
                kind = cdfg.edge_kind(src, dst).value
                raise SchedulingError(
                    f"{kind} precedence violated: {src!r}@{self.start(src)} "
                    f"-> {dst!r}@{self.start(dst)} (distance {distance})"
                )
        if horizon is not None and self.makespan(cdfg) > horizon:
            raise SchedulingError(
                f"makespan {self.makespan(cdfg)} exceeds horizon {horizon}"
            )
        if resources is not None:
            if ii is not None:
                slot_usage = self.modulo_step_usage(cdfg, ii)
                for slot, usage in slot_usage.items():
                    if not resources.admits(usage):
                        raise SchedulingError(
                            f"resource limits exceeded at modulo slot "
                            f"{slot}: {usage}"
                        )
            else:
                for step, usage in self.step_usage(cdfg).items():
                    if not resources.admits(usage):
                        raise SchedulingError(
                            f"resource limits exceeded at step {step}: {usage}"
                        )

    def is_valid(
        self,
        cdfg: CDFG,
        resources: Optional[ResourceSet] = None,
        horizon: Optional[int] = None,
        ii: Optional[int] = None,
    ) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(cdfg, resources=resources, horizon=horizon, ii=ii)
        except SchedulingError:
            return False
        return True

    def satisfies_order(
        self, before: str, after: str, distance: int = 0,
        ii: Optional[int] = None,
    ) -> bool:
        """Whether *before* starts strictly before *after*.

        This is the property a watermark temporal edge asserts; detection
        checks it directly on suspect schedules (which were produced
        without the temporal edges present).  A cross-iteration edge
        (``distance >= 1`` at initiation interval *ii*) asserts the
        periodic form: *before* of iteration ``k`` starts strictly
        before *after* of iteration ``k + distance``, i.e.
        ``start(before) < start(after) + ii*distance``.
        """
        if distance and ii is None:
            raise SchedulingError(
                "cross-iteration order check requires ii"
            )
        return self.start(before) < self.start(after) + (ii or 0) * distance

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "Schedule":
        """Build a schedule from any name→step mapping."""
        return cls(dict(mapping))

    def copy(self) -> "Schedule":
        """Deep copy."""
        return Schedule(dict(self.start_times))
