"""Exhaustive schedule enumeration and counting.

The paper derives its exact coincidence probabilities by enumerating
feasible schedules: the motivational example counts 166 schedules of an
IIR subtree without watermark constraints and 15 with them, giving
``P_c = 15/166``; a single pair of operations contributes
``ψ_W(e)/ψ_N(e) = 10/77``.

This module enumerates *time-constrained* schedules (no resource
limits, matching the paper's counts): assignments of start steps to a
node subset ``S`` such that

* every node stays inside its (ASAP, ALAP) window computed on the full
  graph for a given horizon, and
* every precedence between two nodes of ``S`` — including precedence
  *through* nodes outside ``S`` — is respected with the correct latency
  distance.

Enumeration is exponential in general (as the paper notes); use the
``limit`` guard for anything beyond toy sizes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.cdfg.graph import CDFG
from repro.errors import SchedulingError
from repro.scheduling.schedule import Schedule
from repro.timing.windows import (
    periodic_scheduling_windows,
    scheduling_windows,
)


class EnumerationLimitError(SchedulingError):
    """Raised when enumeration exceeds its configured work limit."""


def pairwise_distances(
    cdfg: CDFG, nodes: Sequence[str]
) -> Dict[Tuple[str, str], int]:
    """Longest-path latency distance between every ordered pair of *nodes*.

    ``dist[(u, v)] = d`` means every schedule must satisfy
    ``start(v) >= start(u) + d``; pairs with no path are absent.
    Distances account for paths through nodes *outside* the subset.
    """
    node_set = set(nodes)
    # Longest path from u to every reachable node, weighted by source latency.
    distances: Dict[Tuple[str, str], int] = {}
    order = cdfg.topological_order()
    position = {n: i for i, n in enumerate(order)}
    for u in nodes:
        longest: Dict[str, int] = {u: 0}
        for current in order[position[u]:]:
            if current not in longest:
                continue
            reach = longest[current] + cdfg.latency(current)
            for succ in cdfg.successors(current):
                if longest.get(succ, -1) < reach:
                    longest[succ] = reach
        for v, d in longest.items():
            if v != u and v in node_set:
                distances[(u, v)] = d
    return distances


def periodic_pairwise_distances(
    cdfg: CDFG, nodes: Sequence[str], ii: int
) -> Dict[Tuple[str, str], int]:
    """Longest-path constraint distances in the periodic graph at *ii*.

    Every edge ``(u, v)`` of distance ``d`` contributes the weight
    ``lat(u) - ii*d``; ``dist[(x, y)] = w`` then means every steady-state
    schedule must satisfy ``start(y) >= start(x) + w``.  Unlike the
    acyclic case the weight may be negative (a constraint reached only
    through back edges), and a pair may appear in *both* directions
    (cycles).  At a feasible II every cycle has weight ``<= 0``, so the
    longest path is well defined; a still-improving pass after the
    Bellman–Ford bound certifies a positive cycle and raises.
    """
    node_set = set(nodes)
    names = cdfg.operations
    index = {n: i for i, n in enumerate(names)}
    lat = [cdfg.latency(n) for n in names]
    arcs = [
        (index[u], index[v], lat[index[u]] - ii * cdfg.edge_distance(u, v))
        for u, v in cdfg.edges()
    ]
    neg_inf = float("-inf")
    distances: Dict[Tuple[str, str], int] = {}
    for source in nodes:
        best: List[float] = [neg_inf] * len(names)
        best[index[source]] = 0
        for sweep in range(len(names) + 1):
            moved = False
            for x, y, w in arcs:
                if best[x] != neg_inf and best[x] + w > best[y]:
                    best[y] = best[x] + w
                    moved = True
            if not moved:
                break
            if sweep == len(names):
                raise SchedulingError(
                    f"positive-weight dependence cycle in {cdfg.name!r} "
                    f"at II={ii}"
                )
        for target in nodes:
            w = best[index[target]]
            if target != source and w != neg_inf:
                distances[(source, target)] = int(w)
    return distances


def _constraint_setup(
    cdfg: CDFG,
    horizon: int,
    nodes: Sequence[str],
    ii: Optional[int],
) -> Tuple[Dict[str, Tuple[int, int]], Dict[Tuple[str, str], int]]:
    """Windows and pairwise constraints, periodic or acyclic.

    The single dispatch point every enumeration/sampling entry shares: a
    design carrying back edges demands an explicit II (its skeleton-only
    constraints would silently under-count), and in periodic mode both
    the windows and the longest-path distances fold ``- ii*distance``.
    """
    if ii is not None:
        windows = periodic_scheduling_windows(cdfg, horizon, ii)
        return windows, periodic_pairwise_distances(cdfg, nodes, ii)
    if cdfg.has_back_edges:
        raise SchedulingError(
            f"{cdfg.name!r} carries inter-iteration edges; enumeration "
            "requires an explicit ii"
        )
    return scheduling_windows(cdfg, horizon), pairwise_distances(cdfg, nodes)


def iter_schedules(
    cdfg: CDFG,
    horizon: int,
    nodes: Optional[Sequence[str]] = None,
    limit: int = 10_000_000,
    ii: Optional[int] = None,
) -> Iterator[Dict[str, int]]:
    """Yield every feasible start-time assignment for *nodes*.

    Parameters
    ----------
    nodes:
        Subset to enumerate (default: all schedulable operations).
    limit:
        Maximum number of partial assignments explored before
        :class:`EnumerationLimitError` is raised.
    ii:
        Initiation interval for periodic designs: windows become the
        steady-state (modulo-II) windows and precedence constraints fold
        ``- ii*distance``.  Because cycles constrain a node from *both*
        sides, each candidate start is checked against lower **and**
        upper bounds from already-assigned nodes.
    """
    if nodes is None:
        nodes = cdfg.schedulable_operations
    windows, distances = _constraint_setup(cdfg, horizon, nodes, ii)
    order = [n for n in cdfg.topological_order() if n in set(nodes)]
    # Constraint lists indexed by position in `order`: each node only needs
    # to check against already-assigned (earlier topological) nodes.  In
    # periodic mode a pair may constrain both directions, so each check
    # carries an optional lower and upper offset.
    constraints: List[List[Tuple[int, Optional[int], Optional[int]]]] = []
    index = {n: i for i, n in enumerate(order)}
    for i, node in enumerate(order):
        checks: List[Tuple[int, Optional[int], Optional[int]]] = []
        for j in range(i):
            fwd = distances.get((order[j], node))
            bwd = distances.get((node, order[j])) if ii is not None else None
            if fwd is not None or bwd is not None:
                checks.append((j, fwd, bwd))
        constraints.append(checks)

    assignment: List[int] = [0] * len(order)
    explored = 0

    def backtrack(i: int) -> Iterator[Dict[str, int]]:
        nonlocal explored
        if i == len(order):
            yield {order[k]: assignment[k] for k in range(len(order))}
            return
        lo, hi = windows[order[i]]
        for t in range(lo, hi + 1):
            explored += 1
            if explored > limit:
                raise EnumerationLimitError(
                    f"enumeration exceeded limit of {limit} partial assignments"
                )
            ok = True
            for j, fwd, bwd in constraints[i]:
                if fwd is not None and t < assignment[j] + fwd:
                    ok = False
                    break
                if bwd is not None and assignment[j] < t + bwd:
                    ok = False
                    break
            if ok:
                assignment[i] = t
                yield from backtrack(i + 1)
        return

    yield from backtrack(0)
    _ = index  # kept for symmetry/debugging


def count_schedules(
    cdfg: CDFG,
    horizon: int,
    nodes: Optional[Sequence[str]] = None,
    limit: int = 10_000_000,
    ii: Optional[int] = None,
) -> int:
    """Count feasible schedules; the paper's ψ_N when run unconstrained."""
    return sum(
        1
        for _ in iter_schedules(cdfg, horizon, nodes=nodes, limit=limit, ii=ii)
    )


def count_schedules_satisfying(
    cdfg: CDFG,
    horizon: int,
    order_constraints: Iterable[Tuple[str, str]],
    nodes: Optional[Sequence[str]] = None,
    limit: int = 10_000_000,
    ii: Optional[int] = None,
    constraint_distances: Optional[Sequence[int]] = None,
) -> int:
    """Count schedules where every ``(before, after)`` pair holds strictly.

    This counts the schedules an *unwatermarked* flow could produce that
    coincidentally satisfy the watermark's temporal edges — the
    numerator of the exact ``P_c``.  With *ii* and per-pair
    *constraint_distances*, pair ``k`` of distance ``d`` holds iff
    ``start(before) < start(after) + ii*d`` — the cross-iteration form.
    """
    pairs = list(order_constraints)
    if constraint_distances is None:
        constraint_distances = [0] * len(pairs)
    if len(constraint_distances) != len(pairs):
        raise SchedulingError(
            "constraint_distances must align with order_constraints"
        )
    enumerated = set(nodes) if nodes is not None else set(
        cdfg.schedulable_operations
    )
    outside = {n for pair in pairs for n in pair} - enumerated
    if outside:
        raise SchedulingError(
            f"constraint endpoints outside the enumerated subset: "
            f"{sorted(outside)}"
        )
    if ii is None and any(constraint_distances):
        raise SchedulingError(
            "cross-iteration constraints require an explicit ii"
        )
    shifts = [(ii or 0) * d for d in constraint_distances]
    count = 0
    for schedule in iter_schedules(
        cdfg, horizon, nodes=nodes, limit=limit, ii=ii
    ):
        if all(
            schedule[src] < schedule[dst] + shift
            for (src, dst), shift in zip(pairs, shifts)
        ):
            count += 1
    return count


def pairwise_psi(
    cdfg: CDFG,
    horizon: int,
    src: str,
    dst: str,
    nodes: Optional[Sequence[str]] = None,
    limit: int = 10_000_000,
) -> Tuple[int, int]:
    """The paper's ``(ψ_W, ψ_N)`` for one temporal edge ``src -> dst``.

    ``ψ_N`` counts all feasible schedules of the node subset; ``ψ_W``
    counts those where *src* starts strictly before *dst* (the schedules
    in which the watermark constraint coincidentally holds).
    """
    psi_n = 0
    psi_w = 0
    for schedule in iter_schedules(cdfg, horizon, nodes=nodes, limit=limit):
        psi_n += 1
        if schedule[src] < schedule[dst]:
            psi_w += 1
    return psi_w, psi_n


def enumerate_as_schedules(
    cdfg: CDFG, horizon: int, limit: int = 10_000_000
) -> List[Schedule]:
    """All feasible full schedules as :class:`Schedule` objects (tests)."""
    return [
        Schedule(dict(assignment))
        for assignment in iter_schedules(cdfg, horizon, limit=limit)
    ]


def transitive_reduction_edges(cdfg: CDFG) -> List[Tuple[str, str]]:
    """Edges of the precedence DAG's transitive reduction (reporting)."""
    reduced = nx.transitive_reduction(cdfg.graph)
    return list(reduced.edges)


def window_box_volume(
    cdfg: CDFG,
    horizon: int,
    nodes: Optional[Sequence[str]] = None,
    ii: Optional[int] = None,
) -> int:
    """Product of the window widths of *nodes* (the sampling box size).

    This is the size of the sample space :func:`sample_schedule_boxes`
    draws from; the feasible-schedule count divided by this volume is
    the rejection sampler's acceptance rate.  With *ii* the box is the
    steady-state (modulo-II) one.
    """
    if nodes is None:
        nodes = cdfg.schedulable_operations
    windows, _ = _constraint_setup(cdfg, horizon, [], ii)
    volume = 1
    for node in nodes:
        lo, hi = windows[node]
        volume *= hi - lo + 1
    return volume


def sample_schedule_boxes(
    cdfg: CDFG,
    horizon: int,
    samples: int,
    rng,
    nodes: Optional[Sequence[str]] = None,
    ii: Optional[int] = None,
) -> Iterator[Tuple[Dict[str, int], bool]]:
    """Draw start-time assignments uniformly from the window box.

    Each sample assigns every node of *nodes* a start drawn uniformly
    (and independently) from its (ASAP, ALAP) window, then checks
    feasibility against the same pairwise longest-path constraints
    :func:`iter_schedules` enforces.  Yields ``(assignment, feasible)``
    pairs; because every point of the box is equally likely, the
    feasible samples are uniform over the feasible schedules — the
    brute-force Monte Carlo counterpart of exact enumeration, used by
    the differential ``P_c`` oracle.  With *ii* the box is the
    steady-state one and the constraints fold ``- ii*distance``.

    Parameters
    ----------
    rng:
        A ``random.Random`` (seeded by the caller for reproducibility).
    """
    if nodes is None:
        nodes = cdfg.schedulable_operations
    nodes = list(nodes)
    windows, distances = _constraint_setup(cdfg, horizon, nodes, ii)
    checks: List[Tuple[int, int, int]] = [
        (nodes.index(u), nodes.index(v), d)
        for (u, v), d in distances.items()
    ]
    bounds = [windows[n] for n in nodes]
    for _ in range(samples):
        starts = [rng.randint(lo, hi) for lo, hi in bounds]
        feasible = all(
            starts[j] >= starts[i] + d for i, j, d in checks
        )
        yield {n: starts[k] for k, n in enumerate(nodes)}, feasible
