"""Exact (branch-and-bound) scheduling for small graphs.

Stands in for the ILP formulation the paper cites [15]: finds a
feasible schedule under a horizon and resource limits, or the schedule
minimizing total functional-unit cost under a horizon.  Exponential in
the worst case — intended for designs of a few dozen movable operations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.errors import BudgetExceededError, InfeasibleScheduleError
from repro.resilience.budget import Budget, charge
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.resources import ResourceSet
from repro.scheduling.schedule import Schedule
from repro.timing.windows import scheduling_windows

#: Default relative cost of one functional unit of each class, loosely
#: modelling datapath area (a multiplier is much larger than an ALU).
DEFAULT_UNIT_COSTS: Mapping[ResourceClass, float] = {
    ResourceClass.ALU: 1.0,
    ResourceClass.MULTIPLIER: 8.0,
    ResourceClass.MEMORY: 2.0,
    ResourceClass.BRANCH: 0.5,
}


def _prepare(cdfg: CDFG, horizon: int):
    windows = scheduling_windows(cdfg, horizon)
    # Lexicographic topological order on purpose: the DFS visit order is
    # part of the schedulers' observable behavior (first feasible
    # schedule found), so it must not depend on view adjacency layout.
    order = [n for n in cdfg.topological_order()]
    view = cdfg.view()
    nodes = view.nodes
    preds = {n: [nodes[p] for p in view.preds[view.index[n]]] for n in order}
    return windows, order, preds


def exact_schedule(
    cdfg: CDFG,
    horizon: int,
    resources: ResourceSet,
    node_limit: int = 200_000,
    budget: Optional[Budget] = None,
) -> Schedule:
    """First feasible schedule found by depth-first search.

    Parameters
    ----------
    node_limit:
        Cap on visited search nodes (a built-in budget even when no
        explicit *budget* is passed).
    budget:
        Optional shared :class:`~repro.resilience.budget.Budget` —
        charges one unit per search node and enforces its wall-clock
        deadline, so the search returns control within roughly one
        ``check_stride`` of the deadline.

    Raises
    ------
    InfeasibleScheduleError
        If the search space was exhausted without finding a schedule —
        no schedule exists under the constraints.
    BudgetExceededError
        If *node_limit* or *budget* ran out before the search could
        prove either outcome.
    """
    windows, order, preds = _prepare(cdfg, horizon)
    usage: Dict[int, Dict[ResourceClass, int]] = {}
    assignment: Dict[str, int] = {}
    visited = 0

    def can_occupy(node: str, start: int) -> bool:
        cls = cdfg.op(node).resource_class
        if cls is ResourceClass.IO:
            return True
        cap = resources.limit(cls)
        if cap is None:
            return True
        return all(
            usage.get(step, {}).get(cls, 0) < cap
            for step in range(start, start + cdfg.latency(node))
        )

    def occupy(node: str, start: int) -> None:
        cls = cdfg.op(node).resource_class
        if cls is ResourceClass.IO:
            return
        for step in range(start, start + cdfg.latency(node)):
            step_map = usage.setdefault(step, {})
            step_map[cls] = step_map.get(cls, 0) + 1

    def release(node: str, start: int) -> None:
        cls = cdfg.op(node).resource_class
        if cls is ResourceClass.IO:
            return
        for step in range(start, start + cdfg.latency(node)):
            usage[step][cls] -= 1

    def dfs(i: int) -> bool:
        nonlocal visited
        if i == len(order):
            return True
        visited += 1
        if visited > node_limit:
            raise BudgetExceededError(
                f"exact scheduler node budget exhausted ({node_limit})"
            )
        charge(budget, what="exact_schedule")
        node = order[i]
        lo, hi = windows[node]
        for pred in preds[node]:
            lo = max(lo, assignment[pred] + cdfg.latency(pred))
        for start in range(lo, hi + 1):
            if not can_occupy(node, start):
                continue
            occupy(node, start)
            assignment[node] = start
            if dfs(i + 1):
                return True
            del assignment[node]
            release(node, start)
        return False

    if dfs(0):
        schedule = Schedule(dict(assignment))
        schedule.verify(cdfg, resources=resources, horizon=horizon)
        return schedule
    raise InfeasibleScheduleError(
        f"no schedule within horizon {horizon} under {resources.limits}"
    )


def minimum_cost_schedule(
    cdfg: CDFG,
    horizon: int,
    unit_costs: Mapping[ResourceClass, float] = DEFAULT_UNIT_COSTS,
    node_limit: int = 500_000,
    budget: Optional[Budget] = None,
) -> Tuple[Schedule, float]:
    """Schedule minimizing total functional-unit cost within *horizon*.

    Returns the best schedule and its cost ``Σ_class cost(class) ×
    peak_concurrency(class)``.  Uses branch-and-bound with the cost of
    already-fixed peaks as the lower bound.  The search is *anytime*:
    exhausting *node_limit* or *budget* returns the best incumbent found
    so far instead of raising.
    """
    windows, order, preds = _prepare(cdfg, horizon)
    usage: Dict[int, Dict[ResourceClass, int]] = {}
    peaks: Dict[ResourceClass, int] = {}
    assignment: Dict[str, int] = {}
    visited = 0

    def current_cost(peak_map: Mapping[ResourceClass, int]) -> float:
        return sum(
            unit_costs.get(cls, 1.0) * count for cls, count in peak_map.items()
        )

    # Seed the incumbent with the force-directed heuristic so the
    # branch-and-bound starts with a strong upper bound to prune against.
    incumbent = force_directed_schedule(cdfg, horizon)
    best_assignment: Optional[Dict[str, int]] = dict(incumbent.start_times)
    best_cost = current_cost(incumbent.implied_units(cdfg))

    class _BudgetExhausted(Exception):
        pass

    def dfs(i: int) -> None:
        nonlocal best_cost, best_assignment, visited
        visited += 1
        if visited > node_limit:
            raise _BudgetExhausted()
        charge(budget, what="minimum_cost_schedule")
        if current_cost(peaks) >= best_cost:
            return
        if i == len(order):
            best_cost = current_cost(peaks)
            best_assignment = dict(assignment)
            return
        node = order[i]
        cls = cdfg.op(node).resource_class
        latency = cdfg.latency(node)
        lo, hi = windows[node]
        for pred in preds[node]:
            lo = max(lo, assignment[pred] + cdfg.latency(pred))
        for start in range(lo, hi + 1):
            saved_peaks = dict(peaks)
            if cls is not ResourceClass.IO:
                for step in range(start, start + latency):
                    step_map = usage.setdefault(step, {})
                    step_map[cls] = step_map.get(cls, 0) + 1
                    peaks[cls] = max(peaks.get(cls, 0), step_map[cls])
            assignment[node] = start
            dfs(i + 1)
            del assignment[node]
            if cls is not ResourceClass.IO:
                for step in range(start, start + latency):
                    usage[step][cls] -= 1
                peaks.clear()
                peaks.update(saved_peaks)

    try:
        dfs(0)
    except (_BudgetExhausted, BudgetExceededError):
        pass  # anytime: fall through with the best incumbent found
    if best_assignment is None:
        raise InfeasibleScheduleError(f"no schedule within horizon {horizon}")
    schedule = Schedule(best_assignment)
    schedule.verify(cdfg, horizon=horizon)
    return schedule, best_cost
