"""Resource models for resource-constrained scheduling.

A :class:`ResourceSet` says how many functional units of each
:class:`~repro.cdfg.ops.ResourceClass` exist.  IO placeholder operations
never consume a unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.cdfg.ops import OpType, ResourceClass


@dataclass(frozen=True)
class ResourceSet:
    """Available functional units per resource class.

    ``None`` (the default for a missing class) means *unlimited*.

    Examples
    --------
    >>> rs = ResourceSet({ResourceClass.ALU: 2, ResourceClass.MULTIPLIER: 1})
    >>> rs.limit(ResourceClass.ALU)
    2
    >>> rs.limit(ResourceClass.MEMORY) is None
    True
    """

    limits: Mapping[ResourceClass, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for cls, count in self.limits.items():
            if count < 1:
                raise ValueError(f"limit for {cls} must be >= 1, got {count}")

    def limit(self, resource_class: ResourceClass) -> Optional[int]:
        """Unit count for a class, or None when unconstrained."""
        if resource_class is ResourceClass.IO:
            return None
        return self.limits.get(resource_class)

    def admits(self, usage: Mapping[ResourceClass, int]) -> bool:
        """Whether a per-class usage count fits within the limits."""
        for cls, used in usage.items():
            cap = self.limit(cls)
            if cap is not None and used > cap:
                return False
        return True


#: Unlimited resources (pure time-constrained scheduling).
UNLIMITED = ResourceSet()


def usage_of(ops: Mapping[str, OpType]) -> Dict[ResourceClass, int]:
    """Count functional-unit demand of a set of concurrently running ops."""
    usage: Dict[ResourceClass, int] = {}
    for op in ops.values():
        if op.resource_class is ResourceClass.IO:
            continue
        usage[op.resource_class] = usage.get(op.resource_class, 0) + 1
    return usage


def minimum_units(step_usage: Mapping[int, Mapping[ResourceClass, int]]) -> Dict[
    ResourceClass, int
]:
    """Per-class peak concurrent usage over all control steps.

    This is the number of functional units a schedule *implies* — the
    quantity force-directed scheduling minimizes.
    """
    peaks: Dict[ResourceClass, int] = {}
    for usage in step_usage.values():
        for cls, used in usage.items():
            peaks[cls] = max(peaks.get(cls, 0), used)
    return peaks
