"""Force-directed scheduling (Paulin & Knight) — time-constrained baseline.

The paper cites force-directed scheduling [14] as the canonical
heuristic scheduler for behavioral synthesis; it minimizes the number of
functional units needed to meet a fixed control-step budget by balancing
*distribution graphs* (expected per-step concurrency per resource
class).

This implementation follows the textbook algorithm:

1. compute every unscheduled operation's (ASAP, ALAP) window;
2. build per-class distribution graphs assuming each op is uniformly
   distributed over its window;
3. for every candidate (op, step) assignment compute the *force* (self
   force plus the forces its window tightenings induce on predecessors
   and successors);
4. commit the minimum-force assignment, propagate window tightenings,
   and repeat.

Window maintenance runs on the incremental timing kernel: each trial
pinning is evaluated with
:meth:`~repro.timing.kernel.IncrementalWindows.delta_tighten` (worklist
propagation over the affected cone only, instead of the classic full
forward/backward re-pass — frontier-batched into per-level arrays on
wide graphs under the vectorized kernel mode), and after each commit
the distribution graphs are refreshed only at the control steps whose
expected occupancy actually changed.  All shortcuts are integer-exact
or arithmetic-order-preserving (the float distribution/force sums are
deliberately never vectorized — repeated addition is not float
multiplication), so the chosen schedule is bit-identical to the
full-recompute formulation (:func:`_tighten` is retained as the
reference the tests compare against).

Watermark temporal edges participate exactly like data edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.errors import InfeasibleScheduleError
from repro.resilience.budget import Budget, charge
from repro.scheduling.schedule import Schedule
from repro.timing.kernel import IncrementalWindows
from repro.timing.windows import critical_path_length
from repro.util.perf import PERF

Window = Tuple[int, int]


def _tighten(
    cdfg: CDFG, windows: Dict[str, Window], node: str, window: Window
) -> Dict[str, Window]:
    """Pin *node* to *window* and propagate bounds both directions.

    Returns a new windows dict; raises if any window empties.  Retained
    reference implementation (full forward/backward passes over the
    whole graph); the scheduler itself uses the kernel's delta
    propagation, which the tests assert equivalent to this.
    """
    new = dict(windows)
    new[node] = window
    order = cdfg.topological_order()
    # Forward pass: asap(v) >= asap(u) + lat(u).
    for current in order:
        lo, hi = new[current]
        for pred in cdfg.predecessors(current):
            plo, _ = new[pred]
            lo = max(lo, plo + cdfg.latency(pred))
        if lo > hi:
            raise InfeasibleScheduleError(
                f"window of {current!r} emptied while pinning {node!r}"
            )
        new[current] = (lo, hi)
    # Backward pass: alap(u) <= alap(v) - lat(u).
    for current in reversed(order):
        lo, hi = new[current]
        for succ in cdfg.successors(current):
            _, shi = new[succ]
            hi = min(hi, shi - cdfg.latency(current))
        if lo > hi:
            raise InfeasibleScheduleError(
                f"window of {current!r} emptied while pinning {node!r}"
            )
        new[current] = (lo, hi)
    return new


def _distribution_graphs(
    cdfg: CDFG, windows: Dict[str, Window], horizon: int
) -> Dict[ResourceClass, List[float]]:
    """Expected per-step concurrency per resource class."""
    graphs: Dict[ResourceClass, List[float]] = {}
    for node in cdfg.operations:
        op = cdfg.op(node)
        if op.resource_class is ResourceClass.IO:
            continue
        lo, hi = windows[node]
        width = hi - lo + 1
        probability = 1.0 / width
        graph = graphs.setdefault(op.resource_class, [0.0] * horizon)
        latency = cdfg.latency(node)
        for start in range(lo, hi + 1):
            for step in range(start, min(start + latency, horizon)):
                graph[step] += probability
    return graphs


def _refresh_distribution_steps(
    graphs: Dict[ResourceClass, List[float]],
    class_members: Dict[ResourceClass, List[int]],
    iw: IncrementalWindows,
    affected: Dict[ResourceClass, Set[int]],
    horizon: int,
) -> None:
    """Recompute the distribution graphs at *affected* steps only.

    A commit changes the expected occupancy solely at steps covered by
    some changed node's old window span; every other step keeps its
    value.  Each affected step is re-summed over that class's nodes in
    node-index order, adding the per-start probability term exactly as
    the full rebuild does, so refreshed values are bit-identical to a
    from-scratch :func:`_distribution_graphs`.
    """
    latency = iw.view.latency
    lo, hi = iw.lo, iw.hi
    for cls, steps in affected.items():
        graph = graphs.get(cls)
        if graph is None:
            continue
        members = class_members[cls]
        for step in steps:
            if step >= horizon:
                continue
            total = 0.0
            for i in members:
                ilo, ihi = lo[i], hi[i]
                lat = latency[i]
                first = max(ilo, step - lat + 1)
                last = min(ihi, step)
                if last < first:
                    continue
                probability = 1.0 / (ihi - ilo + 1)
                for _ in range(last - first + 1):
                    total += probability
            graph[step] = total
    PERF.add("fds.dist_steps_refreshed", sum(len(s) for s in affected.values()))


def _assignment_force(
    cdfg: CDFG,
    iw: IncrementalWindows,
    graphs: Dict[ResourceClass, List[float]],
    node: str,
    step: int,
    horizon: int,
) -> float:
    """Self force of pinning *node* to *step* plus neighbor forces.

    The trial pinning is evaluated with the kernel's delta propagation;
    only nodes whose window actually changes contribute, iterated in
    node-index (insertion) order so the floating-point accumulation
    matches the reference formulation term for term.
    """
    try:
        delta = iw.delta_tighten(node, (step, step))
    except InfeasibleScheduleError:
        return float("inf")
    PERF.add("fds.candidates_evaluated")
    view = iw.view
    force = 0.0
    for index in sorted(delta):
        lo, hi = delta[index]
        old_lo, old_hi = iw.lo[index], iw.hi[index]
        if (lo, hi) == (old_lo, old_hi):
            continue
        affected = view.nodes[index]
        op = cdfg.op(affected)
        if op.resource_class is ResourceClass.IO:
            continue
        graph = graphs.get(op.resource_class)
        if graph is None:
            continue
        latency = view.latency[index]

        def occupancy(window_lo: int, window_hi: int) -> Dict[int, float]:
            width = window_hi - window_lo + 1
            prob = 1.0 / width
            occ: Dict[int, float] = {}
            for start in range(window_lo, window_hi + 1):
                for s in range(start, min(start + latency, horizon)):
                    occ[s] = occ.get(s, 0.0) + prob
            return occ

        before = occupancy(old_lo, old_hi)
        after = occupancy(lo, hi)
        for s in set(before) | set(after):
            force += graph[s] * (after.get(s, 0.0) - before.get(s, 0.0))
    return force


def force_directed_schedule(
    cdfg: CDFG, horizon: int, budget: Optional[Budget] = None
) -> Schedule:
    """Time-constrained schedule minimizing implied functional units.

    Parameters
    ----------
    budget:
        Optional shared :class:`~repro.resilience.budget.Budget`;
        charged once per candidate (node, step) force evaluation.

    Raises
    ------
    InfeasibleScheduleError
        If *horizon* is below the critical path.
    BudgetExceededError
        If *budget* runs out mid-sweep.
    """
    with PERF.phase("schedule.force_directed"):
        return _force_directed_schedule(cdfg, horizon, budget)


def _force_directed_schedule(
    cdfg: CDFG, horizon: int, budget: Optional[Budget]
) -> Schedule:
    cp = critical_path_length(cdfg)
    if horizon < cp:
        raise InfeasibleScheduleError(
            f"horizon {horizon} below critical path {cp}"
        )
    iw = IncrementalWindows(cdfg, horizon)
    view = iw.view
    node_index = view.index
    unscheduled = [
        n for n in view.nodes if iw.lo[node_index[n]] != iw.hi[node_index[n]]
    ]
    # Nodes with singleton windows are already decided.
    graphs = _distribution_graphs(cdfg, iw.windows(), horizon)
    class_members: Dict[ResourceClass, List[int]] = {}
    for index, name in enumerate(view.nodes):
        cls = cdfg.op(name).resource_class
        if cls is not ResourceClass.IO:
            class_members.setdefault(cls, []).append(index)
    while unscheduled:
        best: Tuple[float, str, int] = (float("inf"), "", -1)
        for node in unscheduled:
            lo, hi = iw.window(node)
            for step in range(lo, hi + 1):
                charge(budget, what="force_directed_schedule")
                force = _assignment_force(cdfg, iw, graphs, node, step, horizon)
                if force < best[0]:
                    best = (force, node, step)
        _, node, step = best
        if not node:  # pragma: no cover - defensive
            raise InfeasibleScheduleError("force-directed scheduling stuck")
        delta = iw.delta_tighten(node, (step, step))
        # Occupancy changes only inside a changed node's old window span;
        # refresh exactly those (class, step) cells after the commit.
        affected: Dict[ResourceClass, Set[int]] = {}
        for index in delta:
            name = view.nodes[index]
            cls = cdfg.op(name).resource_class
            if cls is ResourceClass.IO:
                continue
            old_lo, old_hi = iw.lo[index], iw.hi[index]
            span_end = min(old_hi + view.latency[index], horizon)
            affected.setdefault(cls, set()).update(range(old_lo, span_end))
        iw.apply(delta)
        _refresh_distribution_steps(graphs, class_members, iw, affected, horizon)
        unscheduled = [
            n
            for n in unscheduled
            if iw.lo[node_index[n]] != iw.hi[node_index[n]]
        ]
    schedule = Schedule({n: iw.window(n)[0] for n in cdfg.operations})
    schedule.verify(cdfg, horizon=horizon)
    return schedule
