"""Force-directed scheduling (Paulin & Knight) — time-constrained baseline.

The paper cites force-directed scheduling [14] as the canonical
heuristic scheduler for behavioral synthesis; it minimizes the number of
functional units needed to meet a fixed control-step budget by balancing
*distribution graphs* (expected per-step concurrency per resource
class).

This implementation follows the textbook algorithm:

1. compute every unscheduled operation's (ASAP, ALAP) window;
2. build per-class distribution graphs assuming each op is uniformly
   distributed over its window;
3. for every candidate (op, step) assignment compute the *force* (self
   force plus the forces its window tightenings induce on predecessors
   and successors);
4. commit the minimum-force assignment, propagate window tightenings,
   and repeat.

Watermark temporal edges participate exactly like data edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.errors import InfeasibleScheduleError
from repro.resilience.budget import Budget, charge
from repro.scheduling.schedule import Schedule
from repro.timing.windows import critical_path_length, scheduling_windows

Window = Tuple[int, int]


def _tighten(
    cdfg: CDFG, windows: Dict[str, Window], node: str, window: Window
) -> Dict[str, Window]:
    """Pin *node* to *window* and propagate bounds both directions.

    Returns a new windows dict; raises if any window empties.
    """
    new = dict(windows)
    new[node] = window
    order = cdfg.topological_order()
    # Forward pass: asap(v) >= asap(u) + lat(u).
    for current in order:
        lo, hi = new[current]
        for pred in cdfg.predecessors(current):
            plo, _ = new[pred]
            lo = max(lo, plo + cdfg.latency(pred))
        if lo > hi:
            raise InfeasibleScheduleError(
                f"window of {current!r} emptied while pinning {node!r}"
            )
        new[current] = (lo, hi)
    # Backward pass: alap(u) <= alap(v) - lat(u).
    for current in reversed(order):
        lo, hi = new[current]
        for succ in cdfg.successors(current):
            _, shi = new[succ]
            hi = min(hi, shi - cdfg.latency(current))
        if lo > hi:
            raise InfeasibleScheduleError(
                f"window of {current!r} emptied while pinning {node!r}"
            )
        new[current] = (lo, hi)
    return new


def _distribution_graphs(
    cdfg: CDFG, windows: Dict[str, Window], horizon: int
) -> Dict[ResourceClass, List[float]]:
    """Expected per-step concurrency per resource class."""
    graphs: Dict[ResourceClass, List[float]] = {}
    for node in cdfg.operations:
        op = cdfg.op(node)
        if op.resource_class is ResourceClass.IO:
            continue
        lo, hi = windows[node]
        width = hi - lo + 1
        probability = 1.0 / width
        graph = graphs.setdefault(op.resource_class, [0.0] * horizon)
        latency = cdfg.latency(node)
        for start in range(lo, hi + 1):
            for step in range(start, min(start + latency, horizon)):
                graph[step] += probability
    return graphs


def _assignment_force(
    cdfg: CDFG,
    windows: Dict[str, Window],
    graphs: Dict[ResourceClass, List[float]],
    node: str,
    step: int,
    horizon: int,
) -> float:
    """Self force of pinning *node* to *step* plus neighbor forces."""
    try:
        pinned = _tighten(cdfg, windows, node, (step, step))
    except InfeasibleScheduleError:
        return float("inf")
    force = 0.0
    for affected, (lo, hi) in pinned.items():
        old_lo, old_hi = windows[affected]
        if (lo, hi) == (old_lo, old_hi):
            continue
        op = cdfg.op(affected)
        if op.resource_class is ResourceClass.IO:
            continue
        graph = graphs.get(op.resource_class)
        if graph is None:
            continue
        latency = cdfg.latency(affected)

        def occupancy(window_lo: int, window_hi: int) -> Dict[int, float]:
            width = window_hi - window_lo + 1
            prob = 1.0 / width
            occ: Dict[int, float] = {}
            for start in range(window_lo, window_hi + 1):
                for s in range(start, min(start + latency, horizon)):
                    occ[s] = occ.get(s, 0.0) + prob
            return occ

        before = occupancy(old_lo, old_hi)
        after = occupancy(lo, hi)
        for s in set(before) | set(after):
            force += graph[s] * (after.get(s, 0.0) - before.get(s, 0.0))
    return force


def force_directed_schedule(
    cdfg: CDFG, horizon: int, budget: Optional[Budget] = None
) -> Schedule:
    """Time-constrained schedule minimizing implied functional units.

    Parameters
    ----------
    budget:
        Optional shared :class:`~repro.resilience.budget.Budget`;
        charged once per candidate (node, step) force evaluation.

    Raises
    ------
    InfeasibleScheduleError
        If *horizon* is below the critical path.
    BudgetExceededError
        If *budget* runs out mid-sweep.
    """
    cp = critical_path_length(cdfg)
    if horizon < cp:
        raise InfeasibleScheduleError(
            f"horizon {horizon} below critical path {cp}"
        )
    windows: Dict[str, Window] = dict(scheduling_windows(cdfg, horizon))
    unscheduled = [n for n in cdfg.operations if windows[n][0] != windows[n][1]]
    # Nodes with singleton windows are already decided.
    while unscheduled:
        graphs = _distribution_graphs(cdfg, windows, horizon)
        best: Tuple[float, str, int] = (float("inf"), "", -1)
        for node in unscheduled:
            lo, hi = windows[node]
            for step in range(lo, hi + 1):
                charge(budget, what="force_directed_schedule")
                force = _assignment_force(cdfg, windows, graphs, node, step, horizon)
                if force < best[0]:
                    best = (force, node, step)
        _, node, step = best
        if not node:  # pragma: no cover - defensive
            raise InfeasibleScheduleError("force-directed scheduling stuck")
        windows = _tighten(cdfg, windows, node, (step, step))
        unscheduled = [
            n for n in unscheduled if windows[n][0] != windows[n][1]
        ]
    schedule = Schedule({n: windows[n][0] for n in cdfg.operations})
    schedule.verify(cdfg, horizon=horizon)
    return schedule
