"""Modulo scheduling for periodic (cyclic) CDFGs.

A periodic design executes forever with one iteration initiated every
``II`` control steps; back edges (``distance >= 1``) constrain iteration
``k`` of their source against iteration ``k + distance`` of their
destination.  The scheduler finds a steady-state start time per node
such that

* every distance-0 edge holds within the iteration,
* every back edge holds across iterations
  (``start(dst) + II*d >= start(src) + lat(src)``), and
* no modulo reservation-table slot oversubscribes a functional unit —
  iterations overlap in the steady state, so two operations collide iff
  their busy steps coincide modulo II.

The search is the classic two-phase structure: a lower bound
``max(recMII, resMII)`` (recurrence MII from the kernel's binary
feasibility probe, resource MII from per-class busy-step counting), then
list-modulo placement at ascending candidate IIs until one sticks.
Placement walks the distance-0 skeleton in topological order — every
back edge whose *source* is still unplaced imposes nothing yet, while a
back edge into an already-placed node turns into a hard deadline — so a
single pass either succeeds or proves this II needs escalation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.ops import ResourceClass
from repro.errors import BudgetExceededError, InfeasibleScheduleError
from repro.resilience.budget import Budget, check_deadline
from repro.scheduling.resources import ResourceSet, UNLIMITED
from repro.scheduling.schedule import Schedule
from repro.util.perf import PERF

#: Candidate IIs tried above the lower bound before giving up.  Greedy
#: list-modulo placement is not complete, but escalating the II strictly
#: relaxes every cross-iteration deadline and every reservation slot, so
#: small escalation counts succeed in practice; the cap turns a
#: pathological design into a clean error instead of a crawl.
MAX_II_ESCALATIONS = 64


@dataclass(frozen=True)
class ModuloScheduleResult:
    """A steady-state schedule plus the II search's accounting.

    Attributes
    ----------
    schedule:
        Steady-state start step per node (iteration 0's copy).
    ii:
        The initiation interval the schedule achieves.
    rec_mii:
        Recurrence lower bound (max cycle ratio, via the kernel probe).
    res_mii:
        Resource lower bound (busy steps per class / units).
    probes:
        Candidate IIs attempted, including the winner.
    """

    schedule: Schedule
    ii: int
    rec_mii: int
    res_mii: int
    probes: int


def resource_min_ii(cdfg: CDFG, resources: ResourceSet = UNLIMITED) -> int:
    """Resource-constrained lower bound on the II (the resMII).

    Every iteration issues each operation once, so a class with ``u``
    units and ``b`` total busy steps per iteration needs
    ``ceil(b / u)`` slots of every initiation interval.
    """
    busy: Dict[ResourceClass, int] = {}
    for node in cdfg.operations:
        cls = cdfg.op(node).resource_class
        if cls is ResourceClass.IO:
            continue
        busy[cls] = busy.get(cls, 0) + cdfg.latency(node)
    bound = 1
    for cls, total in busy.items():
        cap = resources.limit(cls)
        if cap is not None:
            bound = max(bound, -(-total // cap))
    return bound


def _try_ii(
    cdfg: CDFG,
    ii: int,
    resources: ResourceSet,
    horizon: Optional[int],
) -> Optional[Schedule]:
    """One list-modulo placement attempt; None when this II fails."""
    view = cdfg.view()
    try:
        asap = view.asap_modulo(ii)
    except InfeasibleScheduleError:
        return None
    latency = view.latency
    nodes = view.nodes
    back_succs, back_preds = view._back_adj()
    # Modulo reservation table: slot -> class -> units in use.
    table: List[Dict[ResourceClass, int]] = [{} for _ in range(ii)]
    classes = [cdfg.op(n).resource_class for n in nodes]
    start: Dict[int, int] = {}

    def slot_free(t: int, i: int) -> bool:
        cls = classes[i]
        if cls is ResourceClass.IO:
            return True
        cap = resources.limit(cls)
        if cap is None:
            return True
        if latency[i] >= ii:
            # The op is busy at every slot of the steady state.
            return all(row.get(cls, 0) < cap for row in table)
        for step in range(t, t + latency[i]):
            if table[step % ii].get(cls, 0) >= cap:
                return False
        return True

    def reserve(t: int, i: int) -> None:
        cls = classes[i]
        if cls is ResourceClass.IO:
            return
        span = min(latency[i], ii)
        for step in range(t, t + span):
            row = table[step % ii]
            row[cls] = row.get(cls, 0) + 1

    for i in view.topo_order():
        lower = asap[i]
        for p in view.preds[i]:
            # Skeleton topo order placed every distance-0 predecessor.
            lower = max(lower, start[p] + latency[p])
        upper: Optional[int] = None
        for p, d in back_preds.get(i, ()):
            if p in start:
                lower = max(lower, start[p] + latency[p] - ii * d)
        for s, d in back_succs.get(i, ()):
            if s in start:
                deadline = start[s] + ii * d - latency[i]
                upper = deadline if upper is None else min(upper, deadline)
        if horizon is not None:
            deadline = horizon - latency[i]
            upper = deadline if upper is None else min(upper, deadline)
        if upper is None:
            # Unconstrained above: II slots exhaust the distinct
            # reservation patterns, so a free slot appears within II
            # steps of the lower bound or never.
            upper = lower + ii - 1
        placed = None
        for t in range(lower, upper + 1):
            if slot_free(t, i):
                placed = t
                break
        if placed is None:
            return None
        reserve(placed, i)
        start[i] = placed
    return Schedule({nodes[i]: t for i, t in start.items()})


def modulo_schedule(
    cdfg: CDFG,
    resources: ResourceSet = UNLIMITED,
    horizon: Optional[int] = None,
    ii: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> ModuloScheduleResult:
    """Find a steady-state schedule at the smallest achievable II.

    Parameters
    ----------
    cdfg:
        The design; back edges welcome (an acyclic design degenerates
        to ``recMII = 1``).
    resources:
        Functional-unit limits, enforced modulo the II.
    horizon:
        Optional cap on the steady-state makespan (iteration latency,
        not throughput).
    ii:
        Fix the initiation interval instead of searching: exactly this
        II is attempted, and failure raises instead of escalating.
    budget:
        Shared wall-clock/node budget; checked between II probes so
        exhaustion surfaces as
        :class:`~repro.errors.BudgetExceededError` mid-search.

    Raises
    ------
    InfeasibleScheduleError
        If the fixed *ii* (or every candidate up to the escalation cap)
        admits no placement.
    BudgetExceededError
        If *budget* ran out between probes.
    """
    rec_mii = cdfg.view().min_ii()
    res_mii = resource_min_ii(cdfg, resources)
    if ii is not None:
        candidates = [ii]
    else:
        floor = max(rec_mii, res_mii)
        candidates = list(range(floor, floor + MAX_II_ESCALATIONS + 1))
    probes = 0
    with PERF.phase("modulo.schedule"):
        for candidate in candidates:
            check_deadline(budget, what="modulo_schedule II probe")
            probes += 1
            PERF.add("modulo.ii_probes")
            schedule = _try_ii(cdfg, candidate, resources, horizon)
            if schedule is not None:
                return ModuloScheduleResult(
                    schedule=schedule,
                    ii=candidate,
                    rec_mii=rec_mii,
                    res_mii=res_mii,
                    probes=probes,
                )
    raise InfeasibleScheduleError(
        f"no modulo schedule for {cdfg.name!r}: "
        + (
            f"fixed II {ii} admits no placement"
            if ii is not None
            else f"IIs {candidates[0]}..{candidates[-1]} all failed"
        )
    )
