"""Graceful degradation: budgeted fallback ladders for schedule + embed.

Two entry points:

* :func:`robust_schedule` — runs the scheduler ladder **exact →
  force-directed → list** under one shared
  :class:`~repro.resilience.budget.Budget`.  Budget exhaustion or
  proven infeasibility at one rung falls through to the next; the final
  list-scheduler rung always returns a legal (resource-respecting)
  schedule, possibly past the requested horizon — that overrun is
  *reported*, not raised.
* :class:`RobustEmbedder` — wraps
  :class:`~repro.core.scheduling_wm.SchedulingWatermarker` with
  locality-selection retries over progressively widened
  :class:`~repro.core.domain.DomainParams` (larger ``τ``, smaller
  minimum domain, higher include probability), and an ``embed_many``
  that embeds as many localities as possible, returning a
  :class:`PipelineOutcome` with per-locality success/failure accounting
  instead of raising on the first failed locality.

The division of labour with the rest of the package: the library raises
precise exceptions (:class:`~repro.errors.DomainSelectionError`,
:class:`~repro.errors.InfeasibleScheduleError`,
:class:`~repro.errors.BudgetExceededError`); this module is the one
place that turns them into degradation policy.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cdfg.graph import CDFG
from repro.core.domain import DomainParams
from repro.core.scheduling_wm import (
    SCHEDULING_PURPOSE,
    SchedulingWatermark,
    SchedulingWatermarker,
    SchedulingWMParams,
)
from repro.crypto.bitstream import BitStream
from repro.crypto.signature import AuthorSignature
from repro.errors import (
    BudgetExceededError,
    ConstraintEncodingError,
    DomainSelectionError,
    ReproError,
    SchedulingError,
)
from repro.resilience.budget import Budget
from repro.scheduling.exact import exact_schedule
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.modulo import modulo_schedule
from repro.scheduling.resources import UNLIMITED, ResourceSet
from repro.scheduling.schedule import Schedule
from repro.timing.windows import critical_path_length
from repro.util.perf import PERF

#: Default fallback ladder, strongest first.
DEFAULT_LADDER: Tuple[str, ...] = ("exact", "force-directed", "list")

#: Ladder for periodic designs: min-II modulo search, then a fixed-II
#: list-modulo retry at the always-feasible ``sum(latency)`` interval.
#: The acyclic rungs cannot verify cross-iteration edges, so a design
#: with back edges routes here instead.
PERIODIC_LADDER: Tuple[str, ...] = ("modulo_schedule", "modulo_list")


@dataclass(frozen=True)
class SchedulerAttempt:
    """One rung of the fallback ladder and how it went."""

    scheduler: str
    succeeded: bool
    elapsed_ms: float
    error: str = ""


@dataclass(frozen=True)
class RobustScheduleResult:
    """Outcome of :func:`robust_schedule`.

    Attributes
    ----------
    schedule:
        The legal schedule produced by the winning rung.
    scheduler:
        Name of the rung that produced it.
    attempts:
        Every rung tried, in order, with failure reasons.
    met_horizon:
        Whether the schedule fits the requested horizon (the last-resort
        list rung may legally overrun it).
    makespan:
        Control steps the schedule occupies.
    """

    schedule: Schedule
    scheduler: str
    attempts: Tuple[SchedulerAttempt, ...]
    met_horizon: bool
    makespan: int
    #: Achieved initiation interval; None for non-periodic schedules.
    ii: Optional[int] = None

    @property
    def degraded(self) -> bool:
        """Whether any rung before the winner failed."""
        return any(not a.succeeded for a in self.attempts)


def robust_schedule(
    cdfg: CDFG,
    horizon: Optional[int] = None,
    resources: ResourceSet = UNLIMITED,
    budget: Optional[Budget] = None,
    ladder: Optional[Sequence[str]] = None,
    ii: Optional[int] = None,
) -> RobustScheduleResult:
    """Schedule *cdfg*, degrading through the fallback ladder.

    Rungs share *budget*; a rung that exhausts it (or proves its own
    formulation infeasible) yields to the next.  The ``"list"`` rung
    runs without a hard horizon and therefore always succeeds on a DAG,
    which is what makes the pipeline total: the caller always gets a
    legal schedule plus an account of what was given up.

    A design with back edges (or an explicit *ii*) routes to
    :data:`PERIODIC_LADDER` instead: the ``"modulo_schedule"`` rung
    searches for the minimum II under the shared budget (the kernel's
    binary feasibility probe plus ascending list-modulo placement), and
    on budget exhaustion the ``"modulo_list"`` rung retries one fixed
    list-modulo placement at the always-recurrence-feasible
    ``sum(latency)`` interval, without horizon pressure.

    Raises
    ------
    SchedulingError
        Only if every rung failed — possible only when ``"list"`` is
        excluded from *ladder* (or, for periodic designs, when even the
        relaxed ``"modulo_list"`` rung cannot place the design).
    """
    periodic = cdfg.has_back_edges or ii is not None
    if ladder is None:
        ladder = PERIODIC_LADDER if periodic else DEFAULT_LADDER
    if not ladder:
        raise SchedulingError("empty scheduler ladder")
    known = DEFAULT_LADDER + PERIODIC_LADDER
    unknown = [r for r in ladder if r not in known]
    if unknown:
        raise SchedulingError(f"unknown ladder rungs: {unknown}")
    if cdfg.has_back_edges and any(r in DEFAULT_LADDER for r in ladder):
        raise SchedulingError(
            "acyclic scheduler rungs cannot honour back edges; use the "
            "periodic ladder (modulo_schedule / modulo_list)"
        )
    cp = critical_path_length(cdfg)
    target_horizon = horizon if horizon is not None else cp
    attempts: List[SchedulerAttempt] = []
    for rung in ladder:
        started = time.monotonic()
        achieved_ii: Optional[int] = None
        try:
            with PERF.phase(f"pipeline.{rung}"):
                if rung == "exact":
                    schedule = exact_schedule(
                        cdfg, target_horizon, resources, budget=budget
                    )
                elif rung == "force-directed":
                    schedule = force_directed_schedule(
                        cdfg, target_horizon, budget=budget
                    )
                    # FDS is time-constrained only; enforce resource limits
                    # explicitly so a violating result degrades further.
                    schedule.verify(cdfg, resources=resources)
                elif rung == "modulo_schedule":
                    result = modulo_schedule(
                        cdfg,
                        resources=resources,
                        horizon=horizon,
                        ii=ii,
                        budget=budget,
                    )
                    schedule = result.schedule
                    achieved_ii = result.ii
                elif rung == "modulo_list":
                    # Last-resort periodic rung: one placement at the
                    # recurrence-safe II, no horizon, no budget — the
                    # periodic analogue of the unconstrained list rung.
                    safe_ii = max(1, sum(cdfg.view().latency))
                    result = modulo_schedule(cdfg, resources=resources, ii=safe_ii)
                    schedule = result.schedule
                    achieved_ii = result.ii
                else:  # "list"
                    schedule = list_schedule(cdfg, resources=resources)
        except (SchedulingError, BudgetExceededError) as exc:
            attempts.append(
                SchedulerAttempt(
                    scheduler=rung,
                    succeeded=False,
                    elapsed_ms=(time.monotonic() - started) * 1000.0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        attempts.append(
            SchedulerAttempt(
                scheduler=rung,
                succeeded=True,
                elapsed_ms=(time.monotonic() - started) * 1000.0,
            )
        )
        span = schedule.makespan(cdfg)
        if periodic and horizon is None:
            # No horizon requested: the steady-state makespan is judged
            # against the periodic critical path at the achieved II.
            target_horizon = cdfg.view().modulo_critical_path_length(
                achieved_ii
            )
        return RobustScheduleResult(
            schedule=schedule,
            scheduler=rung,
            attempts=tuple(attempts),
            met_horizon=span <= target_horizon,
            makespan=span,
            ii=achieved_ii,
        )
    raise SchedulingError(
        "every scheduler rung failed: "
        + "; ".join(f"{a.scheduler}: {a.error}" for a in attempts)
    )


# ----------------------------------------------------------------------
# robust embedding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LocalityOutcome:
    """Per-locality embedding result inside a :class:`PipelineOutcome`."""

    index: int
    succeeded: bool
    widenings: int
    error: str = ""
    watermark: Optional[SchedulingWatermark] = None


@dataclass(frozen=True)
class PipelineOutcome:
    """Partial-success record of a robust multi-locality embedding.

    Never raised into existence by a single bad locality: every
    requested locality gets a :class:`LocalityOutcome`, successful or
    not, and the marked design carries whatever subset embedded.
    """

    marked: CDFG
    localities: Tuple[LocalityOutcome, ...]

    @property
    def succeeded(self) -> Tuple[LocalityOutcome, ...]:
        return tuple(o for o in self.localities if o.succeeded)

    @property
    def failed(self) -> Tuple[LocalityOutcome, ...]:
        return tuple(o for o in self.localities if not o.succeeded)

    @property
    def success_rate(self) -> float:
        if not self.localities:
            return 0.0
        return len(self.succeeded) / len(self.localities)

    @property
    def watermarks(self) -> Tuple[SchedulingWatermark, ...]:
        return tuple(
            o.watermark for o in self.succeeded if o.watermark is not None
        )

    @property
    def total_edges(self) -> int:
        """Temporal edges embedded across all successful localities."""
        return sum(wm.k for wm in self.watermarks)


def widened_domain_params(base: DomainParams, step: int) -> DomainParams:
    """The domain-selection knobs after *step* widenings.

    Each step enlarges the candidate locality (``τ + step``), admits
    smaller carved domains (down to 2 nodes), and raises the include
    probability toward 1 so the carve keeps more of the cone.
    """
    if step == 0:
        return base
    return DomainParams(
        tau=base.tau + step,
        include_probability=min(1.0, base.include_probability + 0.1 * step),
        min_domain_size=max(2, base.min_domain_size - step),
    )


class RobustEmbedder:
    """Embedding with widening retries and partial-success accounting.

    Wraps :class:`SchedulingWatermarker`: when a locality cannot be
    selected or encoded under the base :class:`DomainParams`, the search
    is retried with :func:`widened_domain_params` up to *max_widenings*
    times before the locality is reported failed.  A shared *budget*
    bounds the total search effort; once it is exhausted, remaining
    localities fail fast with the budget error rather than crashing the
    pipeline.
    """

    def __init__(
        self,
        signature: AuthorSignature,
        params: Optional[SchedulingWMParams] = None,
        budget: Optional[Budget] = None,
        max_widenings: int = 3,
    ) -> None:
        if max_widenings < 0:
            raise ValueError("max_widenings must be >= 0")
        self.signature = signature
        self.params = params or SchedulingWMParams()
        self.budget = budget
        self.max_widenings = max_widenings

    def _marker_at(self, step: int) -> SchedulingWatermarker:
        widened = dataclasses.replace(
            self.params, domain=widened_domain_params(self.params.domain, step)
        )
        return SchedulingWatermarker(self.signature, widened)

    def _embed_once(
        self, cdfg: CDFG, purpose: str
    ) -> Tuple[CDFG, SchedulingWatermark, int]:
        """Embed one locality, widening on selection/encoding failure.

        Returns (marked, watermark, widenings used).  Each widening
        restarts from a fresh bitstream with the same *purpose* label,
        so a detector that knows the widened parameters re-derives the
        identical constraints.
        """
        last: ReproError = DomainSelectionError("no attempt made")
        for step in range(self.max_widenings + 1):
            marker = self._marker_at(step)
            bitstream = BitStream(self.signature, purpose)
            try:
                marked, watermark = marker._embed_with_bitstream(
                    cdfg, bitstream, budget=self.budget
                )
                return marked, watermark, step
            except (DomainSelectionError, ConstraintEncodingError) as exc:
                last = exc
        raise last

    def embed(self, cdfg: CDFG) -> Tuple[CDFG, SchedulingWatermark, int]:
        """Embed a single watermark; returns (marked, record, widenings).

        With zero widenings this is bit-for-bit
        :meth:`SchedulingWatermarker.embed` — the compatibility detection
        relies on.
        """
        return self._embed_once(cdfg, SCHEDULING_PURPOSE)

    def embed_many(self, cdfg: CDFG, count: int) -> PipelineOutcome:
        """Embed up to *count* independent localities, never raising.

        Mirrors :meth:`SchedulingWatermarker.embed_many` (per-index
        bitstream purposes) but records each locality's outcome instead
        of silently skipping failures, and keeps going after budget
        exhaustion so the accounting stays complete.
        """
        marked = cdfg
        outcomes: List[LocalityOutcome] = []
        for index in range(count):
            purpose = f"{SCHEDULING_PURPOSE}/{index}"
            try:
                marked, watermark, widenings = self._embed_once(marked, purpose)
            except ReproError as exc:
                outcomes.append(
                    LocalityOutcome(
                        index=index,
                        succeeded=False,
                        widenings=self.max_widenings,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            outcomes.append(
                LocalityOutcome(
                    index=index,
                    succeeded=True,
                    widenings=widenings,
                    watermark=watermark,
                )
            )
        return PipelineOutcome(marked=marked, localities=tuple(outcomes))
